//! Quickstart: boot a simulated STASH deployment, run one visual query
//! cold and warm, and print the JSON a front-end would render.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use stash::cluster::{ClusterConfig, SimCluster};
use stash::geo::{BBox, TemporalRes, TimeRange};
use stash::model::{AggFunc, AggQuery};
use std::time::Instant;

fn main() {
    // An 8-node cluster with default (scaled-down) disk and network cost
    // models; the dataset is the deterministic synthetic NAM stand-in.
    println!("booting 8-node STASH cluster…");
    let cluster = SimCluster::new(ClusterConfig::default());
    let client = cluster.client();

    // A county-sized query (paper query class: 0.6° x 1.2°) over one day,
    // rendered at geohash resolution 4, daily bins.
    let query = AggQuery::new(
        BBox::from_corner_extent(38.0, -105.5, 0.6, 1.2), // around Boulder, CO
        TimeRange::whole_day(2015, 2, 2),
        4,
        TemporalRes::Day,
    );

    let t0 = Instant::now();
    let cold = client.query(&query).run().expect("cold query");
    let cold_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t1 = Instant::now();
    let warm = client.query(&query).run().expect("warm query");
    let warm_ms = t1.elapsed().as_secs_f64() * 1e3;

    println!("\nquery: {query}");
    println!(
        "cold: {cold_ms:>8.2} ms   ({} cells, {} observations, {} fetched from storage)",
        cold.cells.len(),
        cold.total_count(),
        cold.misses
    );
    println!(
        "warm: {warm_ms:>8.2} ms   ({} cells, {} cache hits, hit ratio {:.0}%)",
        warm.cells.len(),
        warm.cache_hits,
        warm.hit_ratio() * 100.0
    );
    println!("speedup: {:.1}x", cold_ms / warm_ms.max(1e-9));

    // What the Grafana WorldMap panel would receive: per-cell aggregates.
    let series = warm.series(0, AggFunc::Mean); // attribute 0 = temperature
    println!("\nmean surface temperature per cell (JSON):");
    let rows: Vec<serde_json::Value> = series
        .iter()
        .map(|(key, value)| {
            let (lat, lon) = key.geohash.center();
            serde_json::json!({
                "geohash": key.geohash.to_string(),
                "time": key.time.to_string(),
                "lat": (lat * 1000.0).round() / 1000.0,
                "lon": (lon * 1000.0).round() / 1000.0,
                "mean_temp_c": (value * 100.0).round() / 100.0,
            })
        })
        .collect();
    println!("{}", serde_json::to_string_pretty(&rows).unwrap());

    cluster.shutdown();
}
