//! STASH vs the ElasticSearch-like baseline (paper §VIII-F, Fig. 8): the
//! same panning stream on both engines over the same dataset, disk, and
//! network models.
//!
//! ES's request cache only helps byte-identical queries, so overlapping
//! pans barely improve; STASH reuses the shared Cells and drops steeply
//! from the second query onward.
//!
//! Run with:
//! ```sh
//! cargo run --release --example elasticsearch_comparison
//! ```

use stash::cluster::{ClusterConfig, SimCluster};
use stash::data::{WorkloadConfig, WorkloadGen};
use stash::elastic::{EsClusterConfig, EsSimCluster};
use stash::geo::BBox;
use stash::model::AggQuery;
use std::time::Instant;

fn time_stream<F: FnMut(&AggQuery)>(queries: &[AggQuery], mut run: F) -> Vec<f64> {
    queries
        .iter()
        .map(|q| {
            let t0 = Instant::now();
            run(q);
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect()
}

fn main() {
    println!("booting STASH and ElasticSearch-like clusters…\n");
    let stash_cluster = SimCluster::new(ClusterConfig::default());
    let es_cluster = EsSimCluster::new(EsClusterConfig::default());
    let stash_client = stash_cluster.client();
    let es_client = es_cluster.client();

    let workload = WorkloadGen::new(WorkloadConfig::default());
    let start = BBox::from_corner_extent(36.0, -104.0, 4.0, 8.0); // state-sized

    // The Fig. 8a stream: a state query, then 8 pans of 20% around it.
    let stream = workload.pan_star(start, 0.20);

    let stash_ms = time_stream(&stream, |q| {
        stash_client.query(q).run().expect("stash query");
    });
    let es_ms = time_stream(&stream, |q| {
        es_client.query(q).expect("es query");
    });

    println!(
        "{:<22} {:>12} {:>12}",
        "interaction", "STASH (ms)", "ES-like (ms)"
    );
    let labels = ["initial state view".to_string()]
        .into_iter()
        .chain((1..stream.len()).map(|i| format!("pan 20% direction {i}")));
    for ((label, s), e) in labels.zip(&stash_ms).zip(&es_ms) {
        println!("{label:<22} {s:>12.2} {e:>12.2}");
    }

    let drop =
        |ms: &[f64]| (1.0 - ms[1..].iter().cloned().fold(f64::INFINITY, f64::min) / ms[0]) * 100.0;
    println!(
        "\nbest latency reduction vs first query:  STASH {:.1}%   ES {:.1}%",
        drop(&stash_ms),
        drop(&es_ms)
    );
    println!("(paper Fig. 8a: STASH between ~49.7% and ~70%, ES between ~0.6% and ~2%)");

    stash_cluster.shutdown();
    es_cluster.shutdown();
}
