//! A full visual-exploration session: the OLAP navigation operators of
//! paper §V-B (dice, pan, drill-down, roll-up) driven against a live STASH
//! cluster, with per-interaction latency and cache provenance.
//!
//! This is the workload STASH is built for: every interaction overlaps the
//! previous ones, so the cache hit ratio climbs as the session progresses.
//!
//! Run with:
//! ```sh
//! cargo run --release --example visual_exploration
//! ```

use stash::cluster::{ClusterClient, ClusterConfig, SimCluster};
use stash::data::{WorkloadConfig, WorkloadGen};
use stash::geo::BBox;
use stash::model::{AggQuery, QueryResult};
use std::time::Instant;

fn step(client: &ClusterClient, label: &str, query: &AggQuery) -> QueryResult {
    let t0 = Instant::now();
    let result = client.query(query).run().expect("query");
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    println!(
        "{label:<28} {ms:>9.2} ms   cells={:<5} hits={:<5} derived={:<4} fetched={:<5} hit-ratio={:>4.0}%",
        result.cells.len(),
        result.cache_hits,
        result.derived_hits,
        result.misses,
        result.hit_ratio() * 100.0
    );
    result
}

fn main() {
    println!("booting STASH cluster…\n");
    let cluster = SimCluster::new(ClusterConfig::default());
    let client = cluster.client();
    let workload = WorkloadGen::new(WorkloadConfig::default());

    // The analyst starts on a state-sized view over the Colorado Rockies.
    let state = BBox::from_corner_extent(37.0, -109.0, 4.0, 8.0);

    println!("== 1. descending iterative dicing (zooming the polygon in) ==");
    for (i, q) in workload.dice_descending(state, 5, 0.20).iter().enumerate() {
        step(
            &client,
            &format!(
                "dice step {} ({:.1}x{:.1} deg)",
                i + 1,
                q.bbox.lat_extent(),
                q.bbox.lon_extent()
            ),
            q,
        );
    }

    println!("\n== 2. panning around the diced region (8 directions, 20%) ==");
    let focus = workload
        .dice_descending(state, 5, 0.20)
        .last()
        .unwrap()
        .clone();
    for (i, q) in workload
        .pan_star(focus.bbox, 0.20)
        .iter()
        .enumerate()
        .skip(1)
    {
        step(&client, &format!("pan direction {i}"), q);
    }

    println!("\n== 3. drill-down (spatial resolution 2 -> 5) ==");
    for q in workload.drill_down(focus.bbox, 2, 5) {
        step(
            &client,
            &format!("drill to resolution {}", q.spatial_res),
            &q,
        );
    }

    println!("\n== 4. roll-up (5 -> 2), served by merging cached children ==");
    for q in workload.roll_up(focus.bbox, 5, 2) {
        step(
            &client,
            &format!("roll up to resolution {}", q.spatial_res),
            &q,
        );
    }

    // Session summary: the collective cache built by this one user.
    println!("\n== session summary ==");
    println!(
        "cells cached across cluster: {}",
        cluster.total_cached_cells()
    );
    let stats = cluster.node_stats();
    let hits: u64 = stats.iter().map(|s| s.cache_hits).sum();
    let misses: u64 = stats.iter().map(|s| s.cache_misses).sum();
    let derived: u64 = stats.iter().map(|s| s.derived).sum();
    let disk: u64 = stats.iter().map(|s| s.disk_reads).sum();
    println!("graph hits: {hits}, misses: {misses}, derived cells: {derived}, block reads: {disk}");

    cluster.shutdown();
}
