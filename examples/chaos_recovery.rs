//! Chaos recovery walkthrough: crash the node that owns a viewport's
//! Cells, watch the query fail over to DFS replicas with an identical
//! answer, then restart the node and watch PLM-driven recomputation
//! repopulate its (wiped) STASH graph — again with an identical answer.
//!
//! The invariant on display is the one the chaos suite enforces: faults
//! may cost latency, but they never change what a query returns, because
//! every cached Cell can be recomputed exactly from DFS blocks.
//!
//! Run with:
//! ```sh
//! cargo run --release --example chaos_recovery
//! ```

use stash::cluster::{ClusterConfig, Mode, SimCluster};
use stash::dfs::{DiskModel, Partitioner};
use stash::geo::{BBox, TemporalRes, TimeRange};
use stash::model::{AggQuery, QueryResult};
use stash::net::FaultPlan;
use std::time::Duration;

fn same_cells(a: &QueryResult, b: &QueryResult) -> bool {
    a.total_count() == b.total_count()
        && a.cells.len() == b.cells.len()
        && a.cells
            .iter()
            .zip(&b.cells)
            .all(|(x, y)| x.key == y.key && x.summary.count() == y.summary.count())
}

fn main() {
    let config = ClusterConfig::builder()
        .n_nodes(4)
        .mode(Mode::Stash)
        .disk(DiskModel::free())
        // Short sub-RPC deadlines so failover is visible in seconds, not
        // the production-sized defaults.
        .sub_rpc_timeout(Duration::from_millis(250))
        .retry_backoff(Duration::from_millis(5))
        .client_timeout(Duration::from_secs(10))
        .build()
        .expect("chaos recovery example config is valid");
    let query = AggQuery::new(
        BBox::from_corner_extent(38.0, -105.0, 0.6, 1.2), // a county viewport
        TimeRange::whole_day(2015, 2, 2),
        4,
        TemporalRes::Day,
    );

    // Every node derives placement from the same pure partitioner, so the
    // front-end can name the owner without asking anyone.
    let keys = query.target_keys(200_000).expect("valid query");
    let partitioner = Partitioner::new(config.n_nodes, config.partition_prefix_len);
    let owner = partitioner.owner_of_cell(&keys[0]);
    let coordinator = (owner + 1) % config.n_nodes;

    let mut cluster = SimCluster::new(config);
    let client = cluster.client();

    let healthy = client.query(&query).run().expect("healthy query");
    println!(
        "healthy cluster : {} cells, {} observations (owner of the viewport: node {owner})",
        healthy.cells.len(),
        healthy.total_count()
    );

    println!("\n--- crash node {owner} ---");
    cluster.crash_node(owner);
    let failed_over = client
        .query(&query)
        .at(coordinator)
        .run()
        .expect("sub-queries fail over to DFS replicas");
    println!(
        "owner down      : {} cells, {} observations — identical: {}",
        failed_over.cells.len(),
        failed_over.total_count(),
        same_cells(&failed_over, &healthy)
    );
    let refused: u64 = cluster.node_stats().iter().map(|s| s.send_failures).sum();
    println!("fabric refused {refused} sends to the corpse; each refusal triggered a failover");

    println!("\n--- restart node {owner} ---");
    cluster.restart_node(owner);
    println!(
        "node {owner} is back with an empty STASH graph ({} cells cached)",
        cluster.node_stats()[owner].graph_cells
    );
    let recovered = client
        .query(&query)
        .at(coordinator)
        .run()
        .expect("query after restart");
    println!(
        "after restart   : {} cells, {} observations — identical: {}",
        recovered.cells.len(),
        recovered.total_count(),
        same_cells(&recovered, &healthy)
    );
    println!(
        "PLM recomputed the owner's share from DFS: node {owner} now caches {} cells",
        cluster.node_stats()[owner].graph_cells
    );

    // Encore: the same invariant under a lossy fabric. 5% of all messages
    // vanish; retries and failover keep every answer exact.
    println!("\n--- 5% uniform message loss ---");
    cluster
        .router()
        .install_faults(FaultPlan::new(42).drop_all(0.05));
    let mut exact = 0;
    let rounds = 20;
    for _ in 0..rounds {
        let r = client.query(&query).run().expect("lossy query");
        exact += same_cells(&r, &healthy) as usize;
    }
    println!(
        "{exact}/{rounds} lossy queries identical; fabric dropped {} messages along the way",
        cluster.router().stats().messages_dropped()
    );

    assert_eq!(exact, rounds, "lossy answers diverged");
    assert!(same_cells(&failed_over, &healthy) && same_cells(&recovered, &healthy));
    println!("\nall answers identical — faults cost latency, never correctness");
    cluster.shutdown();
}
