//! Front-end STASH graph + prefetching (the paper's §IX-A future work):
//! a client-side cache absorbs narrow-browsing interactions entirely, and
//! a momentum prefetcher warms the next predicted viewport.
//!
//! Run with:
//! ```sh
//! cargo run --release --example frontend_cache
//! ```

use stash::cluster::{ClusterConfig, Prefetcher, SimCluster};
use stash::data::{QuerySizeClass, WorkloadConfig, WorkloadGen};
use std::time::Instant;

fn main() {
    println!("booting cluster with a front-end caching client…\n");
    let cluster = SimCluster::new(ClusterConfig::default());
    let plain = cluster.client();
    let cached = cluster.caching_client(50_000);
    let mut prefetcher = Prefetcher::new();

    let wl = WorkloadGen::new(WorkloadConfig::default());
    let mut rng = rand::thread_rng();
    let start = wl.random_bbox(&mut rng, QuerySizeClass::County);

    // A narrow browsing session: pan back and forth over a county.
    let mut session = Vec::new();
    session.extend(wl.pan_star(start, 0.25));
    session.extend(wl.pan_star(start, 0.25)); // the user returns to views

    println!(
        "{:<28} {:>14} {:>14} {:>12}",
        "interaction", "plain (ms)", "front-end (ms)", "prefetched"
    );
    for (i, q) in session.iter().enumerate() {
        // Plain client: every interaction is a round trip to the cluster.
        let t0 = Instant::now();
        plain.query(q).run().expect("plain");
        let plain_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Caching client: local graph first; misses ship only subqueries.
        let t1 = Instant::now();
        cached.query(q).expect("cached");
        let cached_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Prefetch the momentum-predicted next viewport in the background
        // (here: synchronously, to keep the output deterministic).
        let prefetched = if let Some(next) = prefetcher.observe_and_predict(q) {
            cached.query(&next).expect("prefetch");
            "yes"
        } else {
            ""
        };

        println!(
            "{:<28} {plain_ms:>14.2} {cached_ms:>14.2} {prefetched:>12}",
            format!("step {}", i + 1)
        );
    }

    let (local, remote) = cached.interaction_stats();
    println!(
        "\nfront-end graph: {} cells; {} of {} interactions never left the client",
        cached.cached_cells(),
        local,
        local + remote
    );
    cluster.shutdown();
}
