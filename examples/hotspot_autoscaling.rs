//! Hotspot autoscaling (paper §VII, Fig. 6d): a burst of queries over one
//! small region hotspots its owner node; with dynamic Clique replication
//! the burst drains faster because covered requests are rerouted to a
//! guest graph on an antipodal helper.
//!
//! The example runs the same burst twice — replication off, then on — and
//! prints progress and the handoff/reroute counters.
//!
//! Run with:
//! ```sh
//! cargo run --release --example hotspot_autoscaling
//! ```

use rand::rngs::SmallRng;
use rand::SeedableRng;
use stash::cluster::{ClusterConfig, Mode, SimCluster};
use stash::core::StashConfig;
use stash::data::{QuerySizeClass, WorkloadConfig, WorkloadGen};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

fn run_burst(enable_replication: bool, n_requests: usize, n_clients: usize) -> (f64, u64, u64) {
    let config = ClusterConfig::builder()
        .mode(Mode::Stash)
        .enable_replication(enable_replication)
        // Coordination is I/O-bound (a worker mostly waits on its
        // scattered subqueries), so give it enough threads that client
        // pressure reaches the owning node's service tier — where the
        // hotspot actually forms.
        .coord_workers(24)
        // Node capacity is defined by the virtual serve cost (100 us per
        // Cell), far above the simulator's real per-request CPU — so
        // shifting load to a helper genuinely adds capacity (DESIGN.md §2).
        .cell_service_cost(std::time::Duration::from_micros(100))
        .stash(StashConfig {
            hotspot_threshold: 24,
            // Paper §VIII-E: "to compare improvement caused by a
            // replication operation, the cooldown time was set high" —
            // one Clique Handoff, whose replicas then serve the rest of
            // the burst.
            cooldown_ticks: 400,
            routing_ttl_ticks: 1_000_000,
            guest_ttl_ticks: 1_000_000,
            // Depth-3 cliques root at geohash length 3 (~1.4 deg): one
            // clique covers the whole panning neighborhood, so rerouting
            // applies to most of the burst (the paper's "fully replicated"
            // condition).
            clique_depth: 3,
            max_replicable_cells: 16_384,
            reroute_probability: 0.5,
            ..StashConfig::default()
        })
        .build()
        .expect("hotspot example config is valid");
    let cluster = SimCluster::new(config);
    let workload = WorkloadGen::new(WorkloadConfig::default());
    // All clients hammer the same county-sized neighborhood — pinned well
    // inside one 2-character geohash partition ('9x', Wyoming) so exactly
    // one node owns the hotspot, as in the paper's single-region burst.
    let mut rng = SmallRng::seed_from_u64(2015);
    let (dlat, dlon) = QuerySizeClass::County.extent();
    let start = stash::geo::BBox::from_corner_extent(42.0, -107.0, dlat, dlon);
    let queries = Arc::new(workload.hotspot_burst_at(&mut rng, start, n_requests));
    let next = Arc::new(AtomicUsize::new(0));

    let t0 = Instant::now();
    let handles: Vec<_> = (0..n_clients)
        .map(|_| {
            let client = cluster.client();
            let queries = Arc::clone(&queries);
            let next = Arc::clone(&next);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    return;
                }
                client.query(&queries[i]).run().expect("burst query");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();

    let stats = cluster.node_stats();
    let handoffs: u64 = stats.iter().map(|s| s.handoffs).sum();
    let reroutes: u64 = stats.iter().map(|s| s.reroutes).sum();
    let guest_serves: u64 = stats.iter().map(|s| s.guest_serves).sum();
    println!("  handoffs={handoffs} reroutes={reroutes} guest-served subqueries={guest_serves}");
    if enable_replication {
        let hosts: Vec<String> = stats
            .iter()
            .filter(|s| s.guest_cells > 0)
            .map(|s| format!("n{}={} cells", s.node_idx, s.guest_cells))
            .collect();
        println!("  guest graphs: [{}]", hosts.join(", "));
    }
    cluster.shutdown();
    (secs, handoffs, reroutes)
}

fn main() {
    let n_requests = 4000;
    let n_clients = 128;
    println!(
        "hotspot burst: {n_requests} county-level requests around one point, {n_clients} concurrent clients\n"
    );

    println!("— STASH without dynamic replication —");
    let (plain_secs, _, _) = run_burst(false, n_requests, n_clients);
    println!("  completed in {plain_secs:.2} s\n");

    println!("— STASH with dynamic Clique replication —");
    let (repl_secs, handoffs, reroutes) = run_burst(true, n_requests, n_clients);
    println!("  completed in {repl_secs:.2} s\n");

    println!(
        "replication finished {:.2} s earlier ({:+.0}% throughput) with {handoffs} handoffs and {reroutes} rerouted subqueries",
        plain_secs - repl_secs,
        (plain_secs / repl_secs - 1.0) * 100.0,
    );
}
