//! Cross-crate integration tests: the full STASH deployment against the
//! basic system as ground truth, across the paper's navigation operators.

use stash::cluster::{ClusterConfig, Mode, SimCluster};
use stash::core::StashConfig;
use stash::data::{GeneratorConfig, QuerySizeClass, WorkloadConfig, WorkloadGen};
use stash::dfs::DiskModel;
use stash::geo::{TemporalRes, TimeRange};
use stash::model::{AggQuery, QueryResult};

fn config(mode: Mode) -> ClusterConfig {
    ClusterConfig::builder()
        .n_nodes(3)
        .mode(mode)
        .disk(DiskModel::free())
        .generator(GeneratorConfig {
            seed: 99,
            obs_per_deg2_per_day: 40.0,
            max_obs_per_block: 50_000,
            value_quantum: 0.0,
        })
        .scan_cost_per_obs(std::time::Duration::ZERO)
        .cell_service_cost(std::time::Duration::ZERO)
        .build()
        .expect("end-to-end test config is valid")
}

fn workload() -> WorkloadGen {
    WorkloadGen::new(WorkloadConfig {
        spatial_res: 3,
        ..WorkloadConfig::default()
    })
}

/// Results must agree cell-by-cell on counts and extremes.
fn assert_same_answers(a: &QueryResult, b: &QueryResult, context: &str) {
    assert_eq!(a.cells.len(), b.cells.len(), "{context}: cell count");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.key, cb.key, "{context}: key order");
        assert_eq!(
            ca.summary.count(),
            cb.summary.count(),
            "{context}: {:?}",
            ca.key
        );
        for i in 0..ca.summary.n_attrs() {
            assert_eq!(
                ca.summary.attr(i).unwrap().min(),
                cb.summary.attr(i).unwrap().min(),
                "{context}: min attr {i} at {:?}",
                ca.key
            );
            assert_eq!(
                ca.summary.attr(i).unwrap().max(),
                cb.summary.attr(i).unwrap().max(),
                "{context}: max attr {i} at {:?}",
                ca.key
            );
        }
    }
}

#[test]
fn full_exploration_session_matches_ground_truth() {
    let basic = SimCluster::new(config(Mode::Basic));
    let stash = SimCluster::new(config(Mode::Stash));
    let bc = basic.client();
    let sc = stash.client();
    let wl = workload();
    let mut rng = rand::thread_rng();

    // A realistic session: dice in, pan around, drill, roll up — every
    // response must equal the scan-everything ground truth even as the
    // cache warms, derives, and disperses freshness.
    let start = wl.random_bbox(&mut rng, QuerySizeClass::State);
    let mut session: Vec<AggQuery> = Vec::new();
    session.extend(wl.dice_descending(start, 4, 0.20));
    let focus = session.last().unwrap().bbox;
    session.extend(wl.pan_star(focus, 0.20));
    session.extend(wl.drill_down(focus, 2, 4));
    session.extend(wl.roll_up(focus, 4, 2));

    for (i, q) in session.iter().enumerate() {
        let truth = bc.query(q).run().expect("basic");
        let cached = sc.query(q).run().expect("stash");
        assert_same_answers(&truth, &cached, &format!("query {i}"));
    }
    // The session must have exercised the cache paths.
    let stats = stash.node_stats();
    let hits: u64 = stats.iter().map(|s| s.cache_hits).sum();
    assert!(hits > 0, "session produced no cache hits");
    basic.shutdown();
    stash.shutdown();
}

#[test]
fn eviction_pressure_never_corrupts_results() {
    // A cache far too small for the workload: constant replacement, yet
    // answers must stay exact.
    let mut cfg = config(Mode::Stash);
    cfg.stash = StashConfig {
        max_cells: 64,
        safe_fraction: 0.5,
        ..StashConfig::default()
    };
    let stash = SimCluster::new(cfg);
    let basic = SimCluster::new(config(Mode::Basic));
    let sc = stash.client();
    let bc = basic.client();
    // Resolution 4 state queries (~500 cells each) against 64-cell nodes:
    // every query forces replacement.
    let wl = WorkloadGen::new(WorkloadConfig {
        spatial_res: 4,
        ..WorkloadConfig::default()
    });
    let mut rng = rand::thread_rng();

    for _ in 0..2 {
        let start = wl.random_bbox(&mut rng, QuerySizeClass::State);
        for q in wl.pan_walk(&mut rng, start, 0.25, 4) {
            let truth = bc.query(&q).run().expect("basic");
            let cached = sc.query(&q).run().expect("stash");
            assert_same_answers(&truth, &cached, "eviction-pressure query");
        }
    }
    let evictions: u64 = stash.node_stats().iter().map(|s| s.evictions).sum();
    assert!(evictions > 0, "test must actually trigger replacement");
    stash.shutdown();
    basic.shutdown();
}

#[test]
fn temporal_resolutions_round_trip() {
    // Month-resolution queries span many day-blocks; hour queries split
    // them. Both must agree with ground truth.
    let basic = SimCluster::new(config(Mode::Basic));
    let stash = SimCluster::new(config(Mode::Stash));
    let bc = basic.client();
    let sc = stash.client();

    let bbox = stash::geo::BBox::from_corner_extent(40.0, -100.0, 1.0, 1.5);
    for (t_res, range) in [
        (TemporalRes::Hour, TimeRange::whole_day(2015, 2, 2)),
        (
            TemporalRes::Day,
            TimeRange::new(
                stash::geo::time::epoch_seconds(2015, 2, 1, 0, 0, 0),
                stash::geo::time::epoch_seconds(2015, 2, 4, 0, 0, 0),
            )
            .unwrap(),
        ),
        (
            TemporalRes::Month,
            TimeRange::new(
                stash::geo::time::epoch_seconds(2015, 2, 1, 0, 0, 0),
                stash::geo::time::epoch_seconds(2015, 3, 1, 0, 0, 0),
            )
            .unwrap(),
        ),
    ] {
        let q = AggQuery::new(bbox, range, 3, t_res);
        let truth = bc.query(&q).run().expect("basic");
        let cached_cold = sc.query(&q).run().expect("stash cold");
        let cached_warm = sc.query(&q).run().expect("stash warm");
        assert_same_answers(&truth, &cached_cold, &format!("{t_res} cold"));
        assert_same_answers(&truth, &cached_warm, &format!("{t_res} warm"));
        assert_eq!(cached_warm.misses, 0, "{t_res}: warm query must not fetch");
        assert!(truth.total_count() > 0, "{t_res}: no data touched");
    }
    basic.shutdown();
    stash.shutdown();
}

#[test]
fn rollup_after_drilldown_is_served_by_derivation() {
    let stash = SimCluster::new(config(Mode::Stash));
    let sc = stash.client();
    // Query exactly one coarse cell's extent at fine resolution, then roll
    // up: the coarse answer must be derived (no disk).
    let coarse = stash::geo::Geohash::encode(40.0, -100.0, 2).unwrap();
    let fine = AggQuery::new(
        coarse.bbox(),
        TimeRange::whole_day(2015, 2, 2),
        3,
        TemporalRes::Day,
    );
    sc.query(&fine).run().expect("fine");
    let disk_before: u64 = stash.node_stats().iter().map(|s| s.disk_reads).sum();
    let up = fine.rolled_up().unwrap();
    let r = sc.query(&up).run().expect("rollup");
    let disk_after: u64 = stash.node_stats().iter().map(|s| s.disk_reads).sum();
    assert_eq!(r.derived_hits, 1, "rollup must derive the coarse cell");
    assert_eq!(disk_after, disk_before, "derivation must not touch disk");
    stash.shutdown();
}

#[test]
fn staleness_invalidation_is_end_to_end() {
    let stash = SimCluster::new(config(Mode::Stash));
    let sc = stash.client();
    let wl = workload();
    let mut rng = rand::thread_rng();
    let q = wl.random_query(&mut rng, QuerySizeClass::County);

    sc.query(&q).run().expect("populate");
    let warm = sc.query(&q).run().expect("warm");
    assert_eq!(warm.misses, 0);

    // A storage update arrives for the region: all caches must recompute.
    stash.invalidate_region(q.bbox, q.time);
    std::thread::sleep(std::time::Duration::from_millis(100));
    let after = sc.query(&q).run().expect("after invalidation");
    assert!(after.misses > 0, "stale cells must be refetched");
    assert_eq!(
        after.total_count(),
        warm.total_count(),
        "recomputed data must match"
    );
    stash.shutdown();
}
