//! Integration tests for the §IX-A future-work features: the front-end
//! STASH graph (client-side caching) and the momentum prefetcher.

use stash::cluster::{ClusterConfig, Mode, Prefetcher, SimCluster};
use stash::data::{GeneratorConfig, QuerySizeClass, WorkloadConfig, WorkloadGen};
use stash::dfs::DiskModel;

fn cluster(mode: Mode) -> SimCluster {
    SimCluster::new(
        ClusterConfig::builder()
            .n_nodes(3)
            .mode(mode)
            .disk(DiskModel::free())
            .generator(GeneratorConfig {
                seed: 31,
                obs_per_deg2_per_day: 40.0,
                max_obs_per_block: 50_000,
                value_quantum: 0.0,
            })
            .scan_cost_per_obs(std::time::Duration::ZERO)
            .cell_service_cost(std::time::Duration::ZERO)
            .build()
            .expect("frontend cache test config is valid"),
    )
}

fn workload() -> WorkloadGen {
    WorkloadGen::new(WorkloadConfig {
        spatial_res: 3,
        ..WorkloadConfig::default()
    })
}

#[test]
fn caching_client_matches_plain_client() {
    let stash = cluster(Mode::Stash);
    let plain = stash.client();
    let cached = stash.caching_client(10_000);
    let wl = workload();
    let mut rng = rand::thread_rng();

    let start = wl.random_bbox(&mut rng, QuerySizeClass::State);
    let mut session = wl.dice_descending(start, 3, 0.2);
    session.extend(wl.pan_star(session.last().unwrap().bbox, 0.25));

    for (i, q) in session.iter().enumerate() {
        let a = plain.query(q).run().expect("plain");
        let b = cached.query(q).expect("cached");
        assert_eq!(a.total_count(), b.total_count(), "step {i}");
        assert_eq!(a.cells.len(), b.cells.len(), "step {i}");
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.key, cb.key, "step {i}");
            assert_eq!(ca.summary.count(), cb.summary.count(), "step {i}");
        }
    }
    stash.shutdown();
}

#[test]
fn repeat_interactions_never_leave_the_client() {
    let stash = cluster(Mode::Stash);
    let cached = stash.caching_client(10_000);
    let wl = workload();
    let mut rng = rand::thread_rng();
    let q = wl.random_query(&mut rng, QuerySizeClass::County);

    let first = cached.query(&q).expect("first");
    assert!(first.misses > 0, "first interaction must fetch");
    let net_before = stash.net_stats().messages_sent();
    for _ in 0..5 {
        let again = cached.query(&q).expect("repeat");
        assert_eq!(again.misses, 0);
        assert_eq!(again.total_count(), first.total_count());
    }
    assert_eq!(
        stash.net_stats().messages_sent(),
        net_before,
        "repeat interactions must not touch the network at all"
    );
    let (local, remote) = cached.interaction_stats();
    assert_eq!(local, 5);
    assert_eq!(remote, 1);
    stash.shutdown();
}

#[test]
fn partial_overlap_ships_only_missing_cells() {
    let stash = cluster(Mode::Stash);
    let cached = stash.caching_client(10_000);
    let wl = workload();
    let mut rng = rand::thread_rng();
    let q0 = wl.random_query(&mut rng, QuerySizeClass::State);
    let panned = q0.panned(0.25, 0.0, 1.0);

    let r0 = cached.query(&q0).expect("first");
    let r1 = cached.query(&panned).expect("panned");
    // The overlap is served locally; only the leading edge is fetched.
    assert!(r1.cache_hits > 0, "pan must reuse the local graph");
    assert!(
        r1.misses < r0.misses,
        "pan must fetch less than the cold view"
    );
    stash.shutdown();
}

#[test]
fn prefetched_viewport_makes_the_next_pan_local() {
    let stash = cluster(Mode::Stash);
    let cached = stash.caching_client(10_000);
    let mut prefetcher = Prefetcher::new();
    let wl = workload();
    let mut rng = rand::thread_rng();

    let q0 = wl.random_query(&mut rng, QuerySizeClass::County);
    let q1 = q0.panned(1.0, 0.0, 1.0); // full-extent pan east
    let q2 = q1.panned(1.0, 0.0, 1.0); // user continues east

    cached.query(&q0).expect("q0");
    prefetcher.observe_and_predict(&q0);
    cached.query(&q1).expect("q1");
    let predicted = prefetcher.observe_and_predict(&q1).expect("momentum east");
    assert_eq!(
        predicted.bbox, q2.bbox,
        "momentum must predict the next viewport"
    );
    cached.query(&predicted).expect("prefetch");

    // The user's actual next interaction is fully local.
    let r2 = cached.query(&q2).expect("q2");
    assert_eq!(
        r2.misses, 0,
        "prefetched viewport must be a complete local hit"
    );
    stash.shutdown();
}

#[test]
fn client_cache_capacity_is_bounded() {
    let stash = cluster(Mode::Stash);
    let cached = stash.caching_client(50); // tiny front-end budget
    let wl = workload();
    let mut rng = rand::thread_rng();
    for _ in 0..6 {
        let q = wl.random_query(&mut rng, QuerySizeClass::State);
        cached.query(&q).expect("query");
        assert!(
            cached.cached_cells() <= 50,
            "front-end graph exceeded its budget: {}",
            cached.cached_cells()
        );
    }
    stash.shutdown();
}
