//! Temporal slicing through the full stack: the analyst steps through
//! consecutive day slices with the map fixed (the OLAP *slice* of §V-B).
//! Distinct slices are distinct Cells; revisited slices are cache hits.

use stash::cluster::{ClusterConfig, Mode, SimCluster};
use stash::data::{GeneratorConfig, QuerySizeClass, WorkloadConfig, WorkloadGen};
use stash::dfs::DiskModel;

fn cluster(mode: Mode) -> SimCluster {
    SimCluster::new(
        ClusterConfig::builder()
            .n_nodes(3)
            .mode(mode)
            .disk(DiskModel::free())
            .generator(GeneratorConfig {
                seed: 77,
                obs_per_deg2_per_day: 40.0,
                max_obs_per_block: 50_000,
                value_quantum: 0.0,
            })
            .scan_cost_per_obs(std::time::Duration::ZERO)
            .cell_service_cost(std::time::Duration::ZERO)
            .build()
            .expect("slicing test config is valid"),
    )
}

#[test]
fn day_slices_are_distinct_then_replayable() {
    let stash = cluster(Mode::Stash);
    let basic = cluster(Mode::Basic);
    let sc = stash.client();
    let bc = basic.client();
    let wl = WorkloadGen::new(WorkloadConfig {
        spatial_res: 3,
        ..WorkloadConfig::default()
    });
    let mut rng = rand::thread_rng();
    let bbox = wl.random_bbox(&mut rng, QuerySizeClass::County);
    let slices = wl.slice_days(bbox, 5);

    // Forward pass: every slice is new data (no temporal overlap) and must
    // match ground truth.
    let mut counts = Vec::new();
    let mut temp_sums = Vec::new();
    for (i, q) in slices.iter().enumerate() {
        let truth = bc.query(q).run().expect("basic");
        let r = sc.query(q).run().expect("stash");
        assert_eq!(r.total_count(), truth.total_count(), "slice {i}");
        assert_eq!(r.cache_hits, 0, "slice {i} must be uncached on first visit");
        counts.push(r.total_count());
        temp_sums.push(
            r.cells
                .iter()
                .map(|c| c.summary.attr(0).unwrap().sum)
                .sum::<f64>(),
        );
    }
    // Different days carry different observations (counts are deterministic
    // per block, so compare the aggregated values).
    assert!(
        temp_sums.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-9),
        "slices all identical: {temp_sums:?}"
    );

    // Backward pass: scrubbing the time slider back is all cache hits.
    for (i, q) in slices.iter().enumerate().rev() {
        let r = sc.query(q).run().expect("replay");
        assert_eq!(r.misses, 0, "slice {i} must be cached on replay");
        assert_eq!(r.total_count(), counts[i], "slice {i} replay data");
    }
    stash.shutdown();
    basic.shutdown();
}

#[test]
fn month_rollup_over_sliced_days_derives_from_cache() {
    // Slice through all days of February, then ask for the month at the
    // same spatial resolution: the month Cells must be derivable from the
    // cached day Cells (temporal children), with no disk.
    let stash = cluster(Mode::Stash);
    let sc = stash.client();
    let bbox = stash::geo::Geohash::encode(40.0, -100.0, 3).unwrap().bbox();
    let wl = WorkloadGen::new(WorkloadConfig {
        spatial_res: 3,
        time: stash::geo::TimeRange::whole_day(2015, 2, 1),
        ..WorkloadConfig::default()
    });
    for q in wl.slice_days(bbox, 28) {
        sc.query(&q).run().expect("day slice");
    }
    let disk_before: u64 = stash.node_stats().iter().map(|s| s.disk_reads).sum();
    let month_query = stash::model::AggQuery::new(
        bbox,
        stash::geo::TimeRange::new(
            stash::geo::time::epoch_seconds(2015, 2, 1, 0, 0, 0),
            stash::geo::time::epoch_seconds(2015, 3, 1, 0, 0, 0),
        )
        .unwrap(),
        3,
        stash::geo::TemporalRes::Month,
    );
    let r = sc.query(&month_query).run().expect("month");
    let disk_after: u64 = stash.node_stats().iter().map(|s| s.disk_reads).sum();
    assert!(
        r.derived_hits > 0,
        "month cells must derive from cached days"
    );
    assert_eq!(r.misses, 0, "nothing fetched");
    assert_eq!(disk_after, disk_before, "no disk for the roll-up");
    assert!(r.total_count() > 0);
    stash.shutdown();
}
