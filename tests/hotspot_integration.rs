//! Integration tests for the Clique Handoff pipeline (§VII): detection →
//! antipode selection → replication → rerouting → guest serving, with
//! correctness held against the basic system throughout.

use stash::cluster::{ClusterConfig, Mode, SimCluster};
use stash::core::StashConfig;
use stash::data::{GeneratorConfig, QuerySizeClass, WorkloadConfig, WorkloadGen};
use stash::dfs::DiskModel;
use stash::geo::BBox;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// These tests measure queue-pressure behaviour; running them concurrently
/// on one machine perturbs each other's timing, so they serialize here.
static SERIAL: Mutex<()> = Mutex::new(());

fn hotspot_config(enable_replication: bool) -> ClusterConfig {
    ClusterConfig::builder()
        .n_nodes(4)
        .mode(Mode::Stash)
        .enable_replication(enable_replication)
        .coord_workers(16)
        .disk(DiskModel::free())
        .cell_service_cost(std::time::Duration::from_micros(400))
        .generator(GeneratorConfig {
            seed: 5,
            obs_per_deg2_per_day: 30.0,
            max_obs_per_block: 50_000,
            value_quantum: 0.0,
        })
        .stash(StashConfig {
            hotspot_threshold: 4,
            cooldown_ticks: 100,
            clique_depth: 3,
            max_replicable_cells: 16_384,
            reroute_probability: 0.6,
            routing_ttl_ticks: 1_000_000,
            guest_ttl_ticks: 1_000_000,
            ..StashConfig::default()
        })
        .build()
        .expect("hotspot test config is valid")
}

fn workload() -> WorkloadGen {
    WorkloadGen::new(WorkloadConfig {
        spatial_res: 4,
        ..WorkloadConfig::default()
    })
}

fn drive(cluster: &SimCluster, queries: Arc<Vec<stash::model::AggQuery>>, clients: usize) {
    let next = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let client = cluster.client();
            let queries = Arc::clone(&queries);
            let next = Arc::clone(&next);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    return;
                }
                client.query(&queries[i]).run().expect("burst query");
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// A pinned single-partition county region ('9x' = Wyoming).
fn pinned_burst(n: usize) -> Vec<stash::model::AggQuery> {
    let wl = workload();
    let (dlat, dlon) = QuerySizeClass::County.extent();
    let start = BBox::from_corner_extent(42.0, -107.0, dlat, dlon);
    let mut rng = rand::thread_rng();
    wl.hotspot_burst_at(&mut rng, start, n)
}

#[test]
fn burst_triggers_handoff_and_rerouting() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cluster = SimCluster::new(hotspot_config(true));
    let queries = Arc::new(pinned_burst(600));
    drive(&cluster, queries, 48);

    let stats = cluster.node_stats();
    let handoffs: u64 = stats.iter().map(|s| s.handoffs).sum();
    let reroutes: u64 = stats.iter().map(|s| s.reroutes).sum();
    let guest_serves: u64 = stats.iter().map(|s| s.guest_serves).sum();
    let guest_cells: usize = stats.iter().map(|s| s.guest_cells).sum();
    assert!(
        handoffs >= 1,
        "burst must trigger at least one Clique Handoff"
    );
    assert!(guest_cells > 0, "a helper must hold replicas");
    assert!(reroutes > 0, "covered queries must be rerouted");
    assert_eq!(
        reroutes, guest_serves,
        "every reroute is served from a guest graph"
    );
    cluster.shutdown();
}

#[test]
fn replication_disabled_never_hands_off() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let cluster = SimCluster::new(hotspot_config(false));
    let queries = Arc::new(pinned_burst(300));
    drive(&cluster, queries, 48);
    let stats = cluster.node_stats();
    assert_eq!(stats.iter().map(|s| s.handoffs).sum::<u64>(), 0);
    assert_eq!(stats.iter().map(|s| s.reroutes).sum::<u64>(), 0);
    assert_eq!(stats.iter().map(|s| s.guest_cells).sum::<usize>(), 0);
    cluster.shutdown();
}

#[test]
fn rerouted_answers_match_ground_truth() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Run the burst (causing rerouting), then verify every distinct query's
    // answer against the basic system.
    let stash = SimCluster::new(hotspot_config(true));
    let queries = Arc::new(pinned_burst(400));
    drive(&stash, Arc::clone(&queries), 48);
    assert!(
        stash.node_stats().iter().map(|s| s.reroutes).sum::<u64>() > 0,
        "precondition: rerouting must have happened"
    );

    let mut basic_config = hotspot_config(false);
    basic_config.mode = Mode::Basic;
    let basic = SimCluster::new(basic_config);
    let sc = stash.client();
    let bc = basic.client();
    // The 8 distinct rectangles of the burst.
    let mut seen = std::collections::HashSet::new();
    for q in queries.iter() {
        if seen.insert(format!("{:.6}:{:.6}", q.bbox.min_lat, q.bbox.min_lon)) {
            let truth = bc.query(q).run().expect("basic");
            let cached = sc.query(q).run().expect("stash");
            assert_eq!(truth.total_count(), cached.total_count());
            assert_eq!(truth.cells.len(), cached.cells.len());
        }
    }
    stash.shutdown();
    basic.shutdown();
}

#[test]
fn helper_guest_graph_is_isolated_from_local() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // After a burst with replication, helpers' local graphs must not
    // contain the hotspotted region's cells (they live in the guest graph).
    let cluster = SimCluster::new(hotspot_config(true));
    let queries = Arc::new(pinned_burst(600));
    drive(&cluster, queries, 48);

    let stats = cluster.node_stats();
    let helper = stats.iter().find(|s| s.guest_cells > 0);
    if let Some(h) = helper {
        // The helper hosts replicas and served guests; its replica count
        // tracks its guestbook, not its own partition's cache.
        assert!(h.replicas_hosted > 0);
        assert!(h.guest_cells > 0);
    } else {
        // Rerouting may legitimately not occur if the burst drained before
        // the threshold was crossed; the other tests pin down the common
        // path. Fail loudly so flakiness is visible rather than silent.
        panic!("no helper held guest cells after the burst");
    }
    cluster.shutdown();
}
