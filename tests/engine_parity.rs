//! Parity tests: STASH, the basic system, and the ElasticSearch-like
//! baseline must all report identical aggregates over identical data —
//! the precondition for every latency comparison in Fig. 6 and Fig. 8.

use proptest::prelude::*;
use stash::cluster::{ClusterConfig, Mode, SimCluster};
use stash::data::GeneratorConfig;
use stash::dfs::DiskModel;
use stash::elastic::{EsClusterConfig, EsSimCluster};
use stash::geo::{BBox, TemporalRes, TimeRange};
use stash::model::AggQuery;

fn generator() -> GeneratorConfig {
    GeneratorConfig {
        seed: 404,
        obs_per_deg2_per_day: 40.0,
        max_obs_per_block: 50_000,
        value_quantum: 0.0,
    }
}

fn stash_cluster(mode: Mode) -> SimCluster {
    SimCluster::new(
        ClusterConfig::builder()
            .n_nodes(3)
            .mode(mode)
            .disk(DiskModel::free())
            .generator(generator())
            .scan_cost_per_obs(std::time::Duration::ZERO)
            .cell_service_cost(std::time::Duration::ZERO)
            .build()
            .expect("parity test config is valid"),
    )
}

fn es_cluster() -> EsSimCluster {
    EsSimCluster::new(EsClusterConfig {
        n_nodes: 3,
        n_shards: 12,
        disk: DiskModel::free(),
        generator: generator(),
        scan_cost_per_obs: std::time::Duration::ZERO,
        ..EsClusterConfig::default()
    })
}

#[test]
fn three_engines_agree_on_a_query_set() {
    let basic = stash_cluster(Mode::Basic);
    let stash = stash_cluster(Mode::Stash);
    let es = es_cluster();
    let (bc, sc, ec) = (basic.client(), stash.client(), es.client());

    let queries = [
        AggQuery::new(
            BBox::from_corner_extent(38.0, -105.0, 0.6, 1.2),
            TimeRange::whole_day(2015, 2, 2),
            4,
            TemporalRes::Day,
        ),
        AggQuery::new(
            BBox::from_corner_extent(35.0, -110.0, 4.0, 8.0),
            TimeRange::whole_day(2015, 2, 2),
            3,
            TemporalRes::Day,
        ),
        AggQuery::new(
            BBox::from_corner_extent(42.0, -95.0, 1.0, 1.0),
            TimeRange::whole_day(2015, 7, 15),
            4,
            TemporalRes::Hour,
        ),
    ];
    for (i, q) in queries.iter().enumerate() {
        let rb = bc.query(q).run().expect("basic");
        let rs = sc.query(q).run().expect("stash");
        let re = ec.query(q).expect("es");
        assert!(rb.total_count() > 0, "query {i} found no data");
        assert_eq!(rb.total_count(), rs.total_count(), "query {i}: stash count");
        assert_eq!(rb.total_count(), re.total_count(), "query {i}: es count");
        assert_eq!(rb.cells.len(), rs.cells.len(), "query {i}: stash cells");
        assert_eq!(rb.cells.len(), re.cells.len(), "query {i}: es cells");
        for ((cb, cs), ce) in rb.cells.iter().zip(&rs.cells).zip(&re.cells) {
            assert_eq!(cb.key, cs.key);
            assert_eq!(cb.key, ce.key);
            for a in 0..cb.summary.n_attrs() {
                assert_eq!(
                    cb.summary.attr(a).unwrap().min(),
                    cs.summary.attr(a).unwrap().min()
                );
                assert_eq!(
                    cb.summary.attr(a).unwrap().min(),
                    ce.summary.attr(a).unwrap().min()
                );
                assert_eq!(
                    cb.summary.attr(a).unwrap().max(),
                    ce.summary.attr(a).unwrap().max()
                );
            }
        }
    }
    basic.shutdown();
    stash.shutdown();
    es.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case runs real cluster queries; keep the count low
        .. ProptestConfig::default()
    })]

    /// Random queries: STASH (cold then warm) must equal the basic system.
    #[test]
    fn stash_matches_basic_on_random_queries(
        lat in 25.0f64..50.0,
        lon in -125.0f64..-70.0,
        dlat in 0.3f64..3.0,
        dlon in 0.3f64..3.0,
        res in 2u8..=4,
    ) {
        let basic = stash_cluster(Mode::Basic);
        let stash = stash_cluster(Mode::Stash);
        let q = AggQuery::new(
            BBox::from_corner_extent(lat, lon, dlat, dlon),
            TimeRange::whole_day(2015, 2, 2),
            res,
            TemporalRes::Day,
        );
        let truth = basic.client().query(&q).run().expect("basic");
        let sc = stash.client();
        let cold = sc.query(&q).run().expect("cold");
        let warm = sc.query(&q).run().expect("warm");
        prop_assert_eq!(truth.total_count(), cold.total_count());
        prop_assert_eq!(truth.total_count(), warm.total_count());
        prop_assert_eq!(truth.cells.len(), warm.cells.len());
        prop_assert_eq!(warm.misses, 0);
        basic.shutdown();
        stash.shutdown();
    }
}
