//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! The build container has no registry access, so the workspace vendors the
//! small API slice it actually uses: `Mutex`, `RwLock`, and `Condvar` with
//! parking_lot semantics (no lock poisoning — a poisoned std lock is
//! recovered transparently, matching parking_lot's behaviour of simply not
//! having the concept).

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Mutex

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

// ---------------------------------------------------------------------------
// RwLock

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------------
// Condvar

pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_for_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_all();
        });
        let mut done = pair.0.lock();
        while !*done {
            let r = pair.1.wait_for(&mut done, Duration::from_secs(5));
            assert!(!r.timed_out(), "worker should signal quickly");
        }
        drop(done);
        h.join().unwrap();
    }
}
