//! Offline stand-in for `rayon`: `slice.par_iter().map(f).collect()` only,
//! implemented with `std::thread::scope`. Input order is preserved in the
//! collected output, as rayon guarantees.

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

pub trait IntoParallelRefIterator<'a> {
    type Item: 'a;
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

pub struct ParIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    pub fn map<U, F>(self, f: F) -> ParMap<'a, T, F>
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

pub struct ParMap<'a, T, F> {
    slice: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    pub fn collect<U, C>(self) -> C
    where
        F: Fn(&'a T) -> U + Sync,
        U: Send,
        C: FromIterator<U>,
    {
        let len = self.slice.len();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(len)
            .max(1);
        if threads <= 1 {
            return self.slice.iter().map(&self.f).collect();
        }
        let chunk = len.div_ceil(threads);
        let f = &self.f;
        let chunks: Vec<Vec<U>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .slice
                .chunks(chunk)
                .map(|part| s.spawn(move || part.iter().map(f).collect::<Vec<U>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon shim worker panicked"))
                .collect()
        });
        chunks.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn preserves_order_and_maps_all() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled.len(), 1000);
        for (i, d) in doubled.iter().enumerate() {
            assert_eq!(*d, i as u64 * 2);
        }
    }

    #[test]
    fn works_on_tiny_inputs() {
        let v = vec![7u32];
        let out: Vec<u32> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
        let empty: Vec<u32> = Vec::<u32>::new().par_iter().map(|x| *x).collect();
        assert!(empty.is_empty());
    }
}
