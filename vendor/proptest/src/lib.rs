//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace uses: the `proptest!` macro with an
//! optional `#![proptest_config(..)]` header, range/tuple/`any`/`vec`/
//! `uniform2`/`prop_map`/`prop_oneof!` strategies, and the `prop_assert*`
//! macros. Cases are generated from a seed derived from the test name, so
//! every run explores the same inputs. There is **no shrinking**: a failing
//! case reports its assertion message directly.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Mirror of `proptest::test_runner::Config` (only `cases` is honored).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// The RNG handed to strategies.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Deterministic per test name: same inputs on every run.
        pub fn for_test(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl rand::Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// A failed property case (returned by `prop_assert*`).
    #[derive(Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: String) -> Self {
            TestCaseError { message }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Generates values of `Self::Value`. Object-safe so `prop_oneof!` can
    /// box heterogeneous strategies with a common value type.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { strategy: self, f }
        }
    }

    /// Always yields a clone of the value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// Uniform choice among boxed strategies (the `prop_oneof!` backend).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Helper used by `prop_oneof!` so type inference unifies the arms.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! sampled_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    sampled_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident : $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    pub trait Arbitrary: Sized {
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_with(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_with(rng: &mut TestRng) -> f64 {
            rng.gen()
        }
    }

    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_with(rng)
        }
    }

    /// `any::<T>()` — the full domain of `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Mirror of proptest's `SizeRange` (inclusive bounds).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "vec size range must be non-empty");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, sizes)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Uniform2<S>(S);

    impl<S: Strategy> Strategy for Uniform2<S> {
        type Value = [S::Value; 2];
        fn generate(&self, rng: &mut TestRng) -> [S::Value; 2] {
            [self.0.generate(rng), self.0.generate(rng)]
        }
    }

    /// `prop::array::uniform2(strategy)` — a 2-array of independent draws.
    pub fn uniform2<S: Strategy>(s: S) -> Uniform2<S> {
        Uniform2(s)
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let __pt_config: $crate::test_runner::Config = $cfg;
                let mut __pt_rng =
                    $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                for __pt_case in 0..__pt_config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __pt_rng);
                    )*
                    let __pt_result = (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = __pt_result {
                        ::std::panic!("proptest case {} failed: {}", __pt_case, e.message);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)*);
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::boxed($strat)),+
        ])
    };
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` module alias.
    pub mod prop {
        pub use crate::{array, collection};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples((a, b) in (0usize..10, -2.0f64..2.0), flag in crate::arbitrary::any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(usize::from(flag) <= 1);
        }

        #[test]
        fn vec_sizes(v in prop::collection::vec(0u8..=255, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7, "len {}", v.len());
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![(0u32..5).prop_map(|v| v * 2), Just(99u32)]) {
            prop_assert!(x == 99 || x < 10);
        }

        #[test]
        fn arrays(rows in prop::collection::vec(prop::array::uniform2(-1.0f64..1.0), 0..4)) {
            for r in &rows {
                prop_assert!(r[0].abs() <= 1.0 && r[1].abs() <= 1.0);
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = (0u64..1_000_000, 0u64..1_000_000);
        let mut r1 = crate::test_runner::TestRng::for_test("t");
        let mut r2 = crate::test_runner::TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
