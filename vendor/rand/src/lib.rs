//! Offline stand-in for the `rand` crate.
//!
//! Implements the API slice the workspace uses — `Rng::{gen, gen_range,
//! gen_bool}`, `SeedableRng::seed_from_u64`, `rngs::{SmallRng, StdRng}`,
//! `thread_rng`, and `seq::SliceRandom::{shuffle, choose}` — over a single
//! xoshiro256** generator. Streams are deterministic per seed but are NOT
//! bit-compatible with the real rand crate.

use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Generator core: splitmix64-seeded xoshiro256**.

#[derive(Clone, Debug)]
struct Core {
    s: [u64; 4],
}

impl Core {
    fn from_u64(seed: u64) -> Self {
        // splitmix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Core {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

// ---------------------------------------------------------------------------
// Traits

/// Types samplable by `Rng::gen` (the shim's analogue of rand's `Standard`
/// distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform sample of `T`'s full "standard" domain (`[0,1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a (half-open or inclusive) range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// `[0,1)` double — 53 random mantissa bits.
    fn gen_f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

// ---------------------------------------------------------------------------
// StandardSample impls

impl StandardSample for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        rng.gen_f64_unit()
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// SampleRange impls

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + rng.gen_f64_unit() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + rng.gen_f64_unit() * (hi - lo)
    }
}

// NOTE: no SampleRange<f32> impls — a second float candidate would defeat
// the `{float} -> f64` literal fallback that call sites rely on.

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// Concrete rngs

pub mod rngs {
    use super::{Core, Rng, SeedableRng};

    macro_rules! rng_struct {
        ($(#[$doc:meta])* $name:ident) => {
            $(#[$doc])*
            #[derive(Clone, Debug)]
            pub struct $name(pub(crate) Core);

            impl Rng for $name {
                fn next_u64(&mut self) -> u64 {
                    self.0.next_u64()
                }
            }

            impl SeedableRng for $name {
                fn seed_from_u64(seed: u64) -> Self {
                    $name(Core::from_u64(seed))
                }
            }
        };
    }

    #[cfg(feature = "small_rng")]
    rng_struct!(
        /// Fast, seedable, non-cryptographic generator.
        SmallRng
    );

    rng_struct!(
        /// The "standard" generator (same core as SmallRng in this shim).
        StdRng
    );

    rng_struct!(
        /// Per-call generator handed out by [`thread_rng`](super::thread_rng).
        ThreadRng
    );
}

/// A lazily-seeded generator, unique per call (entropy mixed from time and a
/// process-wide counter — no OS RNG in the offline container).
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x9E37_79B9);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let c = COUNTER.fetch_add(0x6C07_9680_27F4_4FB1, Ordering::Relaxed);
    rngs::ThreadRng(Core::from_u64(t ^ c))
}

// ---------------------------------------------------------------------------
// seq

pub mod seq {
    use super::Rng;

    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get((rng.next_u64() % self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.gen_range(-3.0..3.0);
            assert!((-3.0..3.0).contains(&x));
            let n = r.gen_range(10usize..20);
            assert!((10..20).contains(&n));
            let m = r.gen_range(1u8..=12);
            assert!((1..=12).contains(&m));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
