//! Offline stand-in for the `crossbeam` crate.
//!
//! Only `crossbeam::channel` is vendored — multi-producer multi-consumer
//! channels (bounded and unbounded) with the subset of the real API this
//! workspace uses: `send`, `recv`, `recv_timeout`, `try_recv`, `len`,
//! cloneable senders *and* receivers, and disconnect detection on both ends.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    fn pair<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel with unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        pair(None)
    }

    /// A channel that holds at most `cap` messages; `send` blocks when full.
    /// (`cap == 0` is treated as capacity 1 — this shim has no rendezvous
    /// channels, and the workspace never uses them.)
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        pair(Some(cap.max(1)))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = matches!(self.shared.cap, Some(cap) if st.queue.len() >= cap);
                if !full {
                    st.queue.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .shared
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            if st.senders == 0 {
                // Wake receivers blocked in recv so they observe disconnect.
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake senders blocked on a full bounded channel.
                self.shared.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn unbounded_fifo() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            assert_eq!(tx.len(), 10);
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detected_both_ways() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<u32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(7).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = bounded::<usize>(4);
            let mut producers = Vec::new();
            for p in 0..4 {
                let tx = tx.clone();
                producers.push(std::thread::spawn(move || {
                    for i in 0..100 {
                        tx.send(p * 100 + i).unwrap();
                    }
                }));
            }
            drop(tx);
            let mut consumers = Vec::new();
            for _ in 0..2 {
                let rx = rx.clone();
                consumers.push(std::thread::spawn(move || {
                    let mut got = 0usize;
                    while rx.recv().is_ok() {
                        got += 1;
                    }
                    got
                }));
            }
            drop(rx);
            for h in producers {
                h.join().unwrap();
            }
            let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 400);
        }
    }
}
