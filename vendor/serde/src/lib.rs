//! Offline stand-in for `serde`.
//!
//! Instead of serde's visitor architecture, this shim routes everything
//! through a concrete JSON-like [`value::Value`] tree:
//!
//! - [`Serialize`] has two mutually-recursive methods with defaults:
//!   `to_value` (overridden by derived impls and primitives) and
//!   `serialize` (overridden by hand-written impls, exactly like real
//!   serde). A [`Serializer`] consumes a finished `Value`.
//! - [`Deserialize`] mirrors this with `from_value` / `deserialize`.
//!
//! Hand-written impls in the workspace (e.g. `SummaryStats`) therefore
//! compile unchanged against `serde::Serializer` / `serde::Deserializer`,
//! while `#[derive(Serialize, Deserialize)]` is provided by the companion
//! `serde_derive` shim.

pub mod value {
    /// A JSON-like tree. Object fields keep insertion order, which makes
    /// serialization deterministic.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        I64(i64),
        U64(u64),
        F64(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub static NULL: Value = Value::Null;

    impl Value {
        pub fn is_null(&self) -> bool {
            matches!(self, Value::Null)
        }

        pub fn is_array(&self) -> bool {
            matches!(self, Value::Array(_))
        }

        pub fn is_object(&self) -> bool {
            matches!(self, Value::Object(_))
        }

        pub fn as_bool(&self) -> Option<bool> {
            match self {
                Value::Bool(b) => Some(*b),
                _ => None,
            }
        }

        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::String(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_array(&self) -> Option<&Vec<Value>> {
            match self {
                Value::Array(a) => Some(a),
                _ => None,
            }
        }

        pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
            match self {
                Value::Object(o) => Some(o),
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::I64(v) => Some(*v),
                Value::U64(v) => i64::try_from(*v).ok(),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::U64(v) => Some(*v),
                Value::I64(v) => u64::try_from(*v).ok(),
                _ => None,
            }
        }

        pub fn as_f64(&self) -> Option<f64> {
            match self {
                Value::F64(v) => Some(*v),
                Value::I64(v) => Some(*v as f64),
                Value::U64(v) => Some(*v as f64),
                _ => None,
            }
        }

        /// Object field lookup; `None` for non-objects or missing keys.
        pub fn get(&self, key: &str) -> Option<&Value> {
            self.as_object()
                .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
        }

        /// Object field lookup used by derived `from_value`: missing fields
        /// read as `Null` (so `Option<T>` fields default to `None`).
        pub fn get_or_null(&self, key: &str) -> &Value {
            self.get(key).unwrap_or(&NULL)
        }

        /// A short description of the variant, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::I64(_) | Value::U64(_) => "integer",
                Value::F64(_) => "number",
                Value::String(_) => "string",
                Value::Array(_) => "array",
                Value::Object(_) => "object",
            }
        }
    }

    impl std::ops::Index<&str> for Value {
        type Output = Value;
        fn index(&self, key: &str) -> &Value {
            self.get_or_null(key)
        }
    }

    impl std::ops::Index<usize> for Value {
        type Output = Value;
        fn index(&self, idx: usize) -> &Value {
            self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
        }
    }

    // Numeric-aware comparisons so tests can write
    // `assert_eq!(v["cache_hits"], 3)` like with real serde_json.
    macro_rules! eq_signed {
        ($($t:ty),*) => {$(
            impl PartialEq<$t> for Value {
                fn eq(&self, other: &$t) -> bool {
                    match self {
                        Value::I64(v) => *v == *other as i64,
                        Value::U64(v) => i64::try_from(*v) == Ok(*other as i64),
                        Value::F64(v) => *v == *other as f64,
                        _ => false,
                    }
                }
            }
        )*};
    }
    eq_signed!(i8, i16, i32, i64, isize);

    macro_rules! eq_unsigned {
        ($($t:ty),*) => {$(
            impl PartialEq<$t> for Value {
                fn eq(&self, other: &$t) -> bool {
                    match self {
                        Value::U64(v) => *v == *other as u64,
                        Value::I64(v) => u64::try_from(*v) == Ok(*other as u64),
                        Value::F64(v) => *v == *other as f64,
                        _ => false,
                    }
                }
            }
        )*};
    }
    eq_unsigned!(u8, u16, u32, u64, usize);

    impl PartialEq<f64> for Value {
        fn eq(&self, other: &f64) -> bool {
            self.as_f64() == Some(*other)
        }
    }

    impl PartialEq<bool> for Value {
        fn eq(&self, other: &bool) -> bool {
            self.as_bool() == Some(*other)
        }
    }

    impl PartialEq<&str> for Value {
        fn eq(&self, other: &&str) -> bool {
            self.as_str() == Some(*other)
        }
    }

    impl PartialEq<str> for Value {
        fn eq(&self, other: &str) -> bool {
            self.as_str() == Some(other)
        }
    }

    impl PartialEq<String> for Value {
        fn eq(&self, other: &String) -> bool {
            self.as_str() == Some(other.as_str())
        }
    }
}

pub mod ser {
    /// Error constraint for serializers.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// Serializers consume a finished [`Value`](crate::value::Value) tree.
    pub trait Serializer: Sized {
        type Ok;
        type Error: Error;

        fn serialize_value(self, value: crate::value::Value) -> Result<Self::Ok, Self::Error>;
    }

    /// The serializer behind the default `Serialize::to_value`.
    pub struct ValueSerializer;

    /// Error type for [`ValueSerializer`] (also usable by custom impls).
    #[derive(Debug)]
    pub struct SerError(pub String);

    impl std::fmt::Display for SerError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for SerError {}

    impl Error for SerError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            SerError(msg.to_string())
        }
    }

    impl Serializer for ValueSerializer {
        type Ok = crate::value::Value;
        type Error = SerError;

        fn serialize_value(self, value: crate::value::Value) -> Result<Self::Ok, Self::Error> {
            Ok(value)
        }
    }
}

pub mod de {
    /// Error constraint for deserializers; `serde::de::Error::custom` is
    /// how hand-written impls reject invalid wire data.
    pub trait Error: Sized + std::fmt::Debug + std::fmt::Display {
        fn custom<T: std::fmt::Display>(msg: T) -> Self;
    }

    /// Deserializers produce a [`Value`](crate::value::Value) tree which
    /// `from_value` implementations then destructure.
    pub trait Deserializer<'de>: Sized {
        type Error: Error;

        fn deserialize_value(self) -> Result<crate::value::Value, Self::Error>;
    }

    /// The concrete error type of value-tree deserialization.
    #[derive(Debug, Clone)]
    pub struct DeError(pub String);

    impl DeError {
        pub fn message(msg: impl Into<String>) -> Self {
            DeError(msg.into())
        }
    }

    impl std::fmt::Display for DeError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for DeError {}

    impl Error for DeError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            DeError(msg.to_string())
        }
    }

    /// The deserializer behind the default `Deserialize::from_value`.
    pub struct ValueDeserializer<'a>(pub &'a crate::value::Value);

    impl<'de, 'a> Deserializer<'de> for ValueDeserializer<'a> {
        type Error = DeError;

        fn deserialize_value(self) -> Result<crate::value::Value, Self::Error> {
            Ok(self.0.clone())
        }
    }

    /// Marker for types deserializable from any lifetime (all of them, in
    /// this owned-value shim).
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}

    impl<T: for<'de> crate::Deserialize<'de>> DeserializeOwned for T {}
}

pub use de::Deserializer;
pub use ser::Serializer;

/// See the crate docs: override `to_value` (derive does) *or* `serialize`
/// (hand-written impls do), never neither.
pub trait Serialize {
    fn to_value(&self) -> value::Value {
        match self.serialize(ser::ValueSerializer) {
            Ok(v) => v,
            Err(e) => panic!("serialization to Value cannot fail: {e}"),
        }
    }

    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.to_value())
    }
}

/// Mirror of [`Serialize`]: override `from_value` (derive does) *or*
/// `deserialize` (hand-written impls do).
pub trait Deserialize<'de>: Sized {
    fn from_value(v: &value::Value) -> Result<Self, de::DeError> {
        Self::deserialize(de::ValueDeserializer(v))
    }

    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.deserialize_value()?;
        Self::from_value(&v).map_err(<D::Error as de::Error>::custom)
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Primitive and container impls

use value::Value;

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<'de> Deserialize<'de> for Value {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }

    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        v.as_bool()
            .ok_or_else(|| de::DeError(format!("expected bool, got {}", v.kind())))
    }
}

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, de::DeError> {
                let n = v.as_u64().or_else(|| match v {
                    Value::F64(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        Some(*f as u64)
                    }
                    _ => None,
                });
                n.and_then(|n| <$t>::try_from(n).ok()).ok_or_else(|| {
                    de::DeError(format!(
                        "expected {}, got {}",
                        stringify!($t),
                        v.kind()
                    ))
                })
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }

        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, de::DeError> {
                let n = v.as_i64().or_else(|| match v {
                    Value::F64(f)
                        if f.fract() == 0.0
                            && *f >= i64::MIN as f64
                            && *f <= i64::MAX as f64 =>
                    {
                        Some(*f as i64)
                    }
                    _ => None,
                });
                n.and_then(|n| <$t>::try_from(n).ok()).ok_or_else(|| {
                    de::DeError(format!(
                        "expected {}, got {}",
                        stringify!($t),
                        v.kind()
                    ))
                })
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        v.as_f64()
            .ok_or_else(|| de::DeError(format!("expected f64, got {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| de::DeError(format!("expected f32, got {}", v.kind())))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| de::DeError(format!("expected string, got {}", v.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, de::DeError> {
        v.as_array()
            .ok_or_else(|| de::DeError(format!("expected array, got {}", v.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, de::DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| de::DeError(format!("expected array tuple, got {}", v.kind())))?;
                const LEN: usize = [$($idx),+].len();
                if arr.len() != LEN {
                    return Err(de::DeError(format!(
                        "expected {}-tuple, got array of {}",
                        LEN,
                        arr.len()
                    )));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::value::Value;
    use super::*;

    #[test]
    fn primitives_roundtrip_through_values() {
        assert_eq!(42u32.to_value(), Value::U64(42));
        assert_eq!(u32::from_value(&Value::U64(42)).unwrap(), 42);
        assert_eq!((-7i64).to_value(), Value::I64(-7));
        assert_eq!(i64::from_value(&Value::I64(-7)).unwrap(), -7);
        assert!(u8::from_value(&Value::U64(300)).is_err());
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(None::<f64>.to_value(), Value::Null);
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u64, 2, 3];
        let tree = v.to_value();
        assert!(tree.is_array());
        assert_eq!(Vec::<u64>::from_value(&tree).unwrap(), v);
        let pair = (1u8, -2i32);
        assert_eq!(<(u8, i32)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn manual_impl_path_uses_serializer() {
        // A type that overrides `serialize` (like SummaryStats does) must
        // still work through the default `to_value`.
        struct Manual(u64);
        impl Serialize for Manual {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                Value::Object(vec![("inner".to_string(), Value::U64(self.0))]).serialize(serializer)
            }
        }
        let v = Manual(9).to_value();
        assert_eq!(v["inner"], 9u64);
    }

    #[test]
    fn value_indexing_and_eq() {
        let v = Value::Object(vec![
            ("a".into(), Value::U64(3)),
            ("b".into(), Value::Array(vec![Value::String("x".into())])),
        ]);
        assert_eq!(v["a"], 3);
        assert_eq!(v["b"][0], "x");
        assert!(v["missing"].is_null());
    }
}
