//! Offline stand-in for `criterion`: the macro/builder API the benches use
//! (`criterion_group!`, `criterion_main!`, groups, `iter`, `iter_custom`,
//! `iter_batched`, `Throughput`) over a small mean/min timing loop that
//! prints one line per benchmark. No plotting, no statistics, no baselines.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    /// Quick mode: one sample per benchmark (used when run under
    /// `cargo test`, mirroring criterion's --test behaviour).
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            test_mode: false,
        }
    }
}

impl Criterion {
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().any(|a| a == "--test") {
            self.test_mode = true;
        }
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let (samples, budget) = if self.criterion.test_mode {
            (1, Duration::from_millis(1))
        } else {
            (self.sample_size, self.measurement_time)
        };
        let mut b = Bencher {
            samples,
            budget,
            durations: Vec::new(),
            iters: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id, &b, self.throughput);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: usize,
    budget: Duration,
    durations: Vec<Duration>,
    iters: Vec<u64>,
}

impl Bencher {
    fn record(&mut self, d: Duration, iters: u64) {
        self.durations.push(d);
        self.iters.push(iters);
    }

    fn budget_left(&self) -> bool {
        self.durations.len() < self.samples && self.durations.iter().sum::<Duration>() < self.budget
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warmup outside measurement.
        black_box(routine());
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.record(t0.elapsed(), 1);
            if !self.budget_left() {
                break;
            }
        }
    }

    /// The closure measures `iters` iterations itself and returns the total.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut routine: F) {
        loop {
            let d = routine(1);
            self.record(d, 1);
            if !self.budget_left() {
                break;
            }
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        loop {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.record(t0.elapsed(), 1);
            if !self.budget_left() {
                break;
            }
        }
    }
}

fn report(group: &str, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.durations.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let total: Duration = b.durations.iter().sum();
    let n: u64 = b.iters.iter().sum();
    let mean = total.as_secs_f64() / n as f64;
    let min = b
        .durations
        .iter()
        .zip(&b.iters)
        .map(|(d, &i)| d.as_secs_f64() / i.max(1) as f64)
        .fold(f64::INFINITY, f64::min);
    let rate = match throughput {
        Some(Throughput::Elements(e)) => format!(", {:.0} elem/s", e as f64 / mean),
        Some(Throughput::Bytes(by)) => format!(", {:.0} B/s", by as f64 / mean),
        None => String::new(),
    };
    println!(
        "{group}/{id}: mean {:.3} ms, min {:.3} ms over {} samples{rate}",
        mean * 1e3,
        min * 1e3,
        b.durations.len()
    );
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50));
        group.throughput(Throughput::Elements(100));
        group.bench_function("iter", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box((0..100u64).product::<u64>());
                }
                t0.elapsed()
            })
        });
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.into_iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_every_style() {
        benches();
    }
}
