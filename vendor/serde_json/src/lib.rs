//! Offline stand-in for `serde_json`, built on the value-tree `serde` shim:
//! a JSON writer (compact + pretty), a recursive-descent parser, `json!`,
//! and the `to_string` / `to_value` / `from_str` entry points. Floats are
//! written with Rust's shortest-roundtrip formatting, so the
//! `float_roundtrip` feature is inherently satisfied.

pub use serde::value::Value;
use serde::Serialize;

#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::de::DeError> for Error {
    fn from(e: serde::de::DeError) -> Self {
        Error(e.0)
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Entry points

pub fn to_value<T: Serialize>(value: T) -> Result<Value> {
    Ok(value.to_value())
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` is shortest-roundtrip and always keeps a decimal
                // point or exponent (`1.0`, not `1`), matching serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                // serde_json writes non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', step * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

pub fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of JSON".into()))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::String(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            b => Err(Error(format!(
                "unexpected character `{}` at byte {}",
                b as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                b => return Err(Error(format!("expected `,` or `]`, got `{}`", b as char))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                b => return Err(Error(format!("expected `,` or `}}`, got `{}`", b as char))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(Error("lone leading surrogate".into()));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let cp = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo
                                        .checked_sub(0xDC00)
                                        .ok_or_else(|| Error("bad low surrogate".into()))?);
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("bad surrogate pair".into()))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error("bad \\u escape".into()))?
                            };
                            out.push(c);
                        }
                        b => return Err(Error(format!("bad escape `\\{}`", b as char))),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: copy the full sequence.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error("truncated UTF-8".into()))?;
                    out.push_str(
                        std::str::from_utf8(chunk)
                            .map_err(|_| Error("invalid UTF-8 in string".into()))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        let chunk = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("truncated \\u escape".into()))?;
        self.pos += 4;
        let s = std::str::from_utf8(chunk).map_err(|_| Error("bad \\u escape".into()))?;
        u32::from_str_radix(s, 16).map_err(|_| Error("bad \\u escape".into()))
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

/// Build a [`Value`] in place. Supports `null`, object literals with
/// string-literal keys whose values are expressions, array literals of
/// expressions, and bare expressions (anything `Serialize`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$elem).unwrap() ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val).unwrap()) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other).unwrap() };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in [
            "null", "true", "false", "0", "-12", "3.5", "1e300", "\"hi\"",
        ] {
            let v = parse(text).unwrap();
            assert_eq!(to_string(&v).unwrap(), text);
        }
        assert_eq!(parse("1.0").unwrap(), Value::F64(1.0));
        assert_eq!(to_string(&Value::F64(1.0)).unwrap(), "1.0");
    }

    #[test]
    fn nested_structures_roundtrip() {
        let text = r#"{"a":[1,2.5,null,{"b":"x\ny"}],"c":true}"#;
        let v = parse(text).unwrap();
        assert_eq!(to_string(&v).unwrap(), text);
        assert_eq!(v["a"][1], 2.5);
        assert_eq!(v["a"][3]["b"], "x\ny");
        assert_eq!(v["c"], true);
    }

    #[test]
    fn non_finite_floats_write_null() {
        assert_eq!(to_string(&Value::F64(f64::INFINITY)).unwrap(), "null");
        assert_eq!(to_string(&Value::F64(f64::NAN)).unwrap(), "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""é😀""#).unwrap();
        assert_eq!(v, "é😀");
        let written = to_string(&Value::String("é😀".into())).unwrap();
        assert_eq!(parse(&written).unwrap(), "é😀");
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({"name": "stash", "n": 3, "xs": [1.5, 2.5]});
        assert_eq!(v["name"], "stash");
        assert_eq!(v["n"], 3);
        assert_eq!(v["xs"].as_array().unwrap().len(), 2);
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(7u8), Value::U64(7));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = parse(r#"{"a":[1,2],"b":{"c":null}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(parse(&pretty).unwrap(), v);
    }
}
