//! Offline stand-in for `serde_derive`, targeting the value-tree `serde`
//! shim in `vendor/serde`.
//!
//! Hand-parses the derive input (no `syn`/`quote` in the offline
//! container) and supports exactly the shapes this workspace derives:
//!
//! - structs with named fields      → JSON object keyed by field name
//! - fieldless enums                → JSON string of the variant name
//! - newtype tuple structs `T(U)`   → the inner value, transparently
//!
//! Generics, `#[serde(...)]` attributes, and data-carrying enums are not
//! supported and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named fields, in declaration order.
    NamedStruct(Vec<String>),
    /// Tuple struct arity (only 1 is supported).
    TupleStruct(usize),
    /// Fieldless variant names, in declaration order.
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("::core::compile_error!({msg:?});").parse().unwrap()
}

/// Skip one attribute (`#` already consumed ⇒ consume the `[...]` group;
/// also tolerates inner attributes' `!`).
fn skip_attr(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '!' {
            iter.next();
        }
    }
    iter.next(); // the [...] group
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let mut iter = input.into_iter().peekable();

    // Attributes and visibility before `struct` / `enum`.
    let kind = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => skip_attr(&mut iter),
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "pub" {
                    // Possible `pub(crate)` / `pub(in ...)` restriction.
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                } else if s == "struct" || s == "enum" {
                    break s;
                }
                // other modifiers (there are none we care about) — skip
            }
            Some(_) => {}
            None => return Err("derive input ended before struct/enum keyword".into()),
        }
    };

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };

    match iter.next() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => Err(format!(
            "serde_derive shim: generic type `{name}` is not supported"
        )),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Ok(Input {
                    name,
                    shape: Shape::NamedStruct(parse_named_fields(g.stream())?),
                })
            } else {
                Ok(Input {
                    name,
                    shape: Shape::UnitEnum(parse_unit_variants(g.stream())?),
                })
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            if kind != "struct" {
                return Err("unexpected parentheses after enum name".into());
            }
            Ok(Input {
                name,
                shape: Shape::TupleStruct(count_tuple_fields(g.stream())),
            })
        }
        other => Err(format!(
            "unsupported definition body for `{name}`: {other:?}"
        )),
    }
}

/// Field names of a named struct: skip attrs + visibility, take the ident
/// before `:`, then skip the type (tracking `<`/`>` depth so commas inside
/// generics don't split fields).
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Leading attributes / visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    skip_attr(&mut iter);
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = iter.next() else { break };
        let TokenTree::Ident(field) = tok else {
            return Err(format!("expected field name, got {tok:?}"));
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, got {other:?}")),
        }
        fields.push(field.to_string());
        // Skip the type until a top-level comma.
        let mut angle_depth = 0i32;
        for tok in iter.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Variant names of a fieldless enum; rejects payloads and discriminants.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    skip_attr(&mut iter);
                }
                _ => break,
            }
        }
        let Some(tok) = iter.next() else { break };
        let TokenTree::Ident(variant) = tok else {
            return Err(format!("expected variant name, got {tok:?}"));
        };
        variants.push(variant.to_string());
        match iter.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                // Explicit discriminant: skip its expression.
                loop {
                    match iter.next() {
                        None => break,
                        Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                        Some(_) => {}
                    }
                }
            }
            Some(other) => {
                return Err(format!(
                    "serde_derive shim: only fieldless enums are supported, got {other:?} after variant"
                ))
            }
        }
    }
    Ok(variants)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut n = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_token = false;
    for tok in body {
        saw_token = true;
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => n += 1,
            _ => {}
        }
    }
    // `(T)` has one field but zero commas; `(T, U,)` has a trailing comma.
    if saw_token {
        n + 1
    } else {
        0
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::value::Value::Object(::std::vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            return compile_error(&format!(
                "serde_derive shim: tuple struct `{name}` has {n} fields; \
                 only newtypes are supported"
            ))
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "::serde::value::Value::String(::std::string::String::from(match self {{ {arms} }}))"
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::value::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = match parse_input(input) {
        Ok(p) => p,
        Err(e) => return compile_error(&e),
    };
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::NamedStruct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.get_or_null({f:?})).map_err(\
                             |e| ::serde::de::DeError(::std::format!(\"{name}.{f}: {{}}\", e)))?,"
                    )
                })
                .collect();
            format!(
                "if !v.is_object() {{\n\
                     return ::std::result::Result::Err(::serde::de::DeError(::std::format!(\
                         \"expected object for {name}, got {{}}\", v.kind())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            return compile_error(&format!(
                "serde_derive shim: tuple struct `{name}` has {n} fields; \
                 only newtypes are supported"
            ))
        }
        Shape::UnitEnum(variants) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("::std::option::Option::Some({v:?}) => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match v.as_str() {{\n\
                     {arms}\n\
                     _ => ::std::result::Result::Err(::serde::de::DeError(::std::format!(\
                         \"invalid {name} variant: {{:?}}\", v))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_value(v: &::serde::value::Value) -> ::std::result::Result<Self, ::serde::de::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
