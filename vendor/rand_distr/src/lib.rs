//! Offline stand-in for `rand_distr`: the `Distribution` trait and a `Zipf`
//! distribution (the only one the workspace samples). Zipf uses an explicit
//! normalized-CDF table with binary search — exact, O(log n) per sample.

use rand::Rng;

pub trait Distribution<T> {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Zipf distribution over `1..=n` with exponent `s`: `P(k) ∝ k^-s`.
/// Samples are returned as `f64` (integral values), matching rand_distr.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ZipfError {
    /// `n == 0`
    NTooSmall,
    /// `s` negative or non-finite
    STooSmall,
}

impl std::fmt::Display for ZipfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZipfError::NTooSmall => f.write_str("Zipf requires n >= 1"),
            ZipfError::STooSmall => f.write_str("Zipf requires finite s >= 0"),
        }
    }
}

impl std::error::Error for ZipfError {}

impl Zipf {
    pub fn new(n: u64, s: f64) -> Result<Zipf, ZipfError> {
        if n == 0 {
            return Err(ZipfError::NTooSmall);
        }
        if !s.is_finite() || s < 0.0 {
            return Err(ZipfError::STooSmall);
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point shortfall at the top end.
        *cdf.last_mut().expect("n >= 1") = 1.0;
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&c| c < u);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_domain() {
        let z = Zipf::new(100, 0.8).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = z.sample(&mut rng);
            assert!((1.0..=100.0).contains(&v));
            assert_eq!(v.fract(), 0.0);
        }
    }

    #[test]
    fn skew_prefers_low_ranks() {
        let z = Zipf::new(1000, 1.2).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut low = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) <= 10.0 {
                low += 1;
            }
        }
        // With s=1.2 over 1000 ranks, the top-10 mass is > 50%.
        assert!(low > N / 2, "got {low}/{N} in the top-10 ranks");
    }

    #[test]
    fn rejects_degenerate_params() {
        assert!(Zipf::new(0, 1.0).is_err());
        assert!(Zipf::new(10, -1.0).is_err());
        assert!(Zipf::new(10, f64::NAN).is_err());
        assert!(Zipf::new(1, 0.0).is_ok());
    }
}
