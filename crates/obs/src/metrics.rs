//! Named-metric registry shared per node.
//!
//! Lookup/registration takes a short `RwLock` once per name; the returned
//! `Arc` handle is then recorded through with plain relaxed atomics, so the
//! hot path never touches the lock. Names are `subsystem.object.event`
//! (see DESIGN.md §11) and snapshots come back sorted by name so reports
//! are stable across runs.

use crate::hist::{Histogram, HistogramSnapshot};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::Arc;

/// Monotonic event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn inc(&self) {
        self.0.fetch_add(1, Relaxed);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// Instantaneous signed level (queue depths, resident cells, …).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// One metric's value in a [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    /// Boxed: a snapshot's bucket arrays are ~1 KiB, far larger than the
    /// scalar variants sharing this enum.
    Histogram(Box<HistogramSnapshot>),
}

#[derive(Default)]
struct Tables {
    counters: HashMap<String, Arc<Counter>>,
    gauges: HashMap<String, Arc<Gauge>>,
    histograms: HashMap<String, Arc<Histogram>>,
}

/// Per-node registry of named counters, gauges, and histograms.
#[derive(Default)]
pub struct MetricsRegistry {
    tables: RwLock<Tables>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Handle to the counter `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.tables.read().counters.get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.tables
                .write()
                .counters
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Handle to the gauge `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self.tables.read().gauges.get(name) {
            return Arc::clone(g);
        }
        Arc::clone(
            self.tables
                .write()
                .gauges
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Handle to the histogram `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.tables.read().histograms.get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.tables
                .write()
                .histograms
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Convenience: bump the counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.counter(name).inc();
    }

    /// Convenience: record `v` into the histogram `name`.
    pub fn observe(&self, name: &str, v: u64) {
        self.histogram(name).record(v);
    }

    /// All metrics, sorted by name for stable output.
    pub fn snapshot(&self) -> Vec<(String, MetricValue)> {
        let t = self.tables.read();
        let mut out: Vec<(String, MetricValue)> = t
            .counters
            .iter()
            .map(|(k, v)| (k.clone(), MetricValue::Counter(v.get())))
            .chain(
                t.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), MetricValue::Gauge(v.get()))),
            )
            .chain(
                t.histograms
                    .iter()
                    .map(|(k, v)| (k.clone(), MetricValue::Histogram(Box::new(v.snapshot())))),
            )
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let t = self.tables.read();
        f.debug_struct("MetricsRegistry")
            .field("counters", &t.counters.len())
            .field("gauges", &t.gauges.len())
            .field("histograms", &t.histograms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_metric() {
        let r = MetricsRegistry::new();
        let a = r.counter("graph.hit");
        let b = r.counter("graph.hit");
        a.inc();
        b.add(2);
        assert_eq!(r.counter("graph.hit").get(), 3);
    }

    #[test]
    fn kinds_are_namespaced_independently() {
        let r = MetricsRegistry::new();
        r.counter("x").inc();
        r.gauge("x").set(-5);
        r.observe("x", 7);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        assert!(snap.iter().all(|(name, _)| name == "x"));
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = MetricsRegistry::new();
        r.inc("b.second");
        r.inc("a.first");
        r.inc("c.third");
        let names: Vec<String> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "b.second", "c.third"]);
    }

    #[test]
    fn concurrent_registration_and_recording() {
        let r = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for _ in 0..500 {
                        r.inc("shared.count");
                        r.observe("shared.lat", 1024);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(r.counter("shared.count").get(), 4000);
        assert_eq!(r.histogram("shared.lat").count(), 4000);
    }
}
