//! Fixed-bucket log₂ latency histogram.
//!
//! Bucket `0` holds the value `0`; bucket `i` (1..=64) holds values in
//! `[2^(i-1), 2^i - 1]` — i.e. a value lands in the bucket equal to its bit
//! width. Alongside each bucket count we keep the bucket's running *sum*,
//! so a percentile query can return the mean of the selected bucket: exact
//! when every sample in that bucket is equal (typical for modeled costs and
//! test fixtures), and within the bucket's 2× width otherwise. Global
//! min/max are tracked exactly and clamp the result.
//!
//! Everything is relaxed atomics — recording is lock-free and wait-free;
//! concurrent snapshots are monitoring-grade, not linearizable.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Bucket `0` for the value zero plus one bucket per possible bit width.
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket that holds `v`: its bit width.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Lock-free log₂ histogram of `u64` samples (by convention: nanoseconds).
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; NUM_BUCKETS],
    sums: [AtomicU64; NUM_BUCKETS],
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            sums: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&self, v: u64) {
        let b = bucket_of(v);
        self.counts[b].fetch_add(1, Relaxed);
        self.sums[b].fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Record a duration as whole nanoseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Relaxed)).sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sums.iter().map(|s| s.load(Relaxed)).sum()
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        let m = self.min.load(Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Mean sample, or 0 if empty.
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// The `p`-th percentile (`p` in `0..=100`), as the mean of the bucket
    /// holding the rank-`⌈p/100·n⌉` sample, clamped to the observed
    /// `[min, max]`. Exact when that bucket's samples are all equal.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// A consistent-enough copy for offline inspection.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; NUM_BUCKETS];
        let mut sums = [0u64; NUM_BUCKETS];
        for i in 0..NUM_BUCKETS {
            counts[i] = self.counts[i].load(Relaxed);
            sums[i] = self.sums[i].load(Relaxed);
        }
        HistogramSnapshot {
            counts,
            sums,
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub counts: [u64; NUM_BUCKETS],
    pub sums: [u64; NUM_BUCKETS],
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// See [`Histogram::percentile`].
    pub fn percentile(&self, p: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as u64;
        let rank = rank.min(n);
        let mut seen = 0u64;
        for b in 0..NUM_BUCKETS {
            seen += self.counts[b];
            if seen >= rank {
                let mean = self.sums[b] / self.counts[b];
                return mean.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_bit_widths() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn powers_of_two_land_in_distinct_buckets() {
        let h = Histogram::new();
        for i in 0..64 {
            h.record(1u64 << i);
        }
        let s = h.snapshot();
        assert_eq!(s.counts[0], 0);
        for b in 1..NUM_BUCKETS {
            assert_eq!(s.counts[b], 1, "bucket {b}");
            assert_eq!(s.sums[b], 1u64 << (b - 1));
        }
    }

    #[test]
    fn percentiles_are_exact_for_uniform_buckets() {
        let h = Histogram::new();
        // 90 fast samples, 9 medium, 1 slow — each group shares a bucket.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..9 {
            h.record(64_000);
        }
        h.record(1_000_000);
        assert_eq!(h.percentile(50.0), 1_000);
        assert_eq!(h.percentile(90.0), 1_000);
        assert_eq!(h.percentile(95.0), 64_000);
        assert_eq!(h.percentile(99.0), 64_000);
        assert_eq!(h.percentile(100.0), 1_000_000);
    }

    #[test]
    fn percentile_of_single_sample_is_that_sample() {
        let h = Histogram::new();
        h.record(12_345);
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), 12_345);
        }
    }

    #[test]
    fn percentile_clamps_to_observed_extremes() {
        let h = Histogram::new();
        // 5 and 7 share bucket 3 (mean 6 — never observed); clamping keeps
        // the answer inside [min, max] but cannot invent unseen precision.
        h.record(5);
        h.record(7);
        let p50 = h.percentile(50.0);
        assert!((5..=7).contains(&p50));
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 7);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.percentile(50.0), 0);
    }

    #[test]
    fn zero_samples_use_the_zero_bucket() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.snapshot().counts[0], 2);
        assert_eq!(h.percentile(99.0), 0);
    }

    #[test]
    fn concurrent_records_are_not_lost() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        h.record(256);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.count(), 8000);
        assert_eq!(h.sum(), 8000 * 256);
        assert_eq!(h.percentile(99.0), 256);
    }
}
