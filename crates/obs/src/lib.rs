//! Observability primitives for the STASH cluster.
//!
//! Three pieces, all allocation-free on the hot path:
//!
//! - [`MetricsRegistry`] — a per-node registry of named [`Counter`]s,
//!   [`Gauge`]s, and [`Histogram`]s. Registration takes a lock once;
//!   recording through the returned `Arc` handle is lock-free atomics.
//! - [`Histogram`] — fixed log₂ buckets over `u64` nanoseconds with
//!   per-bucket sums, so percentile extraction is exact whenever every
//!   sample in the selected bucket is equal (the common case for modeled
//!   costs) and bounded by the 2× bucket width otherwise.
//! - [`QueryTrace`] / [`StageTimes`] — lightweight tracing spans that ride
//!   the cluster RPC envelope: per-stage timings (route, PLM check, graph
//!   merge, DFS scan, wire, retry/backoff, reply waits) recorded along the
//!   query path and returned to the client next to the result.
//!
//! Metric names follow `subsystem.object.event` (e.g. `graph.hit`,
//! `handoff.attempt`, `query.stage.dfs`); see DESIGN.md §11.

mod hist;
mod metrics;
mod trace;

pub use hist::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use metrics::{Counter, Gauge, MetricValue, MetricsRegistry};
pub use trace::{QueryTrace, StageTimes};
