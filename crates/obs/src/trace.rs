//! Per-query tracing spans.
//!
//! A [`QueryTrace`] is assembled by the coordinating node and carried back
//! to the client inside the `QueryResponse` RPC; each owner's sub-query
//! reply carries a [`StageTimes`] that the coordinator folds into the
//! trace's cluster-wide aggregate. Two views coexist:
//!
//! - `local` — disjoint wall-clock segments of the *coordinator thread*
//!   (route, its own PLM check / merge / DFS share, reply waits, retry
//!   backoff). By construction `local.sum_ns() <= wall_ns`, which is the
//!   invariant the chaos suite checks under fault injection.
//! - `agg` — the same stages summed across *every* node the query touched,
//!   plus wire time from `Router` delivery timestamps. Parallel fan-out
//!   means `agg` routinely exceeds the wall clock; it answers "where did
//!   the cluster spend work", not "why did I wait".

/// Per-stage nanosecond totals for one (sub-)query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    /// Partitioning the viewport and scattering sub-queries.
    pub route_ns: u64,
    /// PLM completeness checks + cache lookups (`get_many`).
    pub plm_ns: u64,
    /// Derivation from finer levels, inserts, and result merging.
    pub merge_ns: u64,
    /// DFS scans: fetching observations for cells the cache couldn't serve.
    pub dfs_ns: u64,
    /// Simulated wire time (latency + fault delays) across RPC legs.
    pub wire_ns: u64,
    /// Backoff sleeps and re-sent attempts after timeouts.
    pub retry_ns: u64,
    /// First-attempt blocking waits for sub-query replies.
    pub wait_ns: u64,
}

impl StageTimes {
    /// Fold another stage record into this one, stage by stage.
    pub fn add(&mut self, other: &StageTimes) {
        self.route_ns += other.route_ns;
        self.plm_ns += other.plm_ns;
        self.merge_ns += other.merge_ns;
        self.dfs_ns += other.dfs_ns;
        self.wire_ns += other.wire_ns;
        self.retry_ns += other.retry_ns;
        self.wait_ns += other.wait_ns;
    }

    /// Total across all stages.
    pub fn sum_ns(&self) -> u64 {
        self.route_ns
            + self.plm_ns
            + self.merge_ns
            + self.dfs_ns
            + self.wire_ns
            + self.retry_ns
            + self.wait_ns
    }

    /// `(label, value)` pairs in report order.
    pub fn stages(&self) -> [(&'static str, u64); 7] {
        [
            ("route", self.route_ns),
            ("plm", self.plm_ns),
            ("merge", self.merge_ns),
            ("dfs", self.dfs_ns),
            ("wire", self.wire_ns),
            ("retry", self.retry_ns),
            ("wait", self.wait_ns),
        ]
    }
}

/// End-to-end trace of one client query, returned beside its result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryTrace {
    /// Disjoint coordinator-thread segments; `local.sum_ns() <= wall_ns`.
    pub local: StageTimes,
    /// Cluster-wide stage totals (may exceed `wall_ns` under fan-out).
    pub agg: StageTimes,
    /// Coordinator wall clock from receipt to reply.
    pub wall_ns: u64,
    /// Sub-queries scattered to other owners.
    pub subqueries: u32,
    /// DFS replica-failover rounds taken.
    pub failovers: u32,
    /// Sub-RPC attempts beyond the first (timeout retries + reroute resends).
    pub retries: u32,
}

impl QueryTrace {
    /// Fold one owner's sub-query stage record into the aggregate view.
    pub fn absorb_sub(&mut self, sub: &StageTimes) {
        self.agg.add(sub);
    }

    /// The coordinator-thread accounted time; never exceeds `wall_ns`.
    pub fn local_sum_ns(&self) -> u64 {
        self.local.sum_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn times(route: u64, dfs: u64, wire: u64) -> StageTimes {
        StageTimes {
            route_ns: route,
            dfs_ns: dfs,
            wire_ns: wire,
            ..StageTimes::default()
        }
    }

    #[test]
    fn add_is_stage_wise() {
        let mut a = times(1, 2, 3);
        a.add(&times(10, 20, 30));
        assert_eq!(a, times(11, 22, 33));
        assert_eq!(a.sum_ns(), 66);
    }

    #[test]
    fn stages_cover_every_field() {
        let all_ones = StageTimes {
            route_ns: 1,
            plm_ns: 1,
            merge_ns: 1,
            dfs_ns: 1,
            wire_ns: 1,
            retry_ns: 1,
            wait_ns: 1,
        };
        assert_eq!(all_ones.stages().iter().map(|(_, v)| v).sum::<u64>(), 7);
        assert_eq!(all_ones.sum_ns(), 7);
    }

    #[test]
    fn absorb_sub_only_touches_aggregate() {
        let mut t = QueryTrace {
            local: times(5, 0, 0),
            wall_ns: 100,
            ..QueryTrace::default()
        };
        t.absorb_sub(&times(0, 40, 7));
        assert_eq!(t.local, times(5, 0, 0));
        assert_eq!(t.agg, times(0, 40, 7));
        assert_eq!(t.local_sum_ns(), 5);
    }
}
