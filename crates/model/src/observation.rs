//! Raw multidimensional observations — what the backing store holds.
//!
//! "The data collections we consider comprise multidimensional observations
//! that are stored in files — each observation has spatial coordinates
//! (latitude and longitude) and an observational timestamp associated with
//! it" (paper §I-B).

use crate::attr::AttrSchema;
use crate::key::CellKey;
use serde::{Deserialize, Serialize};
use stash_geo::{Geohash, TemporalRes, TimeBin};

/// One observation: a georeferenced, timestamped row of attribute values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    pub lat: f64,
    pub lon: f64,
    /// UTC epoch seconds.
    pub time: i64,
    /// Attribute values, aligned with the dataset's [`AttrSchema`].
    pub values: Vec<f64>,
}

impl Observation {
    pub fn new(lat: f64, lon: f64, time: i64, values: Vec<f64>) -> Self {
        Observation {
            lat,
            lon,
            time,
            values,
        }
    }

    /// The key of the Cell this observation falls into at the given
    /// resolutions, or `None` if its coordinates are invalid.
    pub fn cell_key(&self, spatial_res: u8, temporal_res: TemporalRes) -> Option<CellKey> {
        let gh = Geohash::encode(self.lat, self.lon, spatial_res).ok()?;
        Some(CellKey::new(
            gh,
            TimeBin::containing(temporal_res, self.time),
        ))
    }

    /// Validate the row against a schema.
    pub fn matches_schema(&self, schema: &AttrSchema) -> bool {
        self.values.len() == schema.len()
    }

    /// Approximate serialized size in bytes, for disk/network cost models.
    pub fn estimated_bytes(&self) -> usize {
        // lat + lon + time + values
        8 + 8 + 8 + 8 * self.values.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;

    #[test]
    fn cell_key_bins_the_observation() {
        let obs = Observation::new(
            37.7749,
            -122.4194,
            epoch_seconds(2015, 3, 9, 14, 0, 0),
            vec![21.5, 0.4, 0.0, 0.0],
        );
        let k = obs.cell_key(5, TemporalRes::Month).unwrap();
        assert_eq!(k.geohash.to_string(), "9q8yy");
        assert_eq!(k.time.to_string(), "2015-03");
        assert!(k.geohash.bbox().contains(obs.lat, obs.lon));
        assert!(k.time.range().contains(obs.time));
    }

    #[test]
    fn invalid_coordinates_have_no_cell() {
        let obs = Observation::new(95.0, 0.0, 0, vec![]);
        assert!(obs.cell_key(4, TemporalRes::Day).is_none());
    }

    #[test]
    fn schema_match() {
        let schema = AttrSchema::nam();
        let ok = Observation::new(0.0, 0.0, 0, vec![1.0; 4]);
        let bad = Observation::new(0.0, 0.0, 0, vec![1.0; 3]);
        assert!(ok.matches_schema(&schema));
        assert!(!bad.matches_schema(&schema));
    }

    #[test]
    fn estimated_bytes_grows_with_width() {
        let narrow = Observation::new(0.0, 0.0, 0, vec![1.0]);
        let wide = Observation::new(0.0, 0.0, 0, vec![1.0; 10]);
        assert!(wide.estimated_bytes() > narrow.estimated_bytes());
        assert_eq!(narrow.estimated_bytes(), 32);
    }
}
