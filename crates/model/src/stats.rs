//! Mergeable per-attribute summary statistics.
//!
//! STASH returns "aggregated summary statistics" as the main content of a
//! Cell (Table I of the paper). The statistics kept here — count, min, max,
//! sum, sum of squares — are exactly the ones a visualization front-end
//! needs for heatmaps and histograms (max temperature, mean humidity, …),
//! and crucially they are **decomposable**: merging the summaries of the 32
//! spatial children of a cell yields the summary of the parent, bit-for-bit
//! identical to aggregating the raw observations directly. That algebraic
//! property is what makes roll-up queries answerable from cache.

use serde::{Deserialize, Serialize};
use stash_sketch::{AttrSketches, MergeError, SketchSpec};

/// Aggregated statistics for one attribute over one spatiotemporal bin.
///
/// An *empty* summary (`count == 0`) is the monoid identity: merging it into
/// anything is a no-op, and its min/max/mean are undefined (`None`).
///
/// Serialization: the in-memory ±∞ sentinels of an empty summary are not
/// representable in JSON (the front-end protocol, §VI-A), so the wire form
/// carries `min`/`max` as optional fields — see the manual serde impls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    pub count: u64,
    /// Minimum observed value; meaningless when `count == 0`.
    pub(crate) min: f64,
    /// Maximum observed value; meaningless when `count == 0`.
    pub(crate) max: f64,
    pub sum: f64,
    /// Sum of squared values, for variance/stddev.
    pub sum_sq: f64,
}

impl Default for SummaryStats {
    fn default() -> Self {
        Self::empty()
    }
}

impl SummaryStats {
    /// The monoid identity: a summary of zero observations.
    pub const fn empty() -> Self {
        SummaryStats {
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            sum_sq: 0.0,
        }
    }

    /// Summary of a single observation.
    pub fn of(value: f64) -> Self {
        SummaryStats {
            count: 1,
            min: value,
            max: value,
            sum: value,
            sum_sq: value * value,
        }
    }

    /// Fold one more observation in.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.sum += value;
        self.sum_sq += value * value;
    }

    /// Merge another summary into this one (commutative, associative,
    /// identity = [`SummaryStats::empty`]).
    #[inline]
    pub fn merge(&mut self, other: &SummaryStats) {
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }

    /// Merged copy (non-mutating form of [`merge`](Self::merge)).
    pub fn merged(mut self, other: &SummaryStats) -> SummaryStats {
        self.merge(other);
        self
    }

    /// Aggregate a slice of raw values.
    pub fn from_values(values: &[f64]) -> Self {
        let mut s = SummaryStats::empty();
        for &v in values {
            s.push(v);
        }
        s
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Minimum, if any observation was aggregated.
    #[inline]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, if any observation was aggregated.
    #[inline]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean, if any observation was aggregated.
    #[inline]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Population variance, if any observation was aggregated. Clamped at
    /// zero to absorb floating-point cancellation.
    pub fn variance(&self) -> Option<f64> {
        let mean = self.mean()?;
        Some((self.sum_sq / self.count as f64 - mean * mean).max(0.0))
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Serialized footprint in bytes; used by STASH's configurable
    /// in-memory Cell budget.
    pub const fn estimated_bytes() -> usize {
        std::mem::size_of::<SummaryStats>()
    }
}

/// JSON-safe mirror of [`SummaryStats`]: optional extremes instead of ±∞
/// sentinels.
#[derive(Serialize, Deserialize)]
struct WireSummary {
    count: u64,
    min: Option<f64>,
    max: Option<f64>,
    sum: f64,
    sum_sq: f64,
}

impl serde::Serialize for SummaryStats {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        WireSummary {
            count: self.count,
            min: self.min(),
            max: self.max(),
            sum: self.sum,
            sum_sq: self.sum_sq,
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for SummaryStats {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let w = WireSummary::deserialize(deserializer)?;
        if w.count > 0 && (w.min.is_none() || w.max.is_none()) {
            return Err(serde::de::Error::custom(
                "non-empty summary requires min and max",
            ));
        }
        Ok(SummaryStats {
            count: w.count,
            min: w.min.unwrap_or(f64::INFINITY),
            max: w.max.unwrap_or(f64::NEG_INFINITY),
            sum: w.sum,
            sum_sq: w.sum_sq,
        })
    }
}

/// The per-attribute statistics of one Cell, aligned with an
/// [`AttrSchema`](crate::attr::AttrSchema): `summaries[i]` aggregates
/// attribute `i` exactly, and — when the deployment enables sketch-valued
/// Cells — `sketches[i]` carries the mergeable sketch partials (quantiles,
/// distinct count, heavy hitters) for the same attribute.
///
/// Sketches are strictly additive: with `sketches == None` (the default and
/// the only state older builds could produce) every operation and the wire
/// form are bit-for-bit identical to the historical exact-only
/// `CellSummary`. The serialized object gains a `"sketches"` key only when
/// sketch state is present.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CellStats {
    pub(crate) summaries: Vec<SummaryStats>,
    /// `Some` iff this Cell carries sketch partials; aligned with
    /// `summaries` when present.
    pub(crate) sketches: Option<Vec<AttrSketches>>,
}

/// Historical name for [`CellStats`], kept so existing call sites and wire
/// schemas read naturally — a Cell's "summary" is now stats-plus-sketches.
pub type CellSummary = CellStats;

impl CellStats {
    /// An empty exact-only summary for `n_attrs` attributes.
    pub fn empty(n_attrs: usize) -> Self {
        CellStats {
            summaries: vec![SummaryStats::empty(); n_attrs],
            sketches: None,
        }
    }

    /// An empty summary for `n_attrs` attributes, carrying empty sketch
    /// state when `spec` enables it (exact-only otherwise).
    pub fn empty_with(n_attrs: usize, spec: &SketchSpec) -> Self {
        let mut s = CellStats::empty(n_attrs);
        if spec.enabled {
            s.sketches = Some(vec![AttrSketches::new(spec); n_attrs]);
        }
        s
    }

    /// Wrap pre-computed per-attribute summaries (exact-only).
    pub fn from_parts(summaries: Vec<SummaryStats>) -> Self {
        CellStats {
            summaries,
            sketches: None,
        }
    }

    /// Number of attributes.
    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.summaries.len()
    }

    /// Total observation count (identical across attributes when built via
    /// [`push_row`](Self::push_row); taken from attribute 0).
    pub fn count(&self) -> u64 {
        self.summaries.first().map_or(0, |s| s.count)
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Per-attribute summary accessor.
    #[inline]
    pub fn attr(&self, i: usize) -> Option<&SummaryStats> {
        self.summaries.get(i)
    }

    /// All summaries, schema order.
    #[inline]
    pub fn attrs(&self) -> &[SummaryStats] {
        &self.summaries
    }

    /// Fold in one observation row (`values[i]` is attribute `i`), into the
    /// exact summaries and any sketch partials alike.
    ///
    /// # Panics
    /// Panics if the row width differs from the summary width.
    #[inline]
    pub fn push_row(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.summaries.len(), "row width mismatch");
        for (s, &v) in self.summaries.iter_mut().zip(values) {
            s.push(v);
        }
        if let Some(sketches) = &mut self.sketches {
            for (s, &v) in sketches.iter_mut().zip(values) {
                s.push(v);
            }
        }
    }

    /// Merge another Cell's summary into this one.
    ///
    /// Sketch handling preserves the monoid contract that hierarchy code
    /// (`Cell::from_children`, partials gathering) relies on: an *empty*
    /// exact-only summary is the identity, so merging sketch-carrying state
    /// into a fresh accumulator adopts the sketches. Merging two
    /// sketch-carrying summaries merges them pairwise; any other mix of a
    /// non-empty exact-only side with a sketched side drops the sketches —
    /// an estimate that silently missed rows would be worse than no
    /// estimate.
    ///
    /// # Panics
    /// Panics if attribute counts or sketch configurations differ — for
    /// locally-built summaries both are always a bug. Use
    /// [`merge_strict`](Self::merge_strict) when `other` arrived over the
    /// wire.
    pub fn merge(&mut self, other: &CellStats) {
        assert_eq!(
            self.summaries.len(),
            other.summaries.len(),
            "schema mismatch in CellSummary::merge"
        );
        if let Err(e) = self.merge_strict(other) {
            panic!("{e} (CellSummary::merge)");
        }
    }

    /// Fallible [`merge`](Self::merge) for summaries decoded from the wire:
    /// partials fragments and ingest deltas can carry state built by a
    /// misconfigured or stale peer, and a gather must refuse such a fragment
    /// instead of crashing the node. On a schema-width or sketch-config
    /// mismatch this returns an error and leaves `self` completely untouched
    /// (sketch configs are checked across *all* attributes before anything
    /// merges).
    pub fn merge_strict(&mut self, other: &CellStats) -> Result<(), MergeError> {
        if self.summaries.len() != other.summaries.len() {
            return Err(MergeError::SchemaWidth {
                left: self.summaries.len(),
                right: other.summaries.len(),
            });
        }
        // Decide sketch state from pre-merge counts, before exact folding.
        if !(other.count() == 0 && other.sketches.is_none()) {
            if self.count() == 0 && self.sketches.is_none() {
                self.sketches = other.sketches.clone();
            } else {
                match (&mut self.sketches, &other.sketches) {
                    (Some(a), Some(b)) => {
                        for (x, y) in a.iter().zip(b.iter()) {
                            x.check_config(y)?;
                        }
                        for (x, y) in a.iter_mut().zip(b) {
                            x.try_merge(y).expect("checked sketch config");
                        }
                    }
                    (None, None) => {}
                    _ => self.sketches = None,
                }
            }
        }
        for (a, b) in self.summaries.iter_mut().zip(&other.summaries) {
            a.merge(b);
        }
        Ok(())
    }

    /// Merge a single attribute's *exact* statistics into attribute `i` —
    /// the emission primitive of the columnar scan kernel, which accumulates
    /// per-slot stats in a flat `SummaryStats` array rather than as whole
    /// `CellSummary` values. Sketch state is untouched; the kernel folds
    /// sketches through [`attr_sketches_mut`](Self::attr_sketches_mut) in
    /// its own pass.
    ///
    /// # Panics
    /// Panics if `i` is out of range.
    #[inline]
    pub fn merge_attr(&mut self, i: usize, other: &SummaryStats) {
        self.summaries[i].merge(other);
    }

    /// True if this summary carries sketch partials.
    #[inline]
    pub fn has_sketches(&self) -> bool {
        self.sketches.is_some()
    }

    /// Sketch partials for attribute `i`, if carried.
    #[inline]
    pub fn attr_sketches(&self, i: usize) -> Option<&AttrSketches> {
        self.sketches.as_ref().and_then(|s| s.get(i))
    }

    /// Mutable sketch partials for attribute `i`, if carried — the sketch
    /// emission primitive of the scan kernel.
    #[inline]
    pub fn attr_sketches_mut(&mut self, i: usize) -> Option<&mut AttrSketches> {
        self.sketches.as_mut().and_then(|s| s.get_mut(i))
    }

    /// Attach empty sketch state configured per `spec` if none is carried
    /// yet (no-op when `spec` is disabled or sketches are already present).
    pub fn ensure_sketches(&mut self, spec: &SketchSpec) {
        if spec.enabled && self.sketches.is_none() {
            self.sketches = Some(vec![AttrSketches::new(spec); self.summaries.len()]);
        }
    }

    /// Approximate in-memory footprint, for the cache budget.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<CellSummary>()
            + self.summaries.len() * SummaryStats::estimated_bytes()
            + self
                .sketches
                .as_ref()
                .map_or(0, |s| s.iter().map(AttrSketches::estimated_bytes).sum())
    }

    /// Exact serialized footprint of the sketch payload alone (0 in
    /// exact-only mode); feeds the `sketch.bytes` counter.
    pub fn sketch_wire_bytes(&self) -> usize {
        self.sketches
            .as_ref()
            .map_or(0, |s| s.iter().map(AttrSketches::wire_bytes).sum())
    }

    /// Exact serialized footprint, for the network cost model: the byte
    /// length of this summary's flat wire form (header word, five words
    /// per exact summary, plus any sketch payload — DESIGN.md §15).
    pub fn wire_bytes(&self) -> usize {
        crate::flat::cell_stats_words(self) * 8
    }
}

impl serde::Serialize for CellStats {
    fn to_value(&self) -> serde::value::Value {
        // The `sketches` key is emitted only when present, keeping the
        // exact-only wire form byte-identical to the historical
        // `{"summaries": [...]}` object.
        let mut fields = vec![("summaries".to_string(), self.summaries.to_value())];
        if let Some(sketches) = &self.sketches {
            fields.push(("sketches".to_string(), sketches.to_value()));
        }
        serde::value::Value::Object(fields)
    }
}

impl<'de> serde::Deserialize<'de> for CellStats {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::de::DeError> {
        let summaries = Vec::<SummaryStats>::from_value(v.get_or_null("summaries"))?;
        let sketches = match v.get_or_null("sketches") {
            serde::value::Value::Null => None,
            present => Some(Vec::<AttrSketches>::from_value(present)?),
        };
        if let Some(s) = &sketches {
            if s.len() != summaries.len() {
                return Err(serde::de::Error::custom(
                    "sketches misaligned with summaries",
                ));
            }
        }
        Ok(CellStats {
            summaries,
            sketches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_identity() {
        let mut a = SummaryStats::from_values(&[1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&SummaryStats::empty());
        assert_eq!(a, before);
        let b = SummaryStats::empty().merged(&before);
        assert_eq!(b, before);
    }

    #[test]
    fn push_equals_merge_of_singletons() {
        let vals = [3.0, -1.5, 7.25, 0.0, 42.0];
        let folded = SummaryStats::from_values(&vals);
        let mut merged = SummaryStats::empty();
        for &v in &vals {
            merged.merge(&SummaryStats::of(v));
        }
        assert_eq!(folded, merged);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let a = SummaryStats::from_values(&[1.0, 2.0]);
        let b = SummaryStats::from_values(&[-5.0]);
        let c = SummaryStats::from_values(&[10.0, 0.5, 3.0]);
        assert_eq!(a.merged(&b), b.merged(&a));
        assert_eq!(a.merged(&b).merged(&c), a.merged(&b.merged(&c)));
    }

    #[test]
    fn statistics_values() {
        let s = SummaryStats::from_values(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(8.0));
        assert_eq!(s.mean(), Some(5.0));
        assert_eq!(s.variance(), Some(5.0));
        assert!((s.stddev().unwrap() - 5.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_statistics_are_none() {
        let s = SummaryStats::empty();
        assert!(s.is_empty());
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.stddev(), None);
    }

    #[test]
    fn variance_never_negative() {
        // Values engineered for floating-point cancellation.
        let s = SummaryStats::from_values(&[1e8 + 1.0, 1e8 + 1.0, 1e8 + 1.0]);
        assert!(s.variance().unwrap() >= 0.0);
    }

    #[test]
    fn cell_summary_rows() {
        let mut cs = CellSummary::empty(3);
        cs.push_row(&[1.0, 10.0, 100.0]);
        cs.push_row(&[3.0, 30.0, 300.0]);
        assert_eq!(cs.count(), 2);
        assert_eq!(cs.attr(0).unwrap().mean(), Some(2.0));
        assert_eq!(cs.attr(1).unwrap().max(), Some(30.0));
        assert_eq!(cs.attr(2).unwrap().sum, 400.0);
        assert!(cs.attr(3).is_none());
    }

    #[test]
    fn cell_summary_merge_matches_combined_rows() {
        let rows_a = [[1.0, 5.0], [2.0, 6.0]];
        let rows_b = [[3.0, 7.0]];
        let mut a = CellSummary::empty(2);
        for r in &rows_a {
            a.push_row(r);
        }
        let mut b = CellSummary::empty(2);
        for r in &rows_b {
            b.push_row(r);
        }
        let mut all = CellSummary::empty(2);
        for r in rows_a.iter().chain(&rows_b) {
            all.push_row(r);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn merge_attr_equals_whole_merge() {
        let mut whole = CellSummary::empty(2);
        whole.push_row(&[1.0, 5.0]);
        let other = {
            let mut o = CellSummary::empty(2);
            o.push_row(&[3.0, 7.0]);
            o
        };
        let mut by_attr = whole.clone();
        for i in 0..2 {
            by_attr.merge_attr(i, other.attr(i).unwrap());
        }
        whole.merge(&other);
        assert_eq!(by_attr, whole);
    }

    #[test]
    #[should_panic(expected = "schema mismatch")]
    fn merge_rejects_schema_mismatch() {
        let mut a = CellSummary::empty(2);
        let b = CellSummary::empty(3);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn push_row_rejects_width_mismatch() {
        let mut a = CellSummary::empty(2);
        a.push_row(&[1.0]);
    }

    #[test]
    fn estimated_bytes_scales_with_attrs() {
        let small = CellSummary::empty(1);
        let big = CellSummary::empty(8);
        assert!(big.estimated_bytes() > small.estimated_bytes());
    }
}
