//! Cell keys: the spatiotemporal labels identifying every STASH Cell.
//!
//! A [`CellKey`] pairs a geohash (spatial label) with a calendar bin
//! (temporal label). All of the paper's graph edges are *derived* from keys
//! rather than stored (§IV-D's "composable vertex discovery schemes"):
//! hierarchical edges via [`CellKey::spatial_parent`] /
//! [`CellKey::temporal_parent`] / children, lateral edges via
//! [`CellKey::lateral_neighbors`].

use crate::level::{Level, LevelError};
use serde::{Deserialize, Serialize};
use stash_geo::{Geohash, TemporalRes, TimeBin};

/// The identity of a Cell: `(geohash, time bin)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellKey {
    pub geohash: Geohash,
    pub time: TimeBin,
}

impl CellKey {
    pub fn new(geohash: Geohash, time: TimeBin) -> Self {
        CellKey { geohash, time }
    }

    /// The STASH level this key lives at.
    pub fn level(&self) -> Level {
        Level::of(self.geohash.len(), self.time.res)
            .expect("geohash length is always a valid spatial resolution")
    }

    /// Spatial resolution (geohash length).
    #[inline]
    pub fn spatial_res(&self) -> u8 {
        self.geohash.len()
    }

    /// Temporal resolution.
    #[inline]
    pub fn temporal_res(&self) -> TemporalRes {
        self.time.res
    }

    // -- Hierarchical edges (paper §IV-B: three parent/child precisions) ----

    /// Parent with one step lower *spatial* precision.
    pub fn spatial_parent(&self) -> Option<CellKey> {
        Some(CellKey::new(self.geohash.parent()?, self.time))
    }

    /// Parent with one step lower *temporal* precision.
    pub fn temporal_parent(&self) -> Option<CellKey> {
        Some(CellKey::new(self.geohash, self.time.parent()?))
    }

    /// Parent with one step lower precision in both dimensions.
    pub fn spatiotemporal_parent(&self) -> Option<CellKey> {
        Some(CellKey::new(self.geohash.parent()?, self.time.parent()?))
    }

    /// All existing parents (up to 3).
    pub fn parents(&self) -> Vec<CellKey> {
        [
            self.spatial_parent(),
            self.temporal_parent(),
            self.spatiotemporal_parent(),
        ]
        .into_iter()
        .flatten()
        .collect()
    }

    /// The 32 spatial children (same time bin, one step finer geohash).
    pub fn spatial_children(&self) -> Option<Vec<CellKey>> {
        Some(
            self.geohash
                .children()?
                .map(|g| CellKey::new(g, self.time))
                .collect(),
        )
    }

    /// The temporal children (same geohash, one step finer time bin:
    /// 12 / 28–31 / 24 of them).
    pub fn temporal_children(&self) -> Option<Vec<CellKey>> {
        Some(
            self.time
                .children()?
                .into_iter()
                .map(|t| CellKey::new(self.geohash, t))
                .collect(),
        )
    }

    // -- Lateral edges (paper Fig. 1: 8 spatial + 2 temporal neighbors) -----

    /// Same-level neighbors: up to 8 spatially adjacent cells in the same
    /// time bin plus the 2 temporally adjacent cells at the same geohash.
    pub fn lateral_neighbors(&self) -> Vec<CellKey> {
        let mut out: Vec<CellKey> = self
            .geohash
            .neighbors()
            .into_iter()
            .map(|g| CellKey::new(g, self.time))
            .collect();
        out.extend(self.time.neighbors().map(|t| CellKey::new(self.geohash, t)));
        out
    }

    /// Is `self` nested within `ancestor` (both dimensions)?
    pub fn is_within(&self, ancestor: &CellKey) -> bool {
        self.geohash.is_within(&ancestor.geohash) && self.time.is_within(&ancestor.time)
    }

    /// All descendant keys down to `target` level that are nested within
    /// this key — the membership of a *Clique* of the given depth rooted
    /// here (§VII-B2). Follows spatial refinement first, then temporal, so
    /// the expansion is deterministic.
    pub fn descendants_to(
        &self,
        spatial_res: u8,
        temporal_res: TemporalRes,
    ) -> Result<Vec<CellKey>, LevelError> {
        // Validate target is same-or-finer in both dimensions.
        Level::of(spatial_res, temporal_res)?;
        if spatial_res < self.spatial_res() || temporal_res < self.temporal_res() {
            return Ok(Vec::new());
        }
        let mut hashes = vec![self.geohash];
        while hashes[0].len() < spatial_res {
            hashes = hashes
                .iter()
                .flat_map(|g| g.children().expect("below max length"))
                .collect();
        }
        let mut bins = vec![self.time];
        while bins[0].res < temporal_res {
            bins = bins
                .iter()
                .flat_map(|b| b.children().expect("below finest resolution"))
                .collect();
        }
        let mut out = Vec::with_capacity(hashes.len() * bins.len());
        for g in &hashes {
            for b in &bins {
                out.push(CellKey::new(*g, *b));
            }
        }
        Ok(out)
    }

    /// A stable 64-bit identifier unique within a level, used as the bit
    /// index of PLM bitmaps and as the DHT hash input. Mixes geohash bits
    /// with the time-bin index.
    pub fn dense_id(&self) -> u64 {
        // SplitMix64-style mixing of the two halves.
        let mut x = self
            .geohash
            .bits()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.time.idx as u64);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }
}

impl std::fmt::Display for CellKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{}", self.geohash, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use std::str::FromStr;

    fn key(gh: &str, res: TemporalRes, y: i64, m: u32, d: u32) -> CellKey {
        CellKey::new(
            Geohash::from_str(gh).unwrap(),
            TimeBin::containing(res, epoch_seconds(y, m, d, 0, 0, 0)),
        )
    }

    #[test]
    fn paper_cell_example() {
        // §IV-B: a Cell covering geohash 9q8y7 and time 2015-03 has spatial
        // resolution 5 and temporal resolution Month.
        let k = key("9q8y7", TemporalRes::Month, 2015, 3, 1);
        assert_eq!(k.spatial_res(), 5);
        assert_eq!(k.temporal_res(), TemporalRes::Month);
        assert_eq!(k.to_string(), "9q8y7@2015-03");
        // 8 spatial + 2 temporal lateral neighbors.
        assert_eq!(k.lateral_neighbors().len(), 10);
        // Spatial parent is 9q8y at the same month.
        let sp = k.spatial_parent().unwrap();
        assert_eq!(sp.geohash.to_string(), "9q8y");
        assert_eq!(sp.time, k.time);
    }

    #[test]
    fn three_parent_precisions() {
        let k = key("9q8y7", TemporalRes::Month, 2015, 3, 1);
        let parents = k.parents();
        assert_eq!(parents.len(), 3);
        // One lower spatial, one lower temporal, one lower both.
        assert!(parents.contains(&key("9q8y", TemporalRes::Month, 2015, 3, 1)));
        assert!(parents.contains(&key("9q8y7", TemporalRes::Year, 2015, 1, 1)));
        assert!(parents.contains(&key("9q8y", TemporalRes::Year, 2015, 1, 1)));
        for p in &parents {
            assert!(k.is_within(p));
            assert!(p.level() < k.level());
        }
    }

    #[test]
    fn parents_at_hierarchy_root() {
        let k = key("9", TemporalRes::Year, 2015, 1, 1);
        assert!(k.parents().is_empty());
        assert!(k.spatial_parent().is_none());
        assert!(k.temporal_parent().is_none());
    }

    #[test]
    fn spatial_children_count_and_nesting() {
        let k = key("9q", TemporalRes::Day, 2015, 2, 2);
        let kids = k.spatial_children().unwrap();
        assert_eq!(kids.len(), 32);
        for c in &kids {
            assert!(c.is_within(&k));
            assert_eq!(c.spatial_parent().unwrap(), k);
        }
    }

    #[test]
    fn temporal_children_by_calendar() {
        let feb = key("9q", TemporalRes::Month, 2016, 2, 1);
        assert_eq!(feb.temporal_children().unwrap().len(), 29);
        let day = key("9q", TemporalRes::Day, 2016, 2, 2);
        assert_eq!(day.temporal_children().unwrap().len(), 24);
        let hour = CellKey::new(
            Geohash::from_str("9q").unwrap(),
            TimeBin::containing(TemporalRes::Hour, 0),
        );
        assert!(hour.temporal_children().is_none());
    }

    #[test]
    fn descendants_to_clique_membership() {
        // Clique of depth 2 (spatial): root + not included; descendants_to
        // returns the *leaf* set at the target resolution.
        let root = key("9q", TemporalRes::Day, 2015, 2, 2);
        let leaves = root.descendants_to(4, TemporalRes::Day).unwrap();
        assert_eq!(leaves.len(), 32 * 32);
        for l in &leaves {
            assert!(l.is_within(&root));
            assert_eq!(l.spatial_res(), 4);
        }
        // Spatiotemporal expansion multiplies the counts.
        let st = root.descendants_to(3, TemporalRes::Hour).unwrap();
        assert_eq!(st.len(), 32 * 24);
        // Same-resolution target returns just the root.
        assert_eq!(
            root.descendants_to(2, TemporalRes::Day).unwrap(),
            vec![root]
        );
        // Coarser target is empty.
        assert!(root.descendants_to(1, TemporalRes::Day).unwrap().is_empty());
    }

    #[test]
    fn dense_ids_are_distinct_for_nearby_cells() {
        let k = key("9q8y7", TemporalRes::Day, 2015, 2, 2);
        let mut ids = std::collections::HashSet::new();
        ids.insert(k.dense_id());
        for n in k.lateral_neighbors() {
            assert!(ids.insert(n.dense_id()), "dense_id collision with {n}");
        }
        for c in k.spatial_children().unwrap() {
            assert!(ids.insert(c.dense_id()), "dense_id collision with {c}");
        }
    }

    #[test]
    fn level_consistency() {
        let k = key("9q8y7k", TemporalRes::Hour, 2015, 2, 2);
        let l = k.level();
        assert_eq!(l.spatial_res(), 6);
        assert_eq!(l.temporal_res(), TemporalRes::Hour);
    }
}
