//! Flat wire forms for Cell keys, summaries, and partials fragments
//! (DESIGN.md §15).
//!
//! A partials fragment — the payload a worker ships back for
//! `FetchPartials` — historically traveled as a serde value tree whose
//! size the protocol could only approximate. [`FlatPartials`] replaces
//! that with one contiguous little-endian word buffer per fragment:
//!
//! ```text
//! word 0        magic "STSHPRT1"
//! word 1        entry count n
//! per entry     key   (3 words: geohash bits|len, temporal res, bin index)
//!               stats (header word, 5 words per attribute, optional
//!                      sketch bundles — see cell_stats_words)
//! ```
//!
//! The encoding is canonical — equal states produce identical words — and
//! exact: [`FlatPartials::wire_size`] is the buffer's true byte length,
//! which is what the simulated network now charges. The serde value-tree
//! path stays alive as the oracle; equivalence tests assert that decoding
//! a flat fragment yields bit-identical partials to the serde roundtrip.

use crate::key::CellKey;
use crate::stats::{CellStats, SummaryStats};
use stash_flat::{magic, FlatError, WordReader, WordWriter};
use stash_geo::{Geohash, TemporalRes, TimeBin};
use stash_sketch::AttrSketches;

/// Magic word of a flat partials fragment.
pub const PARTIALS_MAGIC: u64 = magic(b"STSHPRT1");

/// Words of one flat-encoded [`CellKey`].
pub const KEY_WORDS: usize = 3;

/// Ceiling on attributes per summary accepted by the decoder — far above
/// any real schema, low enough that corrupt headers cannot force huge
/// allocations.
const MAX_FLAT_ATTRS: usize = 4096;

/// Append a key's flat form: geohash bits with the length packed in the
/// top nibble (5·12 = 60 payload bits leave it free), then the temporal
/// resolution index, then the bin index.
pub fn encode_key(w: &mut WordWriter, key: &CellKey) {
    w.push_u64(key.geohash.bits() | (key.geohash.len() as u64) << 60);
    w.push_u64(key.time.res.index() as u64);
    w.push_i64(key.time.idx);
}

/// Decode a key's flat form, validating geohash length/bits and the
/// temporal resolution index.
pub fn decode_key(r: &mut WordReader) -> Result<CellKey, FlatError> {
    let packed = r.u64()?;
    let res = r.u64()?;
    let idx = r.i64()?;
    let geohash = Geohash::from_bits(packed & ((1u64 << 60) - 1), (packed >> 60) as u8)
        .map_err(|_| FlatError::Corrupt("invalid geohash in cell key"))?;
    let res = u8::try_from(res)
        .ok()
        .and_then(TemporalRes::from_index)
        .ok_or(FlatError::Corrupt(
            "invalid temporal resolution in cell key",
        ))?;
    Ok(CellKey::new(geohash, TimeBin { res, idx }))
}

/// Words of one flat-encoded [`CellStats`]: a header word, five words per
/// exact attribute summary, plus the sketch bundles when carried.
pub fn cell_stats_words(s: &CellStats) -> usize {
    1 + 5 * s.summaries.len()
        + s.sketches
            .as_ref()
            .map_or(0, |b| b.iter().map(AttrSketches::flat_words).sum())
}

/// Append a summary's flat form. ±∞ sentinels of the empty state
/// round-trip as raw bit patterns — no optional fields on this path.
fn encode_summary(w: &mut WordWriter, s: &SummaryStats) {
    w.push_u64(s.count);
    w.push_f64(s.min);
    w.push_f64(s.max);
    w.push_f64(s.sum);
    w.push_f64(s.sum_sq);
}

fn decode_summary(r: &mut WordReader) -> Result<SummaryStats, FlatError> {
    Ok(SummaryStats {
        count: r.u64()?,
        min: r.f64()?,
        max: r.f64()?,
        sum: r.f64()?,
        sum_sq: r.f64()?,
    })
}

/// Append a Cell summary's flat form: header word (attribute count in the
/// low half, sketch-presence flag at bit 32), the exact summaries, then
/// the sketch bundles when present.
pub fn encode_cell_stats(w: &mut WordWriter, s: &CellStats) {
    let flag = if s.sketches.is_some() { 1u64 << 32 } else { 0 };
    w.push_u64(s.summaries.len() as u64 | flag);
    for summary in &s.summaries {
        encode_summary(w, summary);
    }
    if let Some(sketches) = &s.sketches {
        for bundle in sketches {
            bundle.flat_encode(w);
        }
    }
}

/// Decode a Cell summary's flat form. Never panics on corrupt input.
pub fn decode_cell_stats(r: &mut WordReader) -> Result<CellStats, FlatError> {
    let header = r.u64()?;
    let n_attrs = (header & u32::MAX as u64) as usize;
    let flag = header >> 32;
    if flag > 1 {
        return Err(FlatError::Corrupt("invalid cell stats header"));
    }
    if n_attrs > MAX_FLAT_ATTRS {
        return Err(FlatError::Corrupt(
            "cell stats attribute count out of range",
        ));
    }
    let mut summaries = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        summaries.push(decode_summary(r)?);
    }
    let sketches = if flag == 1 {
        let mut bundles = Vec::with_capacity(n_attrs);
        for _ in 0..n_attrs {
            bundles.push(AttrSketches::flat_decode(r)?);
        }
        Some(bundles)
    } else {
        None
    };
    Ok(CellStats {
        summaries,
        sketches,
    })
}

/// A partials fragment in flat wire form: one contiguous word buffer,
/// ready to ship. Cheap to clone relative to re-encoding, exact in size,
/// and decodable with full validation on the receiving side.
#[derive(Debug, Clone, PartialEq)]
pub struct FlatPartials {
    words: Vec<u64>,
}

impl FlatPartials {
    /// Encode a fragment. Equal inputs produce identical buffers (every
    /// nested encoding is canonical).
    pub fn encode(parts: &[(CellKey, CellStats)]) -> Self {
        let total = 2 + parts
            .iter()
            .map(|(_, s)| KEY_WORDS + cell_stats_words(s))
            .sum::<usize>();
        let mut w = WordWriter::with_capacity(total);
        w.push_u64(PARTIALS_MAGIC);
        w.push_u64(parts.len() as u64);
        for (key, stats) in parts {
            encode_key(&mut w, key);
            encode_cell_stats(&mut w, stats);
        }
        debug_assert_eq!(w.len(), total, "flat partials size arithmetic drifted");
        FlatPartials {
            words: w.into_words(),
        }
    }

    /// Decode the fragment back into `(key, summary)` pairs, validating
    /// magic, counts, and every nested invariant. Never panics.
    pub fn decode(&self) -> Result<Vec<(CellKey, CellStats)>, FlatError> {
        let mut r = WordReader::new(&self.words);
        r.expect_magic(PARTIALS_MAGIC)?;
        let n = r.u64()? as usize;
        // Each entry is at least KEY_WORDS + 1 words; reject counts the
        // buffer cannot possibly hold before allocating.
        if n > r.remaining() / (KEY_WORDS + 1) {
            return Err(FlatError::Corrupt("partials entry count exceeds buffer"));
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let key = decode_key(&mut r)?;
            let stats = decode_cell_stats(&mut r)?;
            out.push((key, stats));
        }
        r.finish()?;
        Ok(out)
    }

    /// Number of `(key, summary)` entries carried.
    pub fn entries(&self) -> usize {
        // words[1] is the count; an encoded buffer always has ≥ 2 words.
        self.words.get(1).map_or(0, |&n| n as usize)
    }

    /// Exact wire footprint in bytes — the buffer's true length, which the
    /// simulated network charges.
    pub fn wire_size(&self) -> usize {
        self.words.len() * 8
    }

    /// The raw little-endian byte form (for persistence and fuzzing).
    pub fn to_bytes(&self) -> Vec<u8> {
        stash_flat::words_to_bytes(&self.words)
    }

    /// Rebuild from raw bytes. Validates alignment only; call
    /// [`FlatPartials::decode`] to validate content.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, FlatError> {
        Ok(FlatPartials {
            words: stash_flat::bytes_to_words(bytes)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_sketch::SketchSpec;
    use std::str::FromStr;

    fn sample_key(gh: &str, res: TemporalRes, idx: i64) -> CellKey {
        CellKey::new(Geohash::from_str(gh).unwrap(), TimeBin { res, idx })
    }

    fn sample_parts(with_sketches: bool) -> Vec<(CellKey, CellStats)> {
        let spec = SketchSpec::standard();
        let mut parts = Vec::new();
        for (i, gh) in ["9xj", "9xj0", "dr5ru7"].iter().enumerate() {
            let mut stats = if with_sketches {
                CellStats::empty_with(4, &spec)
            } else {
                CellStats::empty(4)
            };
            for row in 0..=i {
                let base = (i * 10 + row) as f64;
                stats.push_row(&[base, -base, base * 0.5, 0.0]);
            }
            parts.push((
                sample_key(gh, TemporalRes::from_index(i as u8 % 4).unwrap(), i as i64),
                stats,
            ));
        }
        parts
    }

    #[test]
    fn key_roundtrip_covers_lengths_and_resolutions() {
        for gh in ["9", "9x", "9xj42b", "zzzzzzzzzzzz"] {
            for res in TemporalRes::ALL {
                for idx in [-400i64, 0, 16_470] {
                    let key = sample_key(gh, res, idx);
                    let mut w = WordWriter::new();
                    encode_key(&mut w, &key);
                    assert_eq!(w.len(), KEY_WORDS);
                    let words = w.into_words();
                    let mut r = WordReader::new(&words);
                    assert_eq!(decode_key(&mut r).unwrap(), key);
                    r.finish().unwrap();
                }
            }
        }
    }

    #[test]
    fn partials_roundtrip_with_and_without_sketches() {
        for with_sketches in [false, true] {
            let parts = sample_parts(with_sketches);
            let flat = FlatPartials::encode(&parts);
            assert_eq!(flat.entries(), parts.len());
            assert_eq!(flat.wire_size() % 8, 0);
            assert_eq!(flat.decode().unwrap(), parts);
        }
    }

    #[test]
    fn wire_size_matches_component_arithmetic() {
        let parts = sample_parts(true);
        let flat = FlatPartials::encode(&parts);
        let expected = 16
            + parts
                .iter()
                .map(|(_, s)| KEY_WORDS * 8 + s.wire_bytes())
                .sum::<usize>();
        assert_eq!(flat.wire_size(), expected);
    }

    #[test]
    fn empty_fragment_roundtrips() {
        let flat = FlatPartials::encode(&[]);
        assert_eq!(flat.entries(), 0);
        assert_eq!(flat.wire_size(), 16);
        assert_eq!(flat.decode().unwrap(), Vec::new());
    }

    #[test]
    fn byte_form_roundtrips() {
        let flat = FlatPartials::encode(&sample_parts(true));
        let bytes = flat.to_bytes();
        assert_eq!(bytes.len(), flat.wire_size());
        let back = FlatPartials::from_bytes(&bytes).unwrap();
        assert_eq!(back, flat);
        assert_eq!(back.decode().unwrap(), flat.decode().unwrap());
        assert!(FlatPartials::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn corrupt_buffers_error_never_panic() {
        let flat = FlatPartials::encode(&sample_parts(true));
        let bytes = flat.to_bytes();
        // Every 8-aligned truncation must decode to an error.
        for cut in (0..bytes.len()).step_by(8) {
            let t = FlatPartials::from_bytes(&bytes[..cut]).unwrap();
            assert!(t.decode().is_err(), "cut {cut}");
        }
        // Flipping the magic fails loudly.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(FlatPartials::from_bytes(&bad).unwrap().decode().is_err());
        // An inflated entry count fails before allocating.
        let mut bad = bytes;
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(FlatPartials::from_bytes(&bad).unwrap().decode().is_err());
    }

    #[test]
    fn equal_states_encode_identically() {
        let a = FlatPartials::encode(&sample_parts(true));
        let b = FlatPartials::encode(&sample_parts(true));
        assert_eq!(a.to_bytes(), b.to_bytes());
    }
}
