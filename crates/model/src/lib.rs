//! # stash-model
//!
//! The data model of the STASH hierarchical aggregation cache
//! (Mitra et al., IEEE CLUSTER 2019, §IV): Cells, their keys, mergeable
//! summary statistics, the level arithmetic that organizes Cells into a
//! hierarchy, and the aggregation-query types exchanged between the
//! front-end, STASH, and the backing store.
//!
//! The central type is the [`Cell`] — "the minimum unit of data storage in
//! STASH" — identified by a [`CellKey`] (geohash spatial label × calendar
//! time bin) and carrying one [`SummaryStats`] per dataset attribute.
//! Summaries form a commutative monoid under [`SummaryStats::merge`], which
//! is what lets STASH compute a coarse Cell from cached finer Cells instead
//! of touching disk (§V-B: disk access happens only when missing values are
//! "not available by computing from the existing cached values").
//!
//! When a deployment enables sketch-valued Cells ([`SketchSpec`]), the
//! [`CellStats`] carrier additionally holds mergeable sketch partials per
//! attribute — quantiles, distinct counts, heavy hitters from
//! `stash-sketch` — that roll up along the same hierarchy and surface
//! through [`QueryResult::quantile`], [`QueryResult::distinct`], and
//! [`QueryResult::top_k`].

pub mod attr;
pub mod cell;
pub mod flat;
pub mod fx;
pub mod key;
pub mod level;
pub mod observation;
pub mod query;
pub mod slot;
pub mod stats;

pub use attr::AttrSchema;
pub use cell::Cell;
pub use flat::FlatPartials;
pub use key::CellKey;
pub use level::{Level, MAX_SPATIAL_RES};
pub use observation::Observation;
pub use query::{AggFunc, AggQuery, QueryError, QueryResult};
pub use stash_sketch::{
    AttrSketches, DistinctEstimate, DistinctSketch, FoldCtx, HeavyHitters, MergeError,
    PreparedValue, QuantileEstimate, SketchFoldMode, SketchSpec, TopKEntry, TopKResult, UddSketch,
};
pub use stats::{CellStats, CellSummary, SummaryStats};
