//! Dataset attribute schemas.
//!
//! The paper's evaluation dataset (NOAA NAM) carries several observational
//! attributes per point — "surface temperature, relative humidity, snow and
//! precipitation" (§VIII-B). STASH itself is attribute-agnostic: a schema
//! simply names the columns so that `values[i]` in an observation and
//! `summaries[i]` in a Cell line up.

use serde::{Deserialize, Serialize};

/// An ordered list of attribute names shared by a dataset, its observations,
/// and all Cells aggregated from it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttrSchema {
    names: Vec<String>,
}

impl AttrSchema {
    /// Build a schema from attribute names.
    ///
    /// # Panics
    /// Panics on duplicate names — positional lookup would be ambiguous.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Self {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        for (i, n) in names.iter().enumerate() {
            assert!(
                !names[..i].contains(n),
                "duplicate attribute name {n:?} in schema"
            );
        }
        AttrSchema { names }
    }

    /// The four NAM surface attributes used throughout the paper's
    /// experiments.
    pub fn nam() -> Self {
        AttrSchema::new([
            "temperature",
            "relative_humidity",
            "precipitation",
            "snow_depth",
        ])
    }

    /// Number of attributes.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Attribute name by index.
    pub fn name(&self, i: usize) -> Option<&str> {
        self.names.get(i).map(String::as_str)
    }

    /// Index of an attribute name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// All names in schema order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nam_schema_shape() {
        let s = AttrSchema::nam();
        assert_eq!(s.len(), 4);
        assert_eq!(s.index_of("temperature"), Some(0));
        assert_eq!(s.index_of("snow_depth"), Some(3));
        assert_eq!(s.index_of("wind"), None);
        assert_eq!(s.name(1), Some("relative_humidity"));
        assert_eq!(s.name(9), None);
    }

    #[test]
    fn names_iterate_in_order() {
        let s = AttrSchema::new(["a", "b", "c"]);
        let v: Vec<&str> = s.names().collect();
        assert_eq!(v, ["a", "b", "c"]);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn duplicates_rejected() {
        AttrSchema::new(["x", "y", "x"]);
    }

    #[test]
    fn empty_schema_is_allowed() {
        let s = AttrSchema::new(Vec::<String>::new());
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
