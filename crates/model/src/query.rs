//! Aggregation queries and results.
//!
//! A STASH query is the programmatic form of the paper's SQL example
//! (§II-B): a spatial polygon (`Query_Polygon`, here a bounding box), a time
//! interval (`Query_Time`), the requested spatial and temporal resolutions
//! (`group by spatial_resolution, temporal_resolution`), and the aggregate
//! functions to render. Evaluation returns one Cell per (geohash, time-bin)
//! group intersecting the query.

use crate::cell::Cell;
use crate::key::CellKey;
use crate::level::{Level, LevelError, MAX_SPATIAL_RES};
use crate::stats::SummaryStats;
use serde::{Deserialize, Serialize};
use stash_geo::cover::{cover_bbox_bounded, cover_len, CoverError};
use stash_geo::{BBox, TemporalRes, TimeBin, TimeRange};

/// Aggregate functions a front-end can request per attribute.
///
/// All are computable from a Cell's [`SummaryStats`], so the choice of
/// function never changes what STASH caches — only how the client renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AggFunc {
    Count,
    Min,
    Max,
    Sum,
    Mean,
    StdDev,
}

impl AggFunc {
    /// Evaluate against a summary. `None` when the summary is empty and the
    /// function is undefined on zero observations.
    pub fn apply(self, s: &SummaryStats) -> Option<f64> {
        match self {
            AggFunc::Count => Some(s.count as f64),
            AggFunc::Min => s.min(),
            AggFunc::Max => s.max(),
            AggFunc::Sum => Some(s.sum),
            AggFunc::Mean => s.mean(),
            AggFunc::StdDev => s.stddev(),
        }
    }
}

/// A hierarchical aggregation query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggQuery {
    /// Spatial extent (the paper's `Query_Polygon`).
    pub bbox: BBox,
    /// Temporal extent (the paper's `Query_Time`).
    pub time: TimeRange,
    /// Requested spatial resolution: geohash length of result Cells.
    pub spatial_res: u8,
    /// Requested temporal resolution of result Cells.
    pub temporal_res: TemporalRes,
}

/// Why a query could not be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Invalid resolution pair.
    Level(LevelError),
    /// The spatial cover exploded past the planner's cell budget.
    Cover(CoverError),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Level(e) => write!(f, "bad resolution: {e}"),
            QueryError::Cover(e) => write!(f, "cover failed: {e}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<LevelError> for QueryError {
    fn from(e: LevelError) -> Self {
        QueryError::Level(e)
    }
}

impl From<CoverError> for QueryError {
    fn from(e: CoverError) -> Self {
        QueryError::Cover(e)
    }
}

impl AggQuery {
    pub fn new(bbox: BBox, time: TimeRange, spatial_res: u8, temporal_res: TemporalRes) -> Self {
        AggQuery {
            bbox,
            time,
            spatial_res,
            temporal_res,
        }
    }

    /// The STASH level the result Cells live at.
    pub fn level(&self) -> Result<Level, QueryError> {
        Ok(Level::of(self.spatial_res, self.temporal_res)?)
    }

    /// Enumerate the keys of every Cell this query needs, bounded by
    /// `max_cells` to protect the planner from degenerate requests.
    pub fn target_keys(&self, max_cells: usize) -> Result<Vec<CellKey>, QueryError> {
        self.level()?;
        let bins = TimeBin::cover_range(self.temporal_res, self.time);
        if bins.is_empty() {
            return Ok(Vec::new());
        }
        let per_bin_budget = max_cells / bins.len().max(1);
        let hashes = cover_bbox_bounded(&self.bbox, self.spatial_res, per_bin_budget.max(1))?;
        let mut keys = Vec::with_capacity(hashes.len() * bins.len());
        for bin in &bins {
            for gh in &hashes {
                keys.push(CellKey::new(*gh, *bin));
            }
        }
        Ok(keys)
    }

    /// Number of target cells without materializing them.
    pub fn target_cell_count(&self) -> usize {
        cover_len(&self.bbox, self.spatial_res.min(MAX_SPATIAL_RES))
            * TimeBin::cover_range_len(self.temporal_res, self.time)
    }

    /// One step coarser spatially — the paper's *roll-up*.
    pub fn rolled_up(&self) -> Option<AggQuery> {
        (self.spatial_res > 1).then(|| AggQuery {
            spatial_res: self.spatial_res - 1,
            ..self.clone()
        })
    }

    /// One step finer spatially — the paper's *drill-down*.
    pub fn drilled_down(&self) -> Option<AggQuery> {
        (self.spatial_res < MAX_SPATIAL_RES).then(|| AggQuery {
            spatial_res: self.spatial_res + 1,
            ..self.clone()
        })
    }

    /// Translated query — the paper's *panning*. `frac` is the fraction of
    /// the current extent to move by (0.10 / 0.20 / 0.25 in §VIII-D3);
    /// `(dy, dx)` pick one of 8 directions with unit components.
    pub fn panned(&self, frac: f64, dy: f64, dx: f64) -> AggQuery {
        AggQuery {
            bbox: self.bbox.pan(
                dy * frac * self.bbox.lat_extent(),
                dx * frac * self.bbox.lon_extent(),
            ),
            ..self.clone()
        }
    }

    /// Area-scaled query — the paper's *iterative dicing* (±20% area steps).
    /// `area_factor` is the target area ratio (0.8 shrinks by 20%).
    pub fn diced(&self, area_factor: f64) -> AggQuery {
        AggQuery {
            bbox: self.bbox.scale(area_factor.max(0.0).sqrt()),
            ..self.clone()
        }
    }
}

impl std::fmt::Display for AggQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Q[{} t=[{},{}) s={} t-res={}]",
            self.bbox, self.time.start, self.time.end, self.spatial_res, self.temporal_res
        )
    }
}

/// Result of evaluating an [`AggQuery`]: one Cell per non-empty
/// spatiotemporal group, plus evaluation provenance counters used by the
/// benchmarks (cache hits vs disk fetches).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct QueryResult {
    pub cells: Vec<Cell>,
    /// Cells answered directly from the in-memory STASH graph.
    pub cache_hits: usize,
    /// Cells synthesized by merging cached finer-resolution Cells.
    pub derived_hits: usize,
    /// Cells that required a fetch from the backing store.
    pub misses: usize,
    /// Cells answered from a continuous-rollup store (DESIGN.md §17):
    /// materialized coarse aggregates maintained by ingest, served without
    /// touching the STASH graph or raw blocks.
    pub rollup_hits: usize,
}

impl QueryResult {
    /// Fraction of target cells served without touching the backing store.
    pub fn hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.derived_hits + self.misses + self.rollup_hits;
        if total == 0 {
            return 0.0;
        }
        (self.cache_hits + self.derived_hits + self.rollup_hits) as f64 / total as f64
    }

    /// Render one aggregate as `(cell key, value)` rows for a heatmap.
    pub fn series(&self, attr: usize, func: AggFunc) -> Vec<(CellKey, f64)> {
        self.cells
            .iter()
            .filter_map(|c| {
                let s = c.summary.attr(attr)?;
                Some((c.key, func.apply(s)?))
            })
            .collect()
    }

    /// Total observations aggregated across all result cells.
    pub fn total_count(&self) -> u64 {
        self.cells.iter().map(|c| c.summary.count()).sum()
    }

    /// Merge attribute `attr`'s sketch bundles across every result cell.
    ///
    /// `None` when any *non-empty* cell lacks sketch state (exact-only
    /// deployment), when no cell holds data — empty cells contribute no
    /// observations and are skipped regardless of how they were built — or
    /// when two cells carry incompatibly-configured sketches (result cells
    /// can come from remote nodes, so a config mismatch is a data condition,
    /// not a programmer error: the estimate is unanswerable, not a panic).
    fn fold_sketches(&self, attr: usize) -> Option<stash_sketch::AttrSketches> {
        let mut acc: Option<stash_sketch::AttrSketches> = None;
        for cell in &self.cells {
            match cell.summary.attr_sketches(attr) {
                Some(sk) => match &mut acc {
                    Some(a) => a.try_merge(sk).ok()?,
                    None => acc = Some(sk.clone()),
                },
                None if cell.summary.is_empty() => continue,
                None => return None,
            }
        }
        acc
    }

    /// Estimated `q`-quantile of attribute `attr` over the whole result,
    /// with its relative-error bound. `None` unless the deployment carries
    /// sketch-valued Cells and the result holds data.
    pub fn quantile(&self, attr: usize, q: f64) -> Option<stash_sketch::QuantileEstimate> {
        self.fold_sketches(attr)?.quantile.quantile(q)
    }

    /// Estimated distinct-value count of attribute `attr` over the whole
    /// result, with its standard error. `None` unless the deployment
    /// carries sketch-valued Cells and the result holds data.
    pub fn distinct(&self, attr: usize) -> Option<stash_sketch::DistinctEstimate> {
        Some(self.fold_sketches(attr)?.distinct.estimate())
    }

    /// The `k` most frequent values of attribute `attr` over the whole
    /// result, each with a count estimate and overcount bound. `None`
    /// unless the deployment carries sketch-valued Cells and the result
    /// holds data.
    pub fn top_k(&self, attr: usize, k: usize) -> Option<Vec<stash_sketch::TopKEntry>> {
        Some(self.fold_sketches(attr)?.heavy.top_k(k))
    }

    /// [`top_k`](Self::top_k) plus the truncation flag: when
    /// [`TopKResult::truncated`](stash_sketch::TopKResult) is true,
    /// candidate eviction fired somewhere
    /// in the folded sketches' history and the list may omit values that
    /// are truly among the top `k`; when false, a short list is ground
    /// truth — the data simply had fewer distinct values. Front-ends should
    /// prefer this over `top_k` whenever they render completeness.
    pub fn top_k_report(&self, attr: usize, k: usize) -> Option<stash_sketch::TopKResult> {
        Some(self.fold_sketches(attr)?.heavy.top_k_report(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;

    fn day_query(extent: (f64, f64), res: u8) -> AggQuery {
        AggQuery::new(
            BBox::from_corner_extent(30.0, -100.0, extent.0, extent.1),
            TimeRange::whole_day(2015, 2, 2),
            res,
            TemporalRes::Day,
        )
    }

    #[test]
    fn paper_query_classes_have_sane_cell_counts() {
        // City (0.2 x 0.5 deg) at res 4 covers a handful of cells; country
        // (16 x 32) covers thousands.
        let city = day_query((0.2, 0.5), 4);
        let country = day_query((16.0, 32.0), 4);
        let city_n = city.target_keys(100_000).unwrap().len();
        let country_n = country.target_keys(100_000).unwrap().len();
        assert!((1..20).contains(&city_n), "city: {city_n}");
        assert!(country_n > 5_000, "country: {country_n}");
        assert_eq!(city.target_cell_count(), city_n);
        assert_eq!(country.target_cell_count(), country_n);
    }

    #[test]
    fn target_keys_budget_enforced() {
        let country = day_query((16.0, 32.0), 7);
        match country.target_keys(1_000) {
            Err(QueryError::Cover(CoverError::TooManyCells(_))) => {}
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn target_keys_cross_product_of_space_and_time() {
        let mut q = day_query((0.5, 0.5), 4);
        q.time = TimeRange::new(
            epoch_seconds(2015, 2, 2, 0, 0, 0),
            epoch_seconds(2015, 2, 5, 0, 0, 0),
        )
        .unwrap();
        let keys = q.target_keys(100_000).unwrap();
        let spatial: std::collections::HashSet<_> = keys.iter().map(|k| k.geohash).collect();
        let temporal: std::collections::HashSet<_> = keys.iter().map(|k| k.time).collect();
        assert_eq!(temporal.len(), 3);
        assert_eq!(keys.len(), spatial.len() * temporal.len());
        for k in &keys {
            assert_eq!(k.spatial_res(), 4);
            assert_eq!(k.temporal_res(), TemporalRes::Day);
        }
    }

    #[test]
    fn empty_time_range_yields_no_keys() {
        let mut q = day_query((1.0, 1.0), 4);
        q.time = TimeRange::new(100, 100).unwrap();
        assert!(q.target_keys(1000).unwrap().is_empty());
        assert_eq!(q.target_cell_count(), 0);
    }

    #[test]
    fn bad_resolution_is_rejected() {
        let q = day_query((1.0, 1.0), 0);
        assert!(matches!(q.target_keys(1000), Err(QueryError::Level(_))));
        let q = day_query((1.0, 1.0), 13);
        assert!(q.target_keys(1000).is_err());
    }

    #[test]
    fn navigation_ops() {
        let q = day_query((4.0, 8.0), 5);
        let down = q.drilled_down().unwrap();
        assert_eq!(down.spatial_res, 6);
        assert_eq!(down.bbox, q.bbox);
        let up = q.rolled_up().unwrap();
        assert_eq!(up.spatial_res, 4);
        let panned = q.panned(0.25, 0.0, 1.0);
        assert!((panned.bbox.min_lon - (q.bbox.min_lon + 2.0)).abs() < 1e-9);
        assert_eq!(panned.bbox.lat_extent(), q.bbox.lat_extent());
        let diced = q.diced(0.8);
        assert!((diced.bbox.area_deg2() / q.bbox.area_deg2() - 0.8).abs() < 1e-9);
        // Edges of the hierarchy.
        assert!(day_query((1.0, 1.0), 1).rolled_up().is_none());
        assert!(day_query((1.0, 1.0), MAX_SPATIAL_RES)
            .drilled_down()
            .is_none());
    }

    #[test]
    fn agg_funcs_apply() {
        let s = SummaryStats::from_values(&[1.0, 3.0]);
        assert_eq!(AggFunc::Count.apply(&s), Some(2.0));
        assert_eq!(AggFunc::Min.apply(&s), Some(1.0));
        assert_eq!(AggFunc::Max.apply(&s), Some(3.0));
        assert_eq!(AggFunc::Sum.apply(&s), Some(4.0));
        assert_eq!(AggFunc::Mean.apply(&s), Some(2.0));
        assert_eq!(AggFunc::StdDev.apply(&s), Some(1.0));
        let empty = SummaryStats::empty();
        assert_eq!(AggFunc::Count.apply(&empty), Some(0.0));
        assert_eq!(AggFunc::Mean.apply(&empty), None);
    }

    #[test]
    fn result_counters_and_series() {
        use crate::cell::Cell;
        use stash_geo::Geohash;
        use std::str::FromStr;

        let key = CellKey::new(
            Geohash::from_str("9q8y").unwrap(),
            TimeBin::containing(TemporalRes::Day, 0),
        );
        let mut cell = Cell::empty(key, 2);
        cell.summary.push_row(&[2.0, 4.0]);
        let r = QueryResult {
            cells: vec![cell],
            cache_hits: 3,
            derived_hits: 1,
            misses: 4,
            rollup_hits: 0,
        };
        assert!((r.hit_ratio() - 0.5).abs() < 1e-12);
        // Rollup-served keys count as hits: they never touch raw blocks.
        let rolled = QueryResult {
            rollup_hits: 4,
            ..r.clone()
        };
        assert!((rolled.hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(r.total_count(), 1);
        let series = r.series(1, AggFunc::Max);
        assert_eq!(series, vec![(key, 4.0)]);
        assert!(r.series(5, AggFunc::Max).is_empty());
        assert_eq!(QueryResult::default().hit_ratio(), 0.0);
    }
}
