//! A fast, non-cryptographic hasher for the graph's hot maps.
//!
//! Cell lookups happen thousands of times per query evaluation; the
//! standard library's SipHash costs more than the lookup itself for
//! 24-byte keys. This is the Fx multiply-rotate hash used by rustc's
//! internal tables — not DoS-resistant, which is fine: keys are derived
//! from geohashes of the operator's own dataset, not attacker-controlled
//! strings.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// rustc's FxHasher: `hash = (hash rotl 5 ^ word) * K` per 8-byte word.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("exact chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add(i as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_distinct_hashes() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            assert!(seen.insert(h.finish()), "collision at {i}");
        }
    }

    #[test]
    fn byte_stream_matches_word_stream() {
        let mut a = FxHasher::default();
        a.write(&42u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn tail_bytes_affect_hash() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghi"); // 8 + 1 bytes
        let mut b = FxHasher::default();
        b.write(b"abcdefghj");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fx_map_works_as_map() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&500), Some(&1000));
    }
}
