//! The STASH Cell: a vertex of the distributed aggregation graph.
//!
//! Table I of the paper lists the three component groups of a Cell:
//!
//! 1. **Spatiotemporal labels** — here the [`CellKey`] (geohash + time bin);
//! 2. **Aggregated summary statistics** — the [`CellSummary`], "the main
//!    content of a Cell and the information returned to a client program";
//! 3. **Edge information** — *derived*, not stored: STASH replaces stored
//!    adjacency with "composable vertex discovery schemes" (§IV-D), so the
//!    edge accessors on [`Cell`] simply delegate to key arithmetic. This is
//!    what keeps a Cell two labels plus statistics and nothing else.

use crate::key::CellKey;
use crate::stats::CellSummary;
use serde::{Deserialize, Serialize};
use stash_geo::{BBox, TimeRange};

/// A unit of aggregated, cacheable data: the paper's Cell (Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    /// Component (a): the spatiotemporal labels.
    pub key: CellKey,
    /// Component (b): the aggregated summary statistics.
    pub summary: CellSummary,
}

impl Cell {
    pub fn new(key: CellKey, summary: CellSummary) -> Self {
        Cell { key, summary }
    }

    /// An empty Cell (no observations yet) for `n_attrs` attributes.
    pub fn empty(key: CellKey, n_attrs: usize) -> Self {
        Cell {
            key,
            summary: CellSummary::empty(n_attrs),
        }
    }

    /// The spatial bounding box this Cell covers.
    pub fn bbox(&self) -> BBox {
        self.key.geohash.bbox()
    }

    /// The time interval this Cell covers.
    pub fn time_range(&self) -> TimeRange {
        self.key.time.range()
    }

    /// Component (c): hierarchical edge endpoints (up to 3 parents),
    /// computed from the labels.
    pub fn parent_keys(&self) -> Vec<CellKey> {
        self.key.parents()
    }

    /// Component (c): lateral edge endpoints (8 spatial + 2 temporal
    /// neighbors), computed from the labels.
    pub fn neighbor_keys(&self) -> Vec<CellKey> {
        self.key.lateral_neighbors()
    }

    /// Merge a nested (child) Cell's statistics into this one.
    ///
    /// # Panics
    /// Panics if `child` is not spatiotemporally nested within `self` —
    /// merging unrelated Cells corrupts the cache.
    pub fn absorb_child(&mut self, child: &Cell) {
        assert!(
            child.key.is_within(&self.key),
            "absorb_child: {} is not nested within {}",
            child.key,
            self.key
        );
        self.summary.merge(&child.summary);
    }

    /// Build a coarse Cell by merging a complete set of child Cells.
    /// The caller asserts completeness (STASH checks it against the PLM);
    /// nesting of every child is checked here.
    pub fn from_children<'a>(
        key: CellKey,
        n_attrs: usize,
        children: impl IntoIterator<Item = &'a Cell>,
    ) -> Cell {
        let mut cell = Cell::empty(key, n_attrs);
        for c in children {
            cell.absorb_child(c);
        }
        cell
    }

    /// In-memory footprint estimate, used against the configurable Cell
    /// threshold of §V-C.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<CellKey>() + self.summary.estimated_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use stash_geo::{Geohash, TemporalRes, TimeBin};
    use std::str::FromStr;

    fn key(gh: &str, res: TemporalRes) -> CellKey {
        CellKey::new(
            Geohash::from_str(gh).unwrap(),
            TimeBin::containing(res, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        )
    }

    fn cell_with_rows(k: CellKey, rows: &[[f64; 2]]) -> Cell {
        let mut c = Cell::empty(k, 2);
        for r in rows {
            c.summary.push_row(r);
        }
        c
    }

    #[test]
    fn cell_components_match_table_1() {
        let c = cell_with_rows(key("9q8y7", TemporalRes::Month), &[[1.0, 2.0]]);
        // (a) spatiotemporal labels
        assert_eq!(c.key.geohash.to_string(), "9q8y7");
        assert_eq!(c.key.time.to_string(), "2015-02");
        // (b) summary statistics
        assert_eq!(c.summary.count(), 1);
        // (c) edge information, derived from labels
        assert_eq!(c.neighbor_keys().len(), 10);
        assert_eq!(c.parent_keys().len(), 3);
        // Geometry helpers agree with the labels.
        assert!(c.bbox().encloses(&c.key.geohash.bbox()));
        assert_eq!(c.time_range(), c.key.time.range());
    }

    #[test]
    fn absorb_children_equals_direct_aggregation() {
        let parent_key = key("9q8y", TemporalRes::Month);
        // Two children with disjoint rows.
        let child_keys: Vec<CellKey> = parent_key.spatial_children().unwrap();
        let c1 = cell_with_rows(child_keys[0], &[[1.0, 10.0], [2.0, 20.0]]);
        let c2 = cell_with_rows(child_keys[1], &[[3.0, 30.0]]);
        let merged = Cell::from_children(parent_key, 2, [&c1, &c2]);
        let direct = cell_with_rows(parent_key, &[[1.0, 10.0], [2.0, 20.0], [3.0, 30.0]]);
        assert_eq!(merged.summary, direct.summary);
    }

    #[test]
    #[should_panic(expected = "not nested")]
    fn absorb_rejects_non_nested() {
        let mut a = Cell::empty(key("9q8y", TemporalRes::Month), 2);
        let b = Cell::empty(key("9q8z", TemporalRes::Month), 2); // sibling, not child
        a.absorb_child(&b);
    }

    #[test]
    fn temporal_nesting_also_accepted() {
        let month = key("9q8y", TemporalRes::Month);
        let day = key("9q8y", TemporalRes::Day);
        let mut m = Cell::empty(month, 1);
        let mut d = Cell::empty(day, 1);
        d.summary.push_row(&[5.0]);
        m.absorb_child(&d);
        assert_eq!(m.summary.count(), 1);
    }

    #[test]
    fn estimated_bytes_positive() {
        let c = Cell::empty(key("9q", TemporalRes::Year), 4);
        assert!(c.estimated_bytes() > 0);
    }
}
