//! STASH level arithmetic (§IV-C).
//!
//! Cells with the same (spatial, temporal) resolution pair sit at the same
//! *level* of the STASH graph; levels give the graph its hierarchy and let a
//! node segregate its per-level DHT maps. The paper computes the level of a
//! resolution pair as `n_j * n_t + n_i` "where n_s and n_t are the total
//! possible spatial and temporal resolutions and n_i, n_j the current
//! spatial and temporal resolution". Taken literally the formula collides
//! (it never mentions `n_s` again), so — as documented in DESIGN.md — we
//! implement the evident intent: `level = t_idx * N_SPATIAL + s_idx`, a
//! bijection from resolution pairs to `0..N_SPATIAL*N_TEMPORAL`.

use serde::{Deserialize, Serialize};
use stash_geo::time::NUM_TEMPORAL_RES;
use stash_geo::{TemporalRes, MAX_GEOHASH_LEN};

/// Total number of spatial resolutions (geohash lengths 1..=12).
pub const MAX_SPATIAL_RES: u8 = MAX_GEOHASH_LEN;

/// Total number of distinct STASH levels.
pub const NUM_LEVELS: usize = MAX_SPATIAL_RES as usize * NUM_TEMPORAL_RES as usize;

/// A STASH graph level: one (spatial resolution, temporal resolution) pair.
///
/// Levels order coarse-to-fine: level 0 is (geohash length 1, Year); each
/// +1 in geohash length adds 1, each temporal refinement adds
/// [`MAX_SPATIAL_RES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Level(u8);

/// Error constructing a [`Level`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LevelError {
    /// Spatial resolution (geohash length) out of `1..=MAX_SPATIAL_RES`.
    BadSpatial(u8),
    /// Raw level index out of range.
    BadIndex(u8),
}

impl std::fmt::Display for LevelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LevelError::BadSpatial(s) => {
                write!(f, "spatial resolution {s} not in 1..={MAX_SPATIAL_RES}")
            }
            LevelError::BadIndex(i) => write!(f, "level index {i} out of range"),
        }
    }
}

impl std::error::Error for LevelError {}

impl Level {
    /// Level of a (geohash length, temporal resolution) pair.
    pub fn of(spatial_res: u8, temporal_res: TemporalRes) -> Result<Level, LevelError> {
        if spatial_res == 0 || spatial_res > MAX_SPATIAL_RES {
            return Err(LevelError::BadSpatial(spatial_res));
        }
        Ok(Level(
            temporal_res.index() * MAX_SPATIAL_RES + (spatial_res - 1),
        ))
    }

    /// Reconstruct from a raw index.
    pub fn from_index(i: u8) -> Result<Level, LevelError> {
        if (i as usize) < NUM_LEVELS {
            Ok(Level(i))
        } else {
            Err(LevelError::BadIndex(i))
        }
    }

    /// Raw index, `0..NUM_LEVELS`.
    #[inline]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Geohash length of this level (1..=12).
    #[inline]
    pub fn spatial_res(self) -> u8 {
        self.0 % MAX_SPATIAL_RES + 1
    }

    /// Temporal resolution of this level.
    #[inline]
    pub fn temporal_res(self) -> TemporalRes {
        TemporalRes::from_index(self.0 / MAX_SPATIAL_RES).expect("index validated at construction")
    }

    /// The three coarser parent levels of the paper (§IV-B): one step lower
    /// spatial precision, one step lower temporal precision, and one step
    /// lower in both. Fewer at the coarse edges of the hierarchy.
    pub fn parent_levels(self) -> Vec<Level> {
        let s = self.spatial_res();
        let t = self.temporal_res();
        let mut out = Vec::with_capacity(3);
        if s > 1 {
            out.push(Level::of(s - 1, t).expect("validated"));
        }
        if let Some(ct) = t.coarser() {
            out.push(Level::of(s, ct).expect("validated"));
            if s > 1 {
                out.push(Level::of(s - 1, ct).expect("validated"));
            }
        }
        out
    }

    /// The three finer child levels (spatial, temporal, spatiotemporal).
    pub fn child_levels(self) -> Vec<Level> {
        let s = self.spatial_res();
        let t = self.temporal_res();
        let mut out = Vec::with_capacity(3);
        if s < MAX_SPATIAL_RES {
            out.push(Level::of(s + 1, t).expect("validated"));
        }
        if let Some(ft) = t.finer() {
            out.push(Level::of(s, ft).expect("validated"));
            if s < MAX_SPATIAL_RES {
                out.push(Level::of(s + 1, ft).expect("validated"));
            }
        }
        out
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "L{}(s={},t={})",
            self.0,
            self.spatial_res(),
            self.temporal_res()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bijection_over_all_pairs() {
        let mut seen = std::collections::HashSet::new();
        for t in TemporalRes::ALL {
            for s in 1..=MAX_SPATIAL_RES {
                let l = Level::of(s, t).unwrap();
                assert!(seen.insert(l.index()), "collision at ({s},{t:?})");
                assert_eq!(l.spatial_res(), s);
                assert_eq!(l.temporal_res(), t);
                assert_eq!(Level::from_index(l.index()).unwrap(), l);
            }
        }
        assert_eq!(seen.len(), NUM_LEVELS);
    }

    #[test]
    fn coarse_levels_order_before_fine() {
        let coarse = Level::of(1, TemporalRes::Year).unwrap();
        let fine = Level::of(6, TemporalRes::Day).unwrap();
        assert!(coarse < fine);
        assert_eq!(coarse.index(), 0);
    }

    #[test]
    fn invalid_inputs() {
        assert!(Level::of(0, TemporalRes::Day).is_err());
        assert!(Level::of(MAX_SPATIAL_RES + 1, TemporalRes::Day).is_err());
        assert!(Level::from_index(NUM_LEVELS as u8).is_err());
    }

    #[test]
    fn parent_child_levels_are_inverse() {
        for t in TemporalRes::ALL {
            for s in 1..=MAX_SPATIAL_RES {
                let l = Level::of(s, t).unwrap();
                for p in l.parent_levels() {
                    assert!(p.child_levels().contains(&l), "{p} missing child {l}");
                    assert!(p < l);
                }
                for c in l.child_levels() {
                    assert!(c.parent_levels().contains(&l), "{c} missing parent {l}");
                    assert!(c > l);
                }
            }
        }
    }

    #[test]
    fn interior_level_has_three_parents_and_children() {
        let l = Level::of(5, TemporalRes::Month).unwrap();
        assert_eq!(l.parent_levels().len(), 3);
        assert_eq!(l.child_levels().len(), 3);
        // Corners of the hierarchy have none.
        assert!(Level::of(1, TemporalRes::Year)
            .unwrap()
            .parent_levels()
            .is_empty());
        assert!(Level::of(MAX_SPATIAL_RES, TemporalRes::Hour)
            .unwrap()
            .child_levels()
            .is_empty());
    }
}
