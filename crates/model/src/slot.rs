//! Packed row-slot identifiers for the columnar block-scan kernel.
//!
//! A DFS block covers one geohash tile × one UTC day, so within a block a
//! row's spatiotemporal position is fully described by (a) the geohash
//! digits *below* the tile prefix at some fixed encode resolution and
//! (b) the hour of day. Both pack into a single `u64` — the per-row cell
//! slot the scan kernel aggregates on and later truncates to derive every
//! coarser requested resolution (DESIGN.md §12).
//!
//! Layout: `suffix << 5 | hour`. A suffix of `delta` geohash characters
//! uses `5 * delta ≤ 45` bits (tile length ≥ 1, max geohash length 12),
//! leaving the low 5 bits for the hour (0..24) with headroom to spare.

/// Bits reserved for the hour-of-day field.
pub const HOUR_BITS: u32 = 5;

/// Sentinel for rows that cannot be binned (invalid coordinates, or an
/// observation outside its block's tile/day). Unreachable as a real slot:
/// a valid suffix uses at most 45 bits.
pub const INVALID_SLOT: u64 = u64::MAX;

/// Pack a geohash suffix (digits below the block tile) and an hour of day.
#[inline]
pub fn pack(suffix: u64, hour: u32) -> u64 {
    debug_assert!(hour < 24, "hour {hour} out of range");
    (suffix << HOUR_BITS) | hour as u64
}

/// The geohash-suffix half of a packed slot.
#[inline]
pub fn suffix(slot: u64) -> u64 {
    slot >> HOUR_BITS
}

/// The hour-of-day half of a packed slot.
#[inline]
pub fn hour(slot: u64) -> u32 {
    (slot & ((1 << HOUR_BITS) - 1)) as u32
}

/// Truncate a suffix encoded at `from_res` down to `to_res` (both geohash
/// lengths, `to_res <= from_res`) — the spatial half of upward derivation,
/// mirroring `Geohash::prefix` on the sub-tile digits.
#[inline]
pub fn truncate_suffix(suffix: u64, from_res: u8, to_res: u8) -> u64 {
    debug_assert!(to_res <= from_res);
    suffix >> (5 * (from_res - to_res) as u32)
}

/// Number of distinct suffixes `delta` characters below the tile: `32^delta`.
/// `None` when the count would not fit in the accumulator index space.
#[inline]
pub fn spatial_slots(delta: u8) -> Option<usize> {
    1usize.checked_shl(5 * delta as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        for s in [0u64, 1, 31, 1023, (1 << 45) - 1] {
            for h in [0u32, 7, 23] {
                let slot = pack(s, h);
                assert_eq!(suffix(slot), s);
                assert_eq!(hour(slot), h);
                assert_ne!(slot, INVALID_SLOT);
            }
        }
    }

    #[test]
    fn truncation_drops_trailing_digits() {
        // Suffix "abc" (3 chars below the tile) truncated to 1 char keeps
        // only the leading digit, exactly like Geohash::prefix.
        let s = (5 << 10) | (17 << 5) | 30; // digits [5, 17, 30]
        assert_eq!(truncate_suffix(s, 6, 5), (5 << 5) | 17);
        assert_eq!(truncate_suffix(s, 6, 4), 5);
        assert_eq!(truncate_suffix(s, 6, 3), 0); // at the tile itself
        assert_eq!(truncate_suffix(s, 6, 6), s);
    }

    #[test]
    fn slot_counts() {
        assert_eq!(spatial_slots(0), Some(1));
        assert_eq!(spatial_slots(1), Some(32));
        assert_eq!(spatial_slots(3), Some(32 * 32 * 32));
        assert_eq!(spatial_slots(12), Some(1 << 60));
        assert_eq!(spatial_slots(13), None);
    }
}
