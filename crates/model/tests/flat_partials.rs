//! Flat wire-form proptests for partials fragments (ISSUE 7 satellite):
//! random `(CellKey, CellStats)` fragments — with and without sketch
//! bundles — must round-trip bit-for-bit through [`FlatPartials`], agree
//! with the seed's serde tree oracle (including after the coordinator's
//! per-key merge), and reject truncated or corrupt buffers without ever
//! panicking.

use proptest::prelude::*;
use stash_geo::{Geohash, TemporalRes, TimeBin};
use stash_model::{CellKey, CellStats, FlatPartials, SketchSpec};
use std::collections::BTreeMap;

/// A small pool of keys so random fragments contain duplicates — the
/// shape the coordinator's merge actually sees.
fn key_pool() -> Vec<CellKey> {
    let mut keys = Vec::new();
    for (bits, len) in [(0u64, 1u8), (9, 2), (317, 4), ((1 << 30) - 1, 6)] {
        let gh = Geohash::from_bits(bits, len).unwrap();
        for (ri, idx) in [(0usize, -400i64), (1, 0), (2, 16_470), (3, 99)] {
            keys.push(CellKey::new(
                gh,
                TimeBin {
                    res: TemporalRes::ALL[ri % TemporalRes::ALL.len()],
                    idx,
                },
            ));
        }
    }
    keys
}

fn build_parts(picks: &[(usize, Vec<(i32, i32)>)], sketches: bool) -> Vec<(CellKey, CellStats)> {
    let pool = key_pool();
    let spec = SketchSpec::standard();
    picks
        .iter()
        .map(|(key_idx, rows)| {
            let mut s = if sketches {
                CellStats::empty_with(2, &spec)
            } else {
                CellStats::empty(2)
            };
            for &(q0, q1) in rows {
                s.push_row(&[q0 as f64 * 0.25, q1 as f64 * 0.25]);
            }
            (pool[key_idx % pool.len()], s)
        })
        .collect()
}

/// The coordinator's gather step: merge fragments per key.
fn merged(parts: &[(CellKey, CellStats)]) -> BTreeMap<CellKey, CellStats> {
    let mut out: BTreeMap<CellKey, CellStats> = BTreeMap::new();
    for (k, s) in parts {
        match out.entry(*k) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(s.clone());
            }
            std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(s),
        }
    }
    out
}

proptest! {
    /// Flat encode → decode is the identity, equal to the serde tree
    /// oracle both per fragment and after the per-key merge, and the
    /// advertised wire size is the literal buffer length.
    #[test]
    fn flat_partials_match_serde_oracle(
        picks in proptest::collection::vec(
            (0usize..16, proptest::collection::vec((-512i32..=512, -512i32..=512), 0..6)),
            0..12,
        ),
        sketches_flag in 0u8..2,
    ) {
        let parts = build_parts(&picks, sketches_flag == 1);
        let fp = FlatPartials::encode(&parts);
        prop_assert_eq!(fp.wire_size(), fp.to_bytes().len());
        prop_assert_eq!(fp.entries(), parts.len());

        let decoded = fp.decode().expect("own encoding decodes");
        prop_assert_eq!(&decoded, &parts, "flat roundtrip changed a fragment");

        // Seed oracle: the serde tree path carries the same data...
        let json = serde_json::to_string(&parts).expect("serde oracle encodes");
        let via_serde: Vec<(CellKey, CellStats)> =
            serde_json::from_str(&json).expect("serde oracle decodes");
        prop_assert_eq!(&decoded, &via_serde, "flat and serde paths disagree");

        // ...and stays equal after the coordinator's per-key merge.
        prop_assert_eq!(merged(&decoded), merged(&via_serde));

        // Byte-level transport round-trips the exact buffer.
        let back = FlatPartials::from_bytes(&fp.to_bytes()).expect("bytes decode");
        prop_assert_eq!(back, fp);
    }

    /// Truncations always error; arbitrary single-word corruption may
    /// error or decode, but never panics and never over-allocates.
    #[test]
    fn corrupt_partials_never_panic(
        picks in proptest::collection::vec(
            (0usize..16, proptest::collection::vec((-64i32..=64, -64i32..=64), 0..4)),
            1..8,
        ),
        sketches_flag in 0u8..2,
        word_idx in 0usize..256,
        flip in 1u64..=u64::MAX,
    ) {
        let parts = build_parts(&picks, sketches_flag == 1);
        let bytes = FlatPartials::encode(&parts).to_bytes();

        for cut in (0..bytes.len()).step_by(8) {
            prop_assert!(
                FlatPartials::from_bytes(&bytes[..cut])
                    .and_then(|fp| fp.decode().map(|_| fp))
                    .is_err(),
                "truncated buffer accepted at {cut} of {}",
                bytes.len()
            );
        }
        prop_assert!(FlatPartials::from_bytes(&bytes[..bytes.len() - 1]).is_err());

        let mut corrupt = bytes.clone();
        let at = (word_idx % (bytes.len() / 8)) * 8;
        let word = u64::from_le_bytes(corrupt[at..at + 8].try_into().unwrap()) ^ flip;
        corrupt[at..at + 8].copy_from_slice(&word.to_le_bytes());
        if let Ok(fp) = FlatPartials::from_bytes(&corrupt) {
            let _ = fp.decode();
        }
    }
}
