//! Property tests for the Cell/summary algebra — the invariants that make
//! collective caching sound: aggregation must commute with partitioning.

use proptest::prelude::*;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{AggFunc, AggQuery, Cell, CellKey, CellSummary, SketchSpec, SummaryStats};

fn arb_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 0..max_len)
}

proptest! {
    #[test]
    fn merge_commutes(a in arb_values(50), b in arb_values(50)) {
        let sa = SummaryStats::from_values(&a);
        let sb = SummaryStats::from_values(&b);
        prop_assert_eq!(sa.merged(&sb), sb.merged(&sa));
    }

    #[test]
    fn merge_associates(a in arb_values(20), b in arb_values(20), c in arb_values(20)) {
        let (sa, sb, sc) = (
            SummaryStats::from_values(&a),
            SummaryStats::from_values(&b),
            SummaryStats::from_values(&c),
        );
        let left = sa.merged(&sb).merged(&sc);
        let right = sa.merged(&sb.merged(&sc));
        // count/min/max associate exactly; sums only up to float
        // reassociation error.
        prop_assert_eq!(left.count, right.count);
        prop_assert_eq!(left.min(), right.min());
        prop_assert_eq!(left.max(), right.max());
        prop_assert!((left.sum - right.sum).abs() < 1e-6 * (1.0 + right.sum.abs()));
        prop_assert!((left.sum_sq - right.sum_sq).abs() < 1e-6 * (1.0 + right.sum_sq.abs()));
    }

    #[test]
    fn partition_then_merge_equals_whole(values in arb_values(100), split in 0usize..100) {
        let split = split.min(values.len());
        let (lo, hi) = values.split_at(split);
        let merged = SummaryStats::from_values(lo).merged(&SummaryStats::from_values(hi));
        let whole = SummaryStats::from_values(&values);
        // count/min/max are exact; sums may differ by float reassociation.
        prop_assert_eq!(merged.count, whole.count);
        prop_assert_eq!(merged.min(), whole.min());
        prop_assert_eq!(merged.max(), whole.max());
        prop_assert!((merged.sum - whole.sum).abs() < 1e-6 * (1.0 + whole.sum.abs()));
    }

    #[test]
    fn stats_are_consistent(values in arb_values(100)) {
        let s = SummaryStats::from_values(&values);
        if let (Some(min), Some(max), Some(mean)) = (s.min(), s.max(), s.mean()) {
            prop_assert!(min <= mean + 1e-9 && mean <= max + 1e-9);
            prop_assert!(s.variance().unwrap() >= 0.0);
            let spread = max - min;
            prop_assert!(s.stddev().unwrap() <= spread + 1e-9);
        } else {
            prop_assert!(values.is_empty());
        }
    }

    #[test]
    fn cell_key_roundtrips_through_level(
        (lat, lon) in (-90.0f64..=90.0, -180.0f64..180.0),
        s_res in 1u8..=10,
        t in -1_000_000_000i64..2_000_000_000,
        t_idx in 0u8..4,
    ) {
        let res = TemporalRes::from_index(t_idx).unwrap();
        let key = CellKey::new(
            Geohash::encode(lat, lon, s_res).unwrap(),
            TimeBin::containing(res, t),
        );
        let level = key.level();
        prop_assert_eq!(level.spatial_res(), s_res);
        prop_assert_eq!(level.temporal_res(), res);
    }

    #[test]
    fn parents_strictly_enclose(
        (lat, lon) in (-90.0f64..=90.0, -180.0f64..180.0),
        s_res in 2u8..=9,
        t in 0i64..2_000_000_000,
    ) {
        let key = CellKey::new(
            Geohash::encode(lat, lon, s_res).unwrap(),
            TimeBin::containing(TemporalRes::Day, t),
        );
        for p in key.parents() {
            prop_assert!(key.is_within(&p));
            prop_assert!(!p.is_within(&key) || p == key);
            prop_assert!(p.level() < key.level());
        }
    }

    #[test]
    fn query_cell_count_matches_enumeration(
        lat in -60.0f64..60.0,
        lon in -150.0f64..150.0,
        dlat in 0.1f64..3.0,
        dlon in 0.1f64..3.0,
        s_res in 2u8..=4,
    ) {
        let q = AggQuery::new(
            BBox::from_corner_extent(lat, lon, dlat, dlon),
            TimeRange::whole_day(2015, 2, 2),
            s_res,
            TemporalRes::Day,
        );
        let keys = q.target_keys(1_000_000).unwrap();
        prop_assert_eq!(keys.len(), q.target_cell_count());
        // No duplicates.
        let set: std::collections::HashSet<_> = keys.iter().collect();
        prop_assert_eq!(set.len(), keys.len());
    }

    #[test]
    fn from_children_is_order_independent(
        rows in prop::collection::vec((0usize..4, -100.0f64..100.0), 1..60),
    ) {
        // Distribute rows over 4 child cells, then merge in two different
        // orders; count/min/max must be identical.
        let parent = CellKey::new(
            Geohash::encode(40.0, -105.0, 3).unwrap(),
            TimeBin::containing(TemporalRes::Day, 0),
        );
        let child_keys = parent.spatial_children().unwrap();
        let mut kids: Vec<Cell> = (0..4).map(|i| Cell::empty(child_keys[i], 1)).collect();
        for (slot, v) in &rows {
            kids[*slot].summary.push_row(&[*v]);
        }
        let forward = Cell::from_children(parent, 1, kids.iter());
        let backward = Cell::from_children(parent, 1, kids.iter().rev());
        prop_assert_eq!(forward.summary.count(), backward.summary.count());
        prop_assert_eq!(
            forward.summary.attr(0).unwrap().min(),
            backward.summary.attr(0).unwrap().min()
        );
        prop_assert_eq!(
            forward.summary.attr(0).unwrap().max(),
            backward.summary.attr(0).unwrap().max()
        );
    }

    #[test]
    fn agg_funcs_total_on_nonempty(values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let s = SummaryStats::from_values(&values);
        for f in [AggFunc::Count, AggFunc::Min, AggFunc::Max, AggFunc::Sum, AggFunc::Mean, AggFunc::StdDev] {
            prop_assert!(f.apply(&s).is_some(), "{f:?} undefined on non-empty summary");
        }
    }

    #[test]
    fn cell_summary_merge_matches_row_union(
        rows_a in prop::collection::vec(prop::array::uniform2(-100.0f64..100.0), 0..30),
        rows_b in prop::collection::vec(prop::array::uniform2(-100.0f64..100.0), 0..30),
    ) {
        let mut a = CellSummary::empty(2);
        for r in &rows_a { a.push_row(r); }
        let mut b = CellSummary::empty(2);
        for r in &rows_b { b.push_row(r); }
        let mut union = CellSummary::empty(2);
        for r in rows_a.iter().chain(&rows_b) { union.push_row(r); }
        a.merge(&b);
        prop_assert_eq!(a.count(), union.count());
        for i in 0..2 {
            prop_assert_eq!(a.attr(i).unwrap().min(), union.attr(i).unwrap().min());
            prop_assert_eq!(a.attr(i).unwrap().max(), union.attr(i).unwrap().max());
        }
    }

    /// Sketch-carrying Cells keep the partition-merge law *bit-for-bit* on
    /// quantized data (the regime where the heavy-hitter candidate list is
    /// exactly order-invariant; quantiles and distinct counts are canonical
    /// on any data).
    #[test]
    fn sketched_cells_merge_matches_row_union(
        rows_a in prop::collection::vec(prop::array::uniform2(-50i32..50), 0..40),
        rows_b in prop::collection::vec(prop::array::uniform2(-50i32..50), 0..40),
    ) {
        let spec = SketchSpec::standard();
        let push = |cs: &mut CellSummary, rows: &[[i32; 2]]| {
            for r in rows {
                cs.push_row(&[r[0] as f64, r[1] as f64]);
            }
        };
        let mut a = CellSummary::empty_with(2, &spec);
        push(&mut a, &rows_a);
        let mut b = CellSummary::empty_with(2, &spec);
        push(&mut b, &rows_b);
        let mut union = CellSummary::empty_with(2, &spec);
        push(&mut union, &rows_a);
        push(&mut union, &rows_b);
        a.merge(&b);
        prop_assert_eq!(&a, &union);
        // Merging through a fresh exact-only accumulator (the gather seed
        // path) adopts sketch state instead of dropping it.
        let mut seed = CellSummary::empty(2);
        seed.merge(&union);
        prop_assert_eq!(&seed, &union);
    }

    /// A non-empty exact-only partial degrades the merged Cell to
    /// exact-only rather than keeping sketches that silently missed rows.
    #[test]
    fn mixed_merge_degrades_to_exact(
        rows in prop::collection::vec(prop::array::uniform2(-50i32..50), 1..20),
    ) {
        let spec = SketchSpec::standard();
        let mut sketched = CellSummary::empty_with(2, &spec);
        let mut exact = CellSummary::empty(2);
        for r in &rows {
            let row = [r[0] as f64, r[1] as f64];
            sketched.push_row(&row);
            exact.push_row(&row);
        }
        let mut merged = sketched.clone();
        merged.merge(&exact);
        prop_assert!(!merged.has_sketches());
        prop_assert_eq!(merged.count(), 2 * exact.count());
    }
}
