//! Wire-format tests: the front-end protocol is JSON (paper §VI-A — the
//! Grafana panel "parses and displays summarization responses in JSON"),
//! so every type crossing the client boundary must round-trip through
//! serde_json without loss.

use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{AggQuery, Cell, CellKey, CellSummary, QueryResult, SketchSpec, SummaryStats};
use std::str::FromStr;

fn sample_key() -> CellKey {
    CellKey::new(
        Geohash::from_str("9q8y7").unwrap(),
        TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0)),
    )
}

fn sample_cell() -> Cell {
    let mut c = Cell::empty(sample_key(), 4);
    c.summary.push_row(&[21.5, 68.0, 0.0, 0.0]);
    c.summary.push_row(&[-3.25, 91.5, 4.2, 12.0]);
    c
}

fn roundtrip<T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(
    v: &T,
) {
    let json = serde_json::to_string(v).expect("serialize");
    let back: T = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(&back, v, "lossy roundtrip via {json}");
}

#[test]
fn geohash_roundtrips() {
    for s in ["9", "9q8y7", "zzzzzzzzzzzz", "0000"] {
        roundtrip(&Geohash::from_str(s).unwrap());
    }
}

#[test]
fn time_types_roundtrip() {
    roundtrip(&TimeBin::containing(
        TemporalRes::Hour,
        epoch_seconds(2015, 7, 4, 13, 0, 0),
    ));
    roundtrip(&TimeRange::whole_day(2015, 2, 2));
    for res in TemporalRes::ALL {
        roundtrip(&res);
    }
}

#[test]
fn bbox_roundtrips() {
    roundtrip(&BBox::from_corner_extent(38.0, -105.0, 0.6, 1.2));
    roundtrip(&BBox::GLOBE);
}

#[test]
fn summary_stats_roundtrip_including_empty() {
    roundtrip(&SummaryStats::from_values(&[1.5, -2.25, 1e6]));
    // The empty summary's in-memory ±infinity sentinels travel as nulls.
    let empty = SummaryStats::empty();
    let json = serde_json::to_string(&empty).expect("empty serializes");
    assert!(
        json.contains("\"min\":null"),
        "wire form uses null extremes: {json}"
    );
    roundtrip(&empty);
    // A corrupt wire value (non-empty without extremes) is rejected.
    let bad = r#"{"count":3,"min":null,"max":null,"sum":1.0,"sum_sq":1.0}"#;
    assert!(serde_json::from_str::<SummaryStats>(bad).is_err());
}

#[test]
fn cell_and_key_roundtrip() {
    roundtrip(&sample_key());
    roundtrip(&sample_cell());
    roundtrip(&CellSummary::from_parts(vec![SummaryStats::of(5.0); 3]));
}

#[test]
fn query_roundtrips() {
    let q = AggQuery::new(
        BBox::from_corner_extent(38.0, -105.0, 4.0, 8.0),
        TimeRange::whole_day(2015, 2, 2),
        4,
        TemporalRes::Day,
    );
    roundtrip(&q);
}

#[test]
fn query_result_roundtrips_and_is_renderable() {
    let r = QueryResult {
        cells: vec![sample_cell()],
        cache_hits: 3,
        derived_hits: 1,
        misses: 2,
        rollup_hits: 1,
    };
    roundtrip(&r);
    // The JSON shape a front-end consumes: cells carry keys and summaries.
    let v: serde_json::Value = serde_json::to_value(&r).unwrap();
    assert!(v["cells"].is_array());
    assert_eq!(v["cells"].as_array().unwrap().len(), 1);
    assert_eq!(v["cache_hits"], 3);
    assert_eq!(v["rollup_hits"], 1);
}

#[test]
fn json_is_stable_across_serializations() {
    let c = sample_cell();
    let a = serde_json::to_string(&c).unwrap();
    let b = serde_json::to_string(&c).unwrap();
    assert_eq!(a, b, "serialization must be deterministic");
}

/// Regression pin for the pre-sketch wire format: an exact-only summary
/// must serialize byte-for-byte as it did before `CellStats` learned to
/// carry sketches — no `"sketches"` key, same field order, null extremes
/// for empty attributes.
#[test]
fn exact_only_wire_format_is_unchanged() {
    let mut s = CellSummary::empty(2);
    s.push_row(&[2.0, -4.5]);
    let json = serde_json::to_string(&s).unwrap();
    assert_eq!(
        json,
        concat!(
            r#"{"summaries":["#,
            r#"{"count":1,"min":2.0,"max":2.0,"sum":2.0,"sum_sq":4.0},"#,
            r#"{"count":1,"min":-4.5,"max":-4.5,"sum":-4.5,"sum_sq":20.25}"#,
            r#"]}"#
        )
    );
    let empty = serde_json::to_string(&CellSummary::empty(1)).unwrap();
    assert_eq!(
        empty,
        r#"{"summaries":[{"count":0,"min":null,"max":null,"sum":0.0,"sum_sq":0.0}]}"#
    );
    assert!(!json.contains("sketches"));
}

#[test]
fn sketched_cells_roundtrip() {
    let mut s = CellSummary::empty_with(2, &SketchSpec::standard());
    s.push_row(&[21.0, 68.0]);
    s.push_row(&[-3.0, 91.0]);
    assert!(s.has_sketches());
    roundtrip(&s);
    let json = serde_json::to_string(&s).unwrap();
    assert!(json.contains("\"sketches\""));
    // Sketch state participates in Cell/QueryResult wire forms untouched.
    let mut cell = Cell::empty(sample_key(), 2);
    cell.summary = s;
    roundtrip(&cell);
}
