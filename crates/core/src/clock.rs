//! The logical clock freshness decays against.
//!
//! Freshness combines access *frequency* with *recency* (§V-C1). Recency
//! needs a notion of time; wall-clock time would make cache behaviour
//! depend on machine speed, so STASH here advances a logical clock once per
//! evaluated query. "A Cell untouched for τ ticks" then means "untouched
//! for τ queries", which is the locality the paper's workloads exhibit.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing query counter, shared across node threads.
#[derive(Debug, Default)]
pub struct LogicalClock {
    tick: AtomicU64,
}

impl LogicalClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current tick.
    #[inline]
    pub fn now(&self) -> u64 {
        self.tick.load(Ordering::Relaxed)
    }

    /// Advance by one (called once per query evaluation) and return the new
    /// tick.
    #[inline]
    pub fn advance(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Jump forward by `n` ticks (tests, TTL expiry simulations).
    pub fn advance_by(&self, n: u64) -> u64 {
        self.tick.fetch_add(n, Ordering::Relaxed) + n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_monotonically() {
        let c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.now(), 2);
        assert_eq!(c.advance_by(10), 12);
    }

    #[test]
    fn concurrent_advances_never_collide() {
        let c = std::sync::Arc::new(LogicalClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || (0..1000).map(|_| c.advance()).collect::<Vec<u64>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 4000);
        assert_eq!(c.now(), 4000);
    }
}
