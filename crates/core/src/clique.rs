//! Cliques: the unit of hotspot replication (§VII-B2).
//!
//! "We define Cliques, here, as a subgraph of Cells from the STASH graph of
//! a pre-configured size (depth). For example a Clique of depth 2 would
//! consist of a Cell C_i and all its children Cells […]. Cliques are
//! identified by the spatiotemporal label of their topmost parent Cell."
//!
//! A hotspotted node calls [`CliqueFinder::top_cliques`] to find the K
//! cliques with the highest cumulative freshness whose total size fits the
//! replication budget N; those are shipped to a helper node. The
//! hierarchical organization makes membership computation a prefix
//! truncation per cached Cell — no traversal (§VII-B2: "the hierarchical
//! structure of STASH graph makes it efficient to identify the Cells that
//! would be in a given Clique").

use crate::graph::StashGraph;
use stash_geo::Geohash;
use stash_model::{CellKey, Level};
use std::collections::HashMap;

/// A replication unit: the Cells of one rooted subgraph, with their
/// cumulative freshness.
#[derive(Debug, Clone, PartialEq)]
pub struct Clique {
    /// Label of the topmost parent Cell (identifies the Clique; the root
    /// Cell itself may or may not be cached).
    pub root: CellKey,
    /// Cached member Cells (root included when cached).
    pub members: Vec<CellKey>,
    /// Sum of members' effective freshness at selection time.
    pub cumulative_freshness: f64,
}

impl Clique {
    /// Number of Cells this Clique would replicate.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Candidate helper region for this Clique: the geohash antipode of the
    /// root for `attempt == 0`, then pseudo-random perturbations around the
    /// antipode for retries (§VII-B3: "repeats the above process for
    /// another geohash region in a random direction around the antipode
    /// geohash").
    pub fn helper_region(&self, attempt: u64) -> Geohash {
        let anti = self.root.geohash.antipode();
        if attempt == 0 {
            anti
        } else {
            anti.perturb(attempt)
        }
    }
}

/// Finds the hottest Cliques in a graph.
#[derive(Debug, Clone, Copy)]
pub struct CliqueFinder {
    /// Levels per Clique: 1 = root only, 2 = root + children, …
    pub depth: u8,
}

impl CliqueFinder {
    pub fn new(depth: u8) -> Self {
        assert!(depth >= 1, "clique depth must be at least 1");
        CliqueFinder { depth }
    }

    /// Identify the top Cliques at the *query* level `hot_level` (the level
    /// the hotspot's queries hit). Roots sit `depth - 1` spatial levels
    /// above the query level so the clique's leaves are the queried Cells.
    ///
    /// Greedy selection: hottest cumulative freshness first, while total
    /// size stays ≤ `max_cells` and at most `k` cliques (§VII-B2's "top K
    /// Cliques whose cumulative size is ≤ N").
    pub fn top_cliques(
        &self,
        graph: &StashGraph,
        hot_level: Level,
        max_cells: usize,
        k: usize,
    ) -> Vec<Clique> {
        let leaf_res = hot_level.spatial_res();
        let root_res = leaf_res.saturating_sub(self.depth - 1).max(1);
        let t_res = hot_level.temporal_res();

        // Accumulate member lists per root by truncating every cached Cell
        // in the clique's level span down to the root resolution.
        let mut acc: HashMap<CellKey, (Vec<CellKey>, f64)> = HashMap::new();
        for s_res in root_res..=leaf_res {
            let level = Level::of(s_res, t_res).expect("resolutions in range");
            for (key, score) in graph.level_scores(level) {
                let root_gh = key.geohash.prefix(root_res).expect("root_res <= key len");
                let root = CellKey::new(root_gh, key.time);
                let entry = acc.entry(root).or_insert_with(|| (Vec::new(), 0.0));
                entry.0.push(key);
                entry.1 += score;
            }
        }

        let mut cliques: Vec<Clique> = acc
            .into_iter()
            .map(|(root, (members, cumulative_freshness))| Clique {
                root,
                members,
                cumulative_freshness,
            })
            .collect();
        // Hottest first; root key tie-break keeps selection deterministic.
        cliques.sort_by(|a, b| {
            b.cumulative_freshness
                .total_cmp(&a.cumulative_freshness)
                .then_with(|| a.root.cmp(&b.root))
        });

        // §VII-B2 asks for the top K *hottest* cliques whose cumulative
        // size fits N: the k-limit applies to candidates by rank, not to
        // however many selections the budget eventually admits. The old
        // greedy pass re-checked `out.len() >= k` before each size check,
        // so when a hot clique was oversized the scan kept walking and
        // promoted arbitrarily cold tail cliques into the "top K" — the
        // replica set then pinned cold data instead of the hotspot.
        let mut out = Vec::new();
        let mut budget = max_cells;
        for c in cliques.into_iter().take(k) {
            if budget == 0 {
                break;
            }
            if c.members.is_empty() || c.size() > budget {
                continue;
            }
            budget -= c.size();
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::config::StashConfig;
    use stash_geo::time::epoch_seconds;
    use stash_geo::{TemporalRes, TimeBin};
    use stash_model::Cell;
    use std::str::FromStr;
    use std::sync::Arc;

    fn graph() -> StashGraph {
        StashGraph::new(StashConfig::default(), Arc::new(LogicalClock::new()))
    }

    fn day() -> TimeBin {
        TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0))
    }

    fn key(gh: &str) -> CellKey {
        CellKey::new(Geohash::from_str(gh).unwrap(), day())
    }

    /// Populate children of two roots; touch one root's children more.
    fn two_region_graph() -> (StashGraph, CellKey, CellKey) {
        let g = graph();
        let hot = key("9q8");
        let cold = key("9r2");
        for root in [&hot, &cold] {
            for ck in root.spatial_children().unwrap() {
                g.insert(Cell::empty(ck, 1));
            }
        }
        // Make the hot region hot: repeated direct accesses.
        for _ in 0..5 {
            for ck in hot.spatial_children().unwrap() {
                g.get(&ck);
            }
        }
        (g, hot, cold)
    }

    #[test]
    fn hottest_clique_ranks_first() {
        let (g, hot, cold) = two_region_graph();
        let finder = CliqueFinder::new(2);
        let level = Level::of(4, TemporalRes::Day).unwrap();
        let cliques = finder.top_cliques(&g, level, 10_000, 10);
        assert!(cliques.len() >= 2);
        assert_eq!(cliques[0].root, hot, "hot region must rank first");
        assert!(cliques[0].cumulative_freshness > cliques[1].cumulative_freshness);
        assert!(cliques.iter().any(|c| c.root == cold));
    }

    #[test]
    fn members_are_nested_under_root() {
        let (g, hot, _) = two_region_graph();
        let finder = CliqueFinder::new(2);
        let level = Level::of(4, TemporalRes::Day).unwrap();
        let cliques = finder.top_cliques(&g, level, 10_000, 10);
        let c = cliques.iter().find(|c| c.root == hot).unwrap();
        assert_eq!(c.size(), 32, "depth-2 clique holds the 32 cached children");
        for m in &c.members {
            assert!(m.is_within(&c.root), "{m} outside clique {0}", c.root);
        }
    }

    #[test]
    fn depth_one_cliques_are_single_cells() {
        let (g, _, _) = two_region_graph();
        let finder = CliqueFinder::new(1);
        let level = Level::of(4, TemporalRes::Day).unwrap();
        let cliques = finder.top_cliques(&g, level, 10, 10);
        for c in &cliques {
            assert_eq!(c.size(), 1);
            assert_eq!(c.members[0], c.root);
        }
    }

    #[test]
    fn root_cell_included_when_cached() {
        let g = graph();
        let root = key("9q8");
        g.insert(Cell::empty(root, 1));
        for ck in root.spatial_children().unwrap() {
            g.insert(Cell::empty(ck, 1));
        }
        let finder = CliqueFinder::new(2);
        let level = Level::of(4, TemporalRes::Day).unwrap();
        let cliques = finder.top_cliques(&g, level, 10_000, 10);
        let c = cliques.iter().find(|c| c.root == root).unwrap();
        assert_eq!(c.size(), 33, "root + 32 children");
        assert!(c.members.contains(&root));
    }

    #[test]
    fn budget_limits_total_replicated_cells() {
        let (g, hot, _) = two_region_graph();
        let finder = CliqueFinder::new(2);
        let level = Level::of(4, TemporalRes::Day).unwrap();
        // Budget fits exactly one 32-cell clique.
        let cliques = finder.top_cliques(&g, level, 40, 10);
        assert_eq!(cliques.len(), 1);
        assert_eq!(cliques[0].root, hot);
        // k limits count even when budget allows more.
        let one = finder.top_cliques(&g, level, 10_000, 1);
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn oversized_hottest_clique_does_not_shadow_or_yield_its_slots() {
        // One blazing-hot 32-cell clique plus several barely-touched
        // single-cell cliques in far-away regions.
        let g = graph();
        let hot = key("9q8");
        for ck in hot.spatial_children().unwrap() {
            g.insert(Cell::empty(ck, 1));
        }
        for _ in 0..5 {
            for ck in hot.spatial_children().unwrap() {
                g.get(&ck);
            }
        }
        let cold = ["9r2x", "c2b2", "dr5r", "u4pr"];
        for gh in cold {
            g.insert(Cell::empty(key(gh), 1));
        }
        let finder = CliqueFinder::new(2);
        let level = Level::of(4, TemporalRes::Day).unwrap();

        // k = 1 with a budget too small for the hottest clique: the single
        // top-ranked candidate is oversized, so nothing replicates. The old
        // greedy pass kept scanning and shipped a cold singleton instead.
        let none = finder.top_cliques(&g, level, 16, 1);
        assert!(
            none.is_empty(),
            "oversized top clique must not surrender its slot to cold tail cliques: {:?}",
            none.iter().map(|c| c.root).collect::<Vec<_>>()
        );

        // k = 3: only ranks 1..=3 are candidates. The oversized rank-1 is
        // skipped, the two rank-2/3 singletons fit; rank-4 must not be
        // promoted into the window (the old code returned 3 singletons).
        let some = finder.top_cliques(&g, level, 16, 3);
        assert_eq!(some.len(), 2, "exactly the in-window fitting cliques");
        for c in &some {
            assert_eq!(c.size(), 1);
            assert_ne!(c.root, hot);
        }
    }

    #[test]
    fn empty_graph_has_no_cliques() {
        let g = graph();
        let finder = CliqueFinder::new(2);
        let level = Level::of(4, TemporalRes::Day).unwrap();
        assert!(finder.top_cliques(&g, level, 100, 10).is_empty());
    }

    #[test]
    fn helper_region_is_antipodal_then_perturbed() {
        let (g, hot, _) = two_region_graph();
        let finder = CliqueFinder::new(2);
        let level = Level::of(4, TemporalRes::Day).unwrap();
        let clique = finder.top_cliques(&g, level, 10_000, 1).remove(0);
        let _ = g;
        let first = clique.helper_region(0);
        assert_eq!(first, hot.geohash.antipode());
        // Retries move around the antipode, never back to it.
        let mut seen = std::collections::HashSet::new();
        for attempt in 1..10 {
            let r = clique.helper_region(attempt);
            assert_ne!(r, first);
            seen.insert(r);
        }
        assert!(seen.len() > 3, "retries should explore several regions");
    }

    #[test]
    fn selection_is_deterministic() {
        let (g, _, _) = two_region_graph();
        let finder = CliqueFinder::new(2);
        let level = Level::of(4, TemporalRes::Day).unwrap();
        let a = finder.top_cliques(&g, level, 10_000, 10);
        let b = finder.top_cliques(&g, level, 10_000, 10);
        assert_eq!(
            a.iter().map(|c| c.root).collect::<Vec<_>>(),
            b.iter().map(|c| c.root).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_depth_rejected() {
        CliqueFinder::new(0);
    }
}
