//! STASH tuning knobs.
//!
//! The paper repeatedly notes its thresholds are configurable ("the
//! threshold for the total number of Cells allowed in STASH is configurable
//! and limited", §V-C; "a configurable threshold" for hotspot detection,
//! §VII-B1; cooldown and purge periods, §VII-D). This struct gathers all of
//! them with defaults scaled for the laptop-size simulated cluster.

use serde::{Deserialize, Serialize};
use stash_model::SketchSpec;

/// How a hotspotted node picks candidate helper nodes (§VII-B3 vs the
/// random-helper ablation of DESIGN.md §8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HelperSelection {
    /// The paper's scheme: the node owning the geohash antipode of the
    /// Clique root, maximally isolated from the hotspotted region.
    Antipode,
    /// Ablation: a pseudo-random other node.
    Random,
}

/// Configuration of one node's STASH instance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StashConfig {
    // -- Cell replacement (§V-C) -------------------------------------------
    /// Maximum Cells held in the local graph before replacement kicks in.
    pub max_cells: usize,
    /// Replacement evicts lowest-freshness Cells until the count drops to
    /// `max_cells * safe_fraction` (the paper's "safe limit").
    pub safe_fraction: f64,
    /// Freshness added to each Cell of a directly-accessed region (`f_inc`).
    pub f_inc: f64,
    /// Fraction of `f_inc` dispersed to the region's spatiotemporal
    /// neighborhood (the grey cells of Fig. 3).
    pub neighbor_fraction: f64,
    /// Logical-time constant of the exponential freshness decay: a Cell
    /// untouched for `decay_tau` clock ticks retains 1/e of its score.
    pub decay_tau: f64,

    // -- Query evaluation ----------------------------------------------------
    /// Ceiling on target Cells per query; protects the planner from
    /// degenerate resolution/extent combinations.
    pub max_cells_per_query: usize,
    /// Ceiling on blocks per backing-store fetch.
    pub max_blocks_per_fetch: usize,
    /// Derive missing coarse Cells by merging cached children (§V-B
    /// condition (b)). Disabled only by the ablation benches.
    pub enable_derivation: bool,
    /// Byte budget of the per-node decoded-frame cache sitting in front of
    /// the block store (DESIGN.md §12). `0` disables caching.
    pub frame_cache_bytes: usize,
    /// Mergeable sketch state carried per Cell attribute (DESIGN.md §14):
    /// quantile, distinct-count, and heavy-hitter partials folded at block
    /// scans and merged upward with the exact summaries. Disabled by
    /// default; exact-only behavior is bit-for-bit unchanged when off.
    pub sketch: SketchSpec,

    // -- Hotspot handling (§VII) ---------------------------------------------
    /// Pending-request queue length at which a node declares itself
    /// hotspotted (paper's experiments: 100).
    pub hotspot_threshold: usize,
    /// Clique depth: a root plus `clique_depth - 1` spatial refinement
    /// levels below it (paper example: depth 2 = Cell + children).
    pub clique_depth: u8,
    /// Maximum total Cells replicated per handoff (the paper's `N`).
    pub max_replicable_cells: usize,
    /// Maximum Cliques shipped per handoff (the paper's `K`).
    pub top_k_cliques: usize,
    /// Probability that a query fully covered by a replica is rerouted to
    /// the helper node (§VII-C "probabilistically rerouted").
    pub reroute_probability: f64,
    /// Logical ticks a node waits after a handoff before it may hand off
    /// again (§VII-D cooldown).
    pub cooldown_ticks: u64,
    /// Guest-graph entries unused for this many ticks are purged (§VII-D).
    pub guest_ttl_ticks: u64,
    /// Routing-table entries older than this are purged (§VII-D "signifying
    /// the retreat of hotspot").
    pub routing_ttl_ticks: u64,
    /// Cell capacity of a helper's guest graph.
    pub guest_max_cells: usize,
    /// Helper-node selection policy.
    pub helper_selection: HelperSelection,
}

impl Default for StashConfig {
    fn default() -> Self {
        StashConfig {
            max_cells: 200_000,
            safe_fraction: 0.85,
            f_inc: 1.0,
            neighbor_fraction: 0.4,
            decay_tau: 64.0,
            max_cells_per_query: 200_000,
            max_blocks_per_fetch: 20_000,
            enable_derivation: true,
            frame_cache_bytes: 64 << 20,
            sketch: SketchSpec::disabled(),
            hotspot_threshold: 100,
            clique_depth: 2,
            max_replicable_cells: 4_096,
            top_k_cliques: 8,
            reroute_probability: 0.75,
            cooldown_ticks: 32,
            guest_ttl_ticks: 512,
            routing_ttl_ticks: 512,
            guest_max_cells: 100_000,
            helper_selection: HelperSelection::Antipode,
        }
    }
}

impl StashConfig {
    /// The replacement target: Cell count after an eviction pass.
    pub fn safe_limit(&self) -> usize {
        ((self.max_cells as f64) * self.safe_fraction).floor() as usize
    }

    /// Check every knob against its valid domain, returning the first
    /// violation as a message. This is the fallible surface the cluster
    /// config builder reports through; [`StashConfig::validate`] wraps it
    /// for runtimes that prefer to fail loudly at startup.
    pub fn check(&self) -> Result<(), String> {
        if self.max_cells == 0 {
            return Err("max_cells must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.safe_fraction) {
            return Err("safe_fraction must be within [0,1]".into());
        }
        if self.f_inc <= 0.0 {
            return Err("f_inc must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.neighbor_fraction) {
            return Err("neighbor_fraction must be within [0,1]".into());
        }
        if self.decay_tau <= 0.0 {
            return Err("decay_tau must be positive".into());
        }
        if self.clique_depth < 1 {
            return Err("clique_depth must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.reroute_probability) {
            return Err("reroute_probability must be within [0,1]".into());
        }
        if self.max_replicable_cells == 0 {
            return Err("max_replicable_cells must be positive".into());
        }
        if self.top_k_cliques == 0 {
            return Err("top_k_cliques must be positive".into());
        }
        self.sketch
            .validate()
            .map_err(|e| format!("sketch spec invalid: {e}"))
    }

    /// Panics if any knob is out of its valid domain. Called by node
    /// runtimes at startup so misconfiguration fails loudly, not subtly.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        StashConfig::default().validate();
    }

    #[test]
    fn safe_limit_applies_fraction() {
        let c = StashConfig {
            max_cells: 1000,
            safe_fraction: 0.85,
            ..Default::default()
        };
        assert_eq!(c.safe_limit(), 850);
    }

    #[test]
    #[should_panic(expected = "safe_fraction")]
    fn bad_fraction_rejected() {
        StashConfig {
            safe_fraction: 1.5,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "clique_depth")]
    fn zero_clique_depth_rejected() {
        StashConfig {
            clique_depth: 0,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "sketch spec")]
    fn bad_sketch_spec_rejected() {
        let mut spec = SketchSpec::standard();
        spec.hll_precision = 99;
        StashConfig {
            sketch: spec,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    fn sketch_enabled_defaults_are_valid() {
        StashConfig {
            sketch: SketchSpec::standard(),
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "max_cells")]
    fn zero_capacity_rejected() {
        StashConfig {
            max_cells: 0,
            ..Default::default()
        }
        .validate();
    }
}
