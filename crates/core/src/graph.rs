//! The per-node STASH graph: levels of Cells, freshness, and replacement.
//!
//! One `StashGraph` is a node's shard of the logical graph `G_STASH =
//! (V, {E_H, E_L})` (§IV). Vertices live in per-level hash maps ("a map of
//! distributed hash tables instead of a conventional graph storage system",
//! §I-B); edges are never stored — parent/children/neighbor Cells are found
//! by key arithmetic, the paper's "composable vertex discovery schemes"
//! (§IV-D). The graph owns:
//!
//! * the **PLM** ([`crate::plm::Plm`]) kept in lock-step with the maps;
//! * **freshness** scores and their dispersion to the spatiotemporal
//!   neighborhood of accessed regions (§V-C2, Fig. 3);
//! * **replacement**: when the Cell count crosses the configured threshold,
//!   lowest-freshness Cells are evicted until the safe limit (§V-C).
//!
//! Locking: one `RwLock` per level keeps cross-level operations (a query
//! touches one level; derivation touches two) from contending, and
//! freshness bumps use atomics so the cache-hit path only takes read locks.

use crate::clock::LogicalClock;
use crate::config::StashConfig;
use crate::freshness::Freshness;
use crate::fx::{FxHashMap, FxHashSet};
use crate::plm::Plm;
use parking_lot::RwLock;
use stash_geo::{BBox, TimeRange};
use stash_model::level::NUM_LEVELS;
use stash_model::{Cell, CellKey, CellSummary, Level};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

struct Entry {
    cell: Cell,
    fresh: Freshness,
}

/// Per-level monitoring counters (relaxed atomics).
#[derive(Debug, Default)]
pub struct LevelStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub insertions: AtomicU64,
    pub evictions: AtomicU64,
    /// Freshness dispersal bumps applied to cached neighbors (§V-C2).
    pub dispersals: AtomicU64,
}

/// Monitoring counters (relaxed atomics).
///
/// Totals plus a per-level breakdown ([`GraphStats::level`]) and the PLM's
/// completeness outcomes: every lookup lands in exactly one of
/// `plm_fresh` (cached, servable), `plm_stale` (cached but invalidated),
/// or `plm_absent` (not cached).
#[derive(Debug)]
pub struct GraphStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub derived: AtomicU64,
    pub insertions: AtomicU64,
    pub evictions: AtomicU64,
    /// Full replacement passes triggered by a threshold breach (each pass
    /// scores every cached Cell; see [`StashGraph::evict_if_needed`]).
    pub evict_passes: AtomicU64,
    /// Neighborhood freshness bumps applied by [`StashGraph::touch_region`].
    pub dispersals: AtomicU64,
    pub plm_fresh: AtomicU64,
    pub plm_stale: AtomicU64,
    pub plm_absent: AtomicU64,
    levels: Vec<LevelStats>,
}

impl Default for GraphStats {
    fn default() -> Self {
        GraphStats {
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            derived: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evict_passes: AtomicU64::new(0),
            dispersals: AtomicU64::new(0),
            plm_fresh: AtomicU64::new(0),
            plm_stale: AtomicU64::new(0),
            plm_absent: AtomicU64::new(0),
            levels: (0..NUM_LEVELS).map(|_| LevelStats::default()).collect(),
        }
    }
}

impl GraphStats {
    /// This level's slice of the counters.
    pub fn level(&self, level: Level) -> &LevelStats {
        &self.levels[level.index() as usize]
    }

    fn plm_outcome(&self, fresh: u64, stale: u64, absent: u64) {
        self.plm_fresh.fetch_add(fresh, Ordering::Relaxed);
        self.plm_stale.fetch_add(stale, Ordering::Relaxed);
        self.plm_absent.fetch_add(absent, Ordering::Relaxed);
    }
}

/// One node's in-memory STASH graph.
pub struct StashGraph {
    config: StashConfig,
    levels: Vec<RwLock<FxHashMap<CellKey, Entry>>>,
    plm: RwLock<Plm>,
    count: AtomicUsize,
    clock: Arc<LogicalClock>,
    stats: GraphStats,
}

impl StashGraph {
    pub fn new(config: StashConfig, clock: Arc<LogicalClock>) -> Self {
        config.validate();
        StashGraph {
            config,
            levels: (0..NUM_LEVELS)
                .map(|_| RwLock::new(FxHashMap::default()))
                .collect(),
            plm: RwLock::new(Plm::new()),
            count: AtomicUsize::new(0),
            clock,
            stats: GraphStats::default(),
        }
    }

    pub fn config(&self) -> &StashConfig {
        &self.config
    }

    pub fn clock(&self) -> &Arc<LogicalClock> {
        &self.clock
    }

    pub fn stats(&self) -> &GraphStats {
        &self.stats
    }

    /// Cells currently held.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn level_map(&self, key: &CellKey) -> &RwLock<FxHashMap<CellKey, Entry>> {
        &self.levels[key.level().index() as usize]
    }

    /// Is the Cell cached and fresh (PLM check)?
    pub fn contains_fresh(&self, key: &CellKey) -> bool {
        self.plm.read().is_fresh(key)
    }

    /// Completeness check for a set of target keys (§IV-D): which must be
    /// fetched or derived.
    pub fn missing_of(&self, keys: &[CellKey]) -> Vec<CellKey> {
        let plm = self.plm.read();
        keys.iter().filter(|k| !plm.is_fresh(k)).copied().collect()
    }

    /// Cache lookup. Bumps the Cell's freshness by `f_inc` (direct access)
    /// and counts a hit/miss. Stale Cells miss (their summaries may no
    /// longer match storage).
    pub fn get(&self, key: &CellKey) -> Option<Cell> {
        let lstats = self.stats.level(key.level());
        {
            let plm = self.plm.read();
            if !plm.is_fresh(key) {
                if plm.is_stale(key) {
                    self.stats.plm_outcome(0, 1, 0);
                } else {
                    self.stats.plm_outcome(0, 0, 1);
                }
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                lstats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        }
        let map = self.level_map(key).read();
        match map.get(key) {
            Some(entry) => {
                entry
                    .fresh
                    .bump(self.config.f_inc, self.clock.now(), self.config.decay_tau);
                self.stats.plm_outcome(1, 0, 0);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                lstats.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.cell.clone())
            }
            None => {
                // PLM said fresh but the Cell vanished between locks
                // (concurrent eviction): a miss, absent by the time we read.
                self.stats.plm_outcome(0, 0, 1);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                lstats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Batched cache lookup for one query's keys: one lock acquisition and
    /// one PLM pass per level instead of one per key — the difference
    /// between ~10 and ~10 000 atomic RMWs per evaluation. Returns hit
    /// Cells and the missing keys, preserving key order within each group.
    pub fn get_many(&self, keys: &[CellKey]) -> (Vec<Cell>, Vec<CellKey>) {
        let now = self.clock.now();
        let tau = self.config.decay_tau;
        let mut hits = Vec::with_capacity(keys.len());
        let mut missing = Vec::new();
        // Group contiguous runs by level (queries are single-level, so this
        // loop body usually runs once).
        let mut i = 0;
        while i < keys.len() {
            let level = keys[i].level();
            let mut j = i;
            while j < keys.len() && keys[j].level() == level {
                j += 1;
            }
            let group = &keys[i..j];
            let (mut fresh_n, mut stale_n, mut absent_n) = (0u64, 0u64, 0u64);
            {
                let plm = self.plm.read();
                let map = self.levels[level.index() as usize].read();
                for key in group {
                    match map.get(key) {
                        Some(entry) if !plm.is_stale(key) => {
                            entry.fresh.bump(self.config.f_inc, now, tau);
                            hits.push(entry.cell.clone());
                            fresh_n += 1;
                        }
                        Some(_) => {
                            missing.push(*key);
                            stale_n += 1;
                        }
                        None => {
                            missing.push(*key);
                            absent_n += 1;
                        }
                    }
                }
            }
            self.stats.plm_outcome(fresh_n, stale_n, absent_n);
            let lstats = self.stats.level(level);
            lstats.hits.fetch_add(fresh_n, Ordering::Relaxed);
            lstats
                .misses
                .fetch_add(stale_n + absent_n, Ordering::Relaxed);
            i = j;
        }
        self.stats
            .hits
            .fetch_add(hits.len() as u64, Ordering::Relaxed);
        self.stats
            .misses
            .fetch_add(missing.len() as u64, Ordering::Relaxed);
        (hits, missing)
    }

    /// Lookup without touching freshness or counters (replication snapshots,
    /// tests).
    pub fn peek(&self, key: &CellKey) -> Option<Cell> {
        let map = self.level_map(key).read();
        map.get(key).map(|e| e.cell.clone())
    }

    /// Effective freshness of a cached Cell at the current tick.
    pub fn freshness_of(&self, key: &CellKey) -> Option<f64> {
        let map = self.level_map(key).read();
        map.get(key)
            .map(|e| e.fresh.effective(self.clock.now(), self.config.decay_tau))
    }

    /// Insert (or replace) one Cell with initial freshness `f_inc`.
    /// Triggers replacement when the budget is exceeded.
    pub fn insert(&self, cell: Cell) {
        self.insert_with_freshness(cell, self.config.f_inc);
        self.evict_if_needed();
    }

    /// Bulk insert — the post-fetch population path ("the population of
    /// Cells fetched from disk to memory", §VIII-C2). One eviction pass at
    /// the end instead of per Cell.
    pub fn insert_many(&self, cells: impl IntoIterator<Item = Cell>) {
        for cell in cells {
            self.insert_with_freshness(cell, self.config.f_inc);
        }
        self.evict_if_needed();
    }

    /// Insert preserving an explicit freshness score (guest-graph
    /// replication ships scores along with Cells).
    pub fn insert_with_freshness(&self, cell: Cell, score: f64) {
        let key = cell.key;
        let now = self.clock.now();
        let mut map = self.level_map(&key).write();
        let replaced = map
            .insert(
                key,
                Entry {
                    cell,
                    fresh: Freshness::new(score, now),
                },
            )
            .is_some();
        drop(map);
        if !replaced {
            self.count.fetch_add(1, Ordering::Relaxed);
        }
        self.stats.insertions.fetch_add(1, Ordering::Relaxed);
        self.stats
            .level(key.level())
            .insertions
            .fetch_add(1, Ordering::Relaxed);
        self.plm.write().mark_cached(&key);
    }

    /// Try to *derive* a missing coarse Cell by merging cached children
    /// (§V-B condition (b): disk is only touched when the value cannot be
    /// computed "from the existing cached values"). Spatial children are
    /// tried first (fixed fan-out 32), then temporal children. The derived
    /// Cell is inserted so later queries hit directly.
    pub fn try_derive(&self, key: &CellKey) -> Option<Cell> {
        let derived = self
            .try_derive_from(key, key.spatial_children()?)
            .or_else(|| self.try_derive_from(key, key.temporal_children()?))?;
        self.stats.derived.fetch_add(1, Ordering::Relaxed);
        self.insert(derived.clone());
        Some(derived)
    }

    fn try_derive_from(&self, key: &CellKey, children: Vec<CellKey>) -> Option<Cell> {
        {
            let plm = self.plm.read();
            if !children.iter().all(|c| plm.is_fresh(c)) {
                return None;
            }
        }
        // All children are one level below `key`, same map.
        let map = self.level_map(&children[0]).read();
        let mut cells = Vec::with_capacity(children.len());
        for c in &children {
            // A child may have been evicted between the PLM check and here;
            // bail out rather than derive from an incomplete set.
            cells.push(&map.get(c)?.cell);
        }
        let n_attrs = cells[0].summary.n_attrs();
        Some(Cell::from_children(*key, n_attrs, cells))
    }

    /// Region-level freshness update (§V-C2): every Cell of the accessed
    /// region gets `+f_inc`; every cached Cell in the region's immediate
    /// spatiotemporal neighborhood (lateral neighbors and parents, the grey
    /// cells of Fig. 3) gets `+f_inc * neighbor_fraction`. Cells of the
    /// region itself already got their direct bump in [`StashGraph::get`];
    /// this call boosts the ones that were just inserted and disperses to
    /// the neighborhood.
    pub fn touch_region(&self, region: &[CellKey]) {
        if region.is_empty() || self.config.neighbor_fraction == 0.0 {
            return;
        }
        let now = self.clock.now();
        let tau = self.config.decay_tau;
        let region_set: FxHashSet<&CellKey> = region.iter().collect();
        // Neighborhood = (lateral ∪ parents) \ region, grouped by level so
        // each level's lock is taken exactly once below.
        let mut by_level: FxHashMap<Level, FxHashSet<CellKey>> = FxHashMap::default();
        for key in region {
            for n in key.lateral_neighbors() {
                if !region_set.contains(&n) {
                    by_level.entry(n.level()).or_default().insert(n);
                }
            }
            for p in key.parents() {
                by_level.entry(p.level()).or_default().insert(p);
            }
        }
        let frac = self.config.f_inc * self.config.neighbor_fraction;
        for (level, neighbors) in by_level {
            let mut dispersed = 0u64;
            {
                let map = self.levels[level.index() as usize].read();
                for n in &neighbors {
                    if let Some(e) = map.get(n) {
                        e.fresh.bump(frac, now, tau);
                        dispersed += 1;
                    }
                }
            }
            if dispersed > 0 {
                self.stats
                    .dispersals
                    .fetch_add(dispersed, Ordering::Relaxed);
                self.stats
                    .level(level)
                    .dispersals
                    .fetch_add(dispersed, Ordering::Relaxed);
            }
        }
    }

    /// Replacement (§V-C): evict lowest-freshness Cells until the count is
    /// at the safe limit. Stale Cells rank below everything (their data is
    /// wrong anyway).
    pub fn evict_if_needed(&self) -> usize {
        if self.len() <= self.config.max_cells {
            return 0;
        }
        let target = self.config.safe_limit();
        self.stats.evict_passes.fetch_add(1, Ordering::Relaxed);
        let now = self.clock.now();
        let tau = self.config.decay_tau;
        // Score every cached cell. Eviction is rare and O(n log n) here;
        // the paper accepts a full replacement pass on threshold breach.
        let mut scored: Vec<(f64, CellKey)> = Vec::with_capacity(self.len());
        {
            let plm = self.plm.read();
            for level in &self.levels {
                let map = level.read();
                for (key, entry) in map.iter() {
                    let mut score = entry.fresh.effective(now, tau);
                    if plm.is_stale(key) {
                        score = -1.0; // stale cells leave first
                    }
                    scored.push((score, *key));
                }
            }
        }
        let excess = scored.len().saturating_sub(target);
        if excess == 0 {
            return 0;
        }
        scored.select_nth_unstable_by(excess - 1, |a, b| a.0.total_cmp(&b.0));
        let victims: Vec<CellKey> = scored[..excess].iter().map(|(_, k)| *k).collect();
        self.remove_many(&victims);
        self.stats
            .evictions
            .fetch_add(victims.len() as u64, Ordering::Relaxed);
        for v in &victims {
            self.stats
                .level(v.level())
                .evictions
                .fetch_add(1, Ordering::Relaxed);
        }
        victims.len()
    }

    /// Remove specific Cells (used by eviction and guest purging).
    pub fn remove_many(&self, keys: &[CellKey]) {
        let mut plm = self.plm.write();
        for key in keys {
            let mut map = self.level_map(key).write();
            if map.remove(key).is_some() {
                self.count.fetch_sub(1, Ordering::Relaxed);
                plm.mark_evicted(key);
            }
        }
    }

    /// Mark cached Cells intersecting an updated storage region as stale
    /// (real-time ingest support, §IV-D). Returns how many were marked.
    pub fn invalidate_region(&self, bbox: &BBox, time: &TimeRange) -> usize {
        let keys = self.keys_intersecting(bbox, time);
        let mut plm = self.plm.write();
        for k in &keys {
            plm.mark_stale(k);
        }
        keys.len()
    }

    /// Delta-patch one cached Cell: merge `delta` (the summary of freshly
    /// ingested rows) into the resident summary. Patching applies only to
    /// *fresh* Cells — the summary monoid makes the merge exact, so the
    /// Cell stays fresh and the PLM is untouched. Stale or absent Cells
    /// return `false`: the caller marks them stale (or leaves them so) and
    /// lets the next query refetch from storage. Returns whether the
    /// resident Cell was patched.
    pub fn patch(&self, key: &CellKey, delta: &CellSummary) -> bool {
        let plm = self.plm.read();
        if !plm.is_fresh(key) {
            return false;
        }
        let mut map = self.level_map(key).write();
        match map.get_mut(key) {
            Some(entry) => {
                entry.cell.summary.merge(delta);
                true
            }
            // PLM said cached but the entry is gone (racing eviction):
            // nothing resident to patch.
            None => false,
        }
    }

    /// Mark an explicit set of keys stale in the PLM (ingest invalidation:
    /// Cells affected by an append that cannot be patched in place).
    /// Absent keys are ignored. Returns how many were marked.
    pub fn mark_stale_keys(&self, keys: &[CellKey]) -> usize {
        let mut plm = self.plm.write();
        let mut marked = 0;
        for k in keys {
            if plm.mark_stale(k) {
                marked += 1;
            }
        }
        marked
    }

    /// All cached keys whose Cell bounds intersect the given region.
    pub fn keys_intersecting(&self, bbox: &BBox, time: &TimeRange) -> Vec<CellKey> {
        let mut out = Vec::new();
        for level in &self.levels {
            let map = level.read();
            for key in map.keys() {
                if key.geohash.bbox().intersects(bbox) && key.time.range().intersects(time) {
                    out.push(*key);
                }
            }
        }
        out
    }

    /// `(key, effective freshness)` of every Cell at one level — input to
    /// the Clique finder (§VII-B2).
    pub fn level_scores(&self, level: Level) -> Vec<(CellKey, f64)> {
        let now = self.clock.now();
        let tau = self.config.decay_tau;
        let map = self.levels[level.index() as usize].read();
        map.iter()
            .map(|(k, e)| (*k, e.fresh.effective(now, tau)))
            .collect()
    }

    /// Snapshot Cells with their freshness scores for replication.
    pub fn snapshot(&self, keys: &[CellKey]) -> Vec<(Cell, f64)> {
        let now = self.clock.now();
        let tau = self.config.decay_tau;
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            let map = self.level_map(key).read();
            if let Some(e) = map.get(key) {
                out.push((e.cell.clone(), e.fresh.effective(now, tau)));
            }
        }
        out
    }

    /// Drop every Cell (tests, node resets).
    pub fn clear(&self) {
        let mut plm = self.plm.write();
        for level in &self.levels {
            let mut map = level.write();
            for key in map.keys() {
                plm.mark_evicted(key);
            }
            map.clear();
        }
        *plm = Plm::new();
        self.count.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use stash_geo::{Geohash, TemporalRes, TimeBin};
    use std::str::FromStr;

    fn key(gh: &str, res: TemporalRes) -> CellKey {
        CellKey::new(
            Geohash::from_str(gh).unwrap(),
            TimeBin::containing(res, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        )
    }

    fn cell(gh: &str, res: TemporalRes, value: f64) -> Cell {
        let mut c = Cell::empty(key(gh, res), 1);
        c.summary.push_row(&[value]);
        c
    }

    fn graph(config: StashConfig) -> StashGraph {
        StashGraph::new(config, Arc::new(LogicalClock::new()))
    }

    fn small_graph() -> StashGraph {
        graph(StashConfig {
            max_cells: 1000,
            ..Default::default()
        })
    }

    #[test]
    fn insert_get_roundtrip() {
        let g = small_graph();
        let c = cell("9q8y", TemporalRes::Day, 21.5);
        g.insert(c.clone());
        assert_eq!(g.len(), 1);
        assert!(g.contains_fresh(&c.key));
        let got = g.get(&c.key).unwrap();
        assert_eq!(got.summary, c.summary);
        assert_eq!(g.stats().hits.load(Ordering::Relaxed), 1);
        assert!(g.get(&key("9q8z", TemporalRes::Day)).is_none());
        assert_eq!(g.stats().misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reinsert_does_not_double_count() {
        let g = small_graph();
        g.insert(cell("9q8y", TemporalRes::Day, 1.0));
        g.insert(cell("9q8y", TemporalRes::Day, 2.0));
        assert_eq!(g.len(), 1);
        // Latest summary wins.
        let got = g.peek(&key("9q8y", TemporalRes::Day)).unwrap();
        assert_eq!(got.summary.attr(0).unwrap().max(), Some(2.0));
    }

    #[test]
    fn patch_merges_delta_into_fresh_cell_only() {
        let g = small_graph();
        let k = key("9q8y", TemporalRes::Day);
        g.insert(cell("9q8y", TemporalRes::Day, 10.0));
        // Delta = one freshly ingested row.
        let mut delta = CellSummary::empty(1);
        delta.push_row(&[30.0]);
        assert!(g.patch(&k, &delta));
        let got = g.peek(&k).unwrap();
        assert_eq!(got.summary.count(), 2);
        assert_eq!(got.summary.attr(0).unwrap().max(), Some(30.0));
        // Patching keeps the cell fresh: no refetch needed.
        assert!(g.contains_fresh(&k));

        // A stale cell must not be patched (its base is out of date).
        g.mark_stale_keys(&[k]);
        assert!(!g.patch(&k, &delta));
        assert_eq!(g.peek(&k).unwrap().summary.count(), 2, "unchanged");

        // Absent cells cannot be patched either.
        let absent = key("9q8z", TemporalRes::Day);
        assert!(!g.patch(&absent, &delta));
    }

    #[test]
    fn mark_stale_keys_counts_transitions_and_skips_absent() {
        let g = small_graph();
        let a = key("9q8y", TemporalRes::Day);
        let b = key("9q8z", TemporalRes::Day);
        let absent = key("9q8v", TemporalRes::Day);
        g.insert(cell("9q8y", TemporalRes::Day, 1.0));
        g.insert(cell("9q8z", TemporalRes::Day, 2.0));
        assert_eq!(g.mark_stale_keys(&[a, b, absent]), 2);
        assert!(!g.contains_fresh(&a));
        assert!(!g.contains_fresh(&b));
        // Idempotent: already-stale cells are not transitions.
        assert_eq!(g.mark_stale_keys(&[a, b, absent]), 0);
        // A stale cell refetched (re-inserted) is fresh and patchable again.
        g.insert(cell("9q8y", TemporalRes::Day, 5.0));
        let mut delta = CellSummary::empty(1);
        delta.push_row(&[7.0]);
        assert!(g.patch(&a, &delta));
    }

    #[test]
    fn missing_of_reports_gaps() {
        let g = small_graph();
        let a = key("9q8y", TemporalRes::Day);
        let b = key("9q8z", TemporalRes::Day);
        g.insert(cell("9q8y", TemporalRes::Day, 1.0));
        assert_eq!(g.missing_of(&[a, b]), vec![b]);
    }

    #[test]
    fn derive_from_complete_spatial_children() {
        let g = small_graph();
        let parent = key("9q8", TemporalRes::Day);
        for (i, ck) in parent.spatial_children().unwrap().into_iter().enumerate() {
            let mut c = Cell::empty(ck, 1);
            c.summary.push_row(&[i as f64]);
            g.insert(c);
        }
        let derived = g.try_derive(&parent).expect("children complete");
        assert_eq!(derived.summary.count(), 32);
        assert_eq!(derived.summary.attr(0).unwrap().min(), Some(0.0));
        assert_eq!(derived.summary.attr(0).unwrap().max(), Some(31.0));
        // Derived cell is now cached for direct hits.
        assert!(g.contains_fresh(&parent));
        assert_eq!(g.stats().derived.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn derive_fails_on_incomplete_children() {
        let g = small_graph();
        let parent = key("9q8", TemporalRes::Day);
        let children = parent.spatial_children().unwrap();
        for ck in children.iter().take(31) {
            g.insert(Cell::empty(*ck, 1));
        }
        assert!(
            g.try_derive(&parent).is_none(),
            "31/32 children must not derive"
        );
    }

    #[test]
    fn derive_from_temporal_children() {
        let g = small_graph();
        let day = key("9q8y", TemporalRes::Day);
        for ck in day.temporal_children().unwrap() {
            let mut c = Cell::empty(ck, 1);
            c.summary.push_row(&[1.0]);
            g.insert(c);
        }
        let derived = g.try_derive(&day).expect("24 hour children present");
        assert_eq!(derived.summary.count(), 24);
    }

    #[test]
    fn eviction_keeps_freshest() {
        let clock = Arc::new(LogicalClock::new());
        let g = StashGraph::new(
            StashConfig {
                max_cells: 64,
                safe_fraction: 0.5,
                decay_tau: 4.0,
                ..Default::default()
            },
            Arc::clone(&clock),
        );
        // Insert 64 cells at tick 0 (fills to the limit).
        let parent = key("9q", TemporalRes::Day);
        let children: Vec<CellKey> = parent.spatial_children().unwrap();
        let grand: Vec<CellKey> = children[0].spatial_children().unwrap();
        for ck in children.iter().chain(grand.iter()) {
            g.insert(Cell::empty(*ck, 1));
        }
        assert_eq!(g.len(), 64);
        // Age everything, then touch the grandchildren to refresh them.
        clock.advance_by(50);
        for ck in &grand {
            g.get(ck);
        }
        // One more insert breaches the budget and triggers replacement.
        g.insert(Cell::empty(key("9r", TemporalRes::Day), 1));
        assert!(g.len() <= 32, "evicted to safe limit, got {}", g.len());
        // The recently-touched grandchildren survived; the stale children
        // are gone.
        let surviving_grand = grand.iter().filter(|k| g.contains_fresh(k)).count();
        let surviving_children = children.iter().filter(|k| g.contains_fresh(k)).count();
        assert!(
            surviving_grand >= 30,
            "fresh cells evicted: {surviving_grand}/32"
        );
        assert_eq!(surviving_children, 0, "stale cells survived eviction");
    }

    #[test]
    fn stale_cells_evicted_first() {
        let g = graph(StashConfig {
            max_cells: 32,
            safe_fraction: 0.5,
            ..Default::default()
        });
        let parent = key("9q", TemporalRes::Day);
        let children: Vec<CellKey> = parent.spatial_children().unwrap();
        for ck in &children {
            g.insert(Cell::empty(*ck, 1));
        }
        // Invalidate half the region.
        let west = children[0].geohash.bbox();
        let mut region = west;
        for ck in children.iter().take(16) {
            region = BBox {
                min_lat: region.min_lat.min(ck.geohash.bbox().min_lat),
                max_lat: region.max_lat.max(ck.geohash.bbox().max_lat),
                min_lon: region.min_lon.min(ck.geohash.bbox().min_lon),
                max_lon: region.max_lon.max(ck.geohash.bbox().max_lon),
            };
        }
        let marked = g.invalidate_region(&region, &parent.time.range());
        assert!(marked >= 16);
        g.insert(Cell::empty(key("9r", TemporalRes::Day), 1));
        // After replacement, no stale cell should remain while fresh ones
        // were evicted unnecessarily.
        let plm_stale: Vec<&CellKey> = children.iter().filter(|k| g.contains_fresh(k)).collect();
        let _ = plm_stale;
        let fresh_remaining = children.iter().filter(|k| g.contains_fresh(k)).count();
        assert!(fresh_remaining > 0, "some fresh cells must survive");
    }

    #[test]
    fn touch_region_disperses_to_neighbors() {
        let g = small_graph();
        // A 3x3 patch of cells: center region = middle cell, neighbors cached.
        let center = key("9q8y7", TemporalRes::Day);
        g.insert(Cell::empty(center, 1));
        for n in center.lateral_neighbors() {
            g.insert(Cell::empty(n, 1));
        }
        let before: Vec<f64> = center
            .lateral_neighbors()
            .iter()
            .map(|n| g.freshness_of(n).unwrap())
            .collect();
        g.touch_region(&[center]);
        for (n, b) in center.lateral_neighbors().iter().zip(before) {
            let after = g.freshness_of(n).unwrap();
            assert!(after > b, "neighbor {n} not boosted: {b} -> {after}");
            // Neighbor boost is the configured fraction of f_inc.
            assert!((after - b - g.config().f_inc * g.config().neighbor_fraction).abs() < 1e-9);
        }
    }

    #[test]
    fn touch_region_does_not_create_cells() {
        let g = small_graph();
        let center = key("9q8y7", TemporalRes::Day);
        g.insert(Cell::empty(center, 1));
        g.touch_region(&[center]);
        // Only the center is cached; dispersion must not materialize ghosts.
        assert_eq!(g.len(), 1);
    }

    #[test]
    fn invalidation_marks_stale_and_get_misses() {
        let g = small_graph();
        let c = cell("9q8y", TemporalRes::Day, 5.0);
        g.insert(c.clone());
        let n = g.invalidate_region(&c.key.geohash.bbox(), &c.key.time.range());
        assert_eq!(n, 1);
        assert!(!g.contains_fresh(&c.key));
        assert!(g.get(&c.key).is_none(), "stale cell served");
        // Recomputation (re-insert) restores freshness.
        g.insert(c.clone());
        assert!(g.contains_fresh(&c.key));
    }

    #[test]
    fn snapshot_carries_freshness() {
        let g = small_graph();
        let c = cell("9q8y", TemporalRes::Day, 1.0);
        g.insert(c.clone());
        g.get(&c.key); // bump
        let snap = g.snapshot(&[c.key, key("9q8z", TemporalRes::Day)]);
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0.key, c.key);
        assert!(snap[0].1 > g.config().f_inc * 0.9);
    }

    #[test]
    fn clear_resets_everything() {
        let g = small_graph();
        g.insert(cell("9q8y", TemporalRes::Day, 1.0));
        g.clear();
        assert!(g.is_empty());
        assert!(!g.contains_fresh(&key("9q8y", TemporalRes::Day)));
    }

    #[test]
    fn level_scores_lists_level_population() {
        let g = small_graph();
        g.insert(cell("9q8y", TemporalRes::Day, 1.0)); // level (4, Day)
        g.insert(cell("9q8", TemporalRes::Day, 1.0)); // level (3, Day)
        let l4 = Level::of(4, TemporalRes::Day).unwrap();
        let scores = g.level_scores(l4);
        assert_eq!(scores.len(), 1);
        assert_eq!(scores[0].0, key("9q8y", TemporalRes::Day));
        assert!(scores[0].1 > 0.0);
    }

    #[test]
    fn stats_break_down_per_level_and_plm_outcome() {
        let g = small_graph();
        let l4 = Level::of(4, TemporalRes::Day).unwrap();
        let l3 = Level::of(3, TemporalRes::Day).unwrap();
        let c = cell("9q8y", TemporalRes::Day, 1.0);
        g.insert(c.clone()); // level (4, Day)
        g.insert(cell("9q8", TemporalRes::Day, 1.0)); // level (3, Day)
        assert_eq!(g.stats().level(l4).insertions.load(Ordering::Relaxed), 1);
        assert_eq!(g.stats().level(l3).insertions.load(Ordering::Relaxed), 1);

        g.get(&c.key); // fresh hit
        g.get(&key("9q8z", TemporalRes::Day)); // absent
        g.invalidate_region(&c.key.geohash.bbox(), &c.key.time.range());
        g.get(&c.key); // stale
        assert_eq!(g.stats().level(l4).hits.load(Ordering::Relaxed), 1);
        assert_eq!(g.stats().level(l4).misses.load(Ordering::Relaxed), 2);
        assert_eq!(g.stats().level(l3).hits.load(Ordering::Relaxed), 0);
        assert_eq!(g.stats().plm_fresh.load(Ordering::Relaxed), 1);
        assert_eq!(g.stats().plm_absent.load(Ordering::Relaxed), 1);
        assert!(g.stats().plm_stale.load(Ordering::Relaxed) >= 1);

        // Batched lookups classify the same way.
        let (hits, missing) = g.get_many(&[c.key, key("9q8z", TemporalRes::Day)]);
        assert_eq!((hits.len(), missing.len()), (0, 2));
        assert_eq!(g.stats().plm_absent.load(Ordering::Relaxed), 2);
        assert!(g.stats().plm_stale.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn dispersal_and_eviction_passes_are_counted() {
        let g = small_graph();
        let center = key("9q8y7", TemporalRes::Day);
        g.insert(Cell::empty(center, 1));
        for n in center.lateral_neighbors() {
            g.insert(Cell::empty(n, 1));
        }
        assert_eq!(g.stats().dispersals.load(Ordering::Relaxed), 0);
        g.touch_region(&[center]);
        let dispersed = g.stats().dispersals.load(Ordering::Relaxed);
        assert_eq!(dispersed, center.lateral_neighbors().len() as u64);
        assert_eq!(
            g.stats()
                .level(center.level())
                .dispersals
                .load(Ordering::Relaxed),
            dispersed
        );

        let g = graph(StashConfig {
            max_cells: 32,
            safe_fraction: 0.5,
            ..Default::default()
        });
        for ck in key("9q", TemporalRes::Day).spatial_children().unwrap() {
            g.insert(Cell::empty(ck, 1));
        }
        assert_eq!(g.stats().evict_passes.load(Ordering::Relaxed), 0);
        g.insert(Cell::empty(key("9r", TemporalRes::Day), 1));
        assert_eq!(g.stats().evict_passes.load(Ordering::Relaxed), 1);
        let evicted = g.stats().evictions.load(Ordering::Relaxed);
        assert!(evicted > 0);
        // All victims are the res-3 children except possibly the lone res-2
        // cell; the per-level split must cover the total.
        let l3 = g.stats().level(Level::of(3, TemporalRes::Day).unwrap());
        let l2 = g.stats().level(Level::of(2, TemporalRes::Day).unwrap());
        let (e3, e2) = (
            l3.evictions.load(Ordering::Relaxed),
            l2.evictions.load(Ordering::Relaxed),
        );
        assert!(
            e3 >= evicted - 1,
            "res-3 victims under-counted: {e3}/{evicted}"
        );
        assert_eq!(e3 + e2, evicted);
    }

    #[test]
    fn concurrent_inserts_and_gets() {
        let g = Arc::new(graph(StashConfig {
            max_cells: 100_000,
            ..Default::default()
        }));
        let parent = key("9q", TemporalRes::Day);
        let children: Vec<CellKey> = parent.spatial_children().unwrap();
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let g = Arc::clone(&g);
                let children = children.clone();
                std::thread::spawn(move || {
                    for i in 0..200 {
                        let ck = children[(t * 200 + i) % 32];
                        let mut c = Cell::empty(ck, 1);
                        c.summary.push_row(&[i as f64]);
                        g.insert(c);
                        g.get(&ck);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(g.len(), 32);
        for ck in &children {
            assert!(g.contains_fresh(ck));
        }
    }
}
