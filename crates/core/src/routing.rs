//! Routing tables and guest-graph bookkeeping for Clique Handoff (§VII).
//!
//! After a successful Replication Response, the hotspotted node records
//! which Cliques live at which helper "along with a bitmap of the actual
//! Cells contained in the Clique" (§VII-B5). Under hotspot, "a user query
//! is first checked against entries in the routing table and if the
//! spatiotemporal region of the user query is found to be fully replicated
//! at another helper node, the user request is probabilistically rerouted"
//! (§VII-C). Helpers track their guest Cells' provenance and last use so
//! unrequested entries can be purged after the configured TTL (§VII-D).

use crate::bitmap::SparseBitmap;
use stash_model::CellKey;
use std::collections::HashMap;

/// Outcome of a routing-table check for one query's keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDecision {
    /// Serve locally: no helper fully covers the query.
    Local,
    /// Every key is replicated at this helper; the caller may reroute
    /// (subject to the configured probability).
    Covered { helper: usize },
}

struct Route {
    helper: usize,
    cells: SparseBitmap,
    created_tick: u64,
}

/// The hotspotted node's table of replicated Cliques.
#[derive(Default)]
pub struct RoutingTable {
    routes: HashMap<CellKey, Route>,
}

impl RoutingTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a successful replication of `members` (a Clique rooted at
    /// `root`) to `helper`.
    pub fn insert(&mut self, root: CellKey, helper: usize, members: &[CellKey], tick: u64) {
        let cells: SparseBitmap = members.iter().map(|k| k.dense_id()).collect();
        self.routes.insert(
            root,
            Route {
                helper,
                cells,
                created_tick: tick,
            },
        );
    }

    /// Number of live routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Is this exact Cell replicated anywhere?
    pub fn covers(&self, key: &CellKey) -> Option<usize> {
        let id = key.dense_id();
        self.routes
            .values()
            .find(|r| r.cells.contains(id))
            .map(|r| r.helper)
    }

    /// The §VII-C check: a query may be rerouted only when *all* its keys
    /// are replicated at *one* helper ("fully replicated at another helper
    /// node").
    pub fn decide(&self, keys: &[CellKey]) -> RouteDecision {
        if keys.is_empty() || self.routes.is_empty() {
            return RouteDecision::Local;
        }
        let mut helper: Option<usize> = None;
        for key in keys {
            match self.covers(key) {
                Some(h) => match helper {
                    None => helper = Some(h),
                    Some(prev) if prev == h => {}
                    Some(_) => return RouteDecision::Local, // split across helpers
                },
                None => return RouteDecision::Local,
            }
        }
        RouteDecision::Covered {
            helper: helper.expect("non-empty keys all covered"),
        }
    }

    /// Drop routes older than `ttl` ticks ("stale routing-table entries
    /// also get purged … signifying the retreat of hotspot", §VII-D).
    /// Returns how many were dropped.
    pub fn purge_expired(&mut self, now: u64, ttl: u64) -> usize {
        let before = self.routes.len();
        self.routes
            .retain(|_, r| now.saturating_sub(r.created_tick) < ttl);
        before - self.routes.len()
    }

    /// Drop every route pointing at a helper (e.g. helper failure).
    pub fn drop_helper(&mut self, helper: usize) -> usize {
        let before = self.routes.len();
        self.routes.retain(|_, r| r.helper != helper);
        before - self.routes.len()
    }
}

/// Helper-side provenance of guest Cells.
#[derive(Default)]
pub struct GuestBook {
    entries: HashMap<CellKey, GuestMeta>,
}

struct GuestMeta {
    /// The hotspotted node that shipped this Cell.
    src_node: usize,
    last_used_tick: u64,
}

impl GuestBook {
    pub fn new() -> Self {
        Self::default()
    }

    /// Can `n` more guest Cells fit under `max` capacity? (The Distress
    /// Request check: "its guest tree can accommodate the incoming Cells",
    /// §VII-B3.)
    pub fn can_accommodate(&self, n: usize, max: usize) -> bool {
        self.entries.len().saturating_add(n) <= max
    }

    /// Record replicated Cells arriving from `src_node`.
    pub fn record(&mut self, keys: impl IntoIterator<Item = CellKey>, src_node: usize, tick: u64) {
        for key in keys {
            self.entries.insert(
                key,
                GuestMeta {
                    src_node,
                    last_used_tick: tick,
                },
            );
        }
    }

    /// Refresh last-use on guest hits.
    pub fn touch(&mut self, keys: &[CellKey], tick: u64) {
        for key in keys {
            if let Some(m) = self.entries.get_mut(key) {
                m.last_used_tick = tick;
            }
        }
    }

    /// Guest Cells idle for ≥ `ttl` ticks; the caller removes them from the
    /// guest graph and then calls [`GuestBook::forget`].
    pub fn expired(&self, now: u64, ttl: u64) -> Vec<CellKey> {
        self.entries
            .iter()
            .filter(|(_, m)| now.saturating_sub(m.last_used_tick) >= ttl)
            .map(|(k, _)| *k)
            .collect()
    }

    /// Remove bookkeeping for purged Cells.
    pub fn forget(&mut self, keys: &[CellKey]) {
        for key in keys {
            self.entries.remove(key);
        }
    }

    /// Which node shipped this guest Cell?
    pub fn source_of(&self, key: &CellKey) -> Option<usize> {
        self.entries.get(key).map(|m| m.src_node)
    }

    /// Does this helper still host any of these Cells? A rerouted subquery
    /// that matches nothing (the guests were purged, or a stale routing
    /// table pointed here) must be *refused* so the owner serves it — a
    /// helper silently evaluating foreign Cells would accrete data it was
    /// never handed.
    pub fn hosts_any(&self, keys: &[CellKey]) -> bool {
        keys.iter().any(|k| self.entries.contains_key(k))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use stash_geo::{Geohash, TemporalRes, TimeBin};
    use std::str::FromStr;

    fn key(gh: &str) -> CellKey {
        CellKey::new(
            Geohash::from_str(gh).unwrap(),
            TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        )
    }

    fn clique(root: &str) -> (CellKey, Vec<CellKey>) {
        let r = key(root);
        (r, r.spatial_children().unwrap())
    }

    #[test]
    fn fully_covered_query_routes_to_helper() {
        let mut rt = RoutingTable::new();
        let (root, members) = clique("9q8");
        rt.insert(root, 3, &members, 0);
        assert_eq!(
            rt.decide(&members[..5]),
            RouteDecision::Covered { helper: 3 }
        );
        assert_eq!(rt.decide(&members), RouteDecision::Covered { helper: 3 });
    }

    #[test]
    fn partially_covered_query_stays_local() {
        let mut rt = RoutingTable::new();
        let (root, members) = clique("9q8");
        rt.insert(root, 3, &members, 0);
        let outsider = key("9r2x");
        let mut keys = members[..3].to_vec();
        keys.push(outsider);
        assert_eq!(rt.decide(&keys), RouteDecision::Local);
        assert_eq!(rt.covers(&outsider), None);
    }

    #[test]
    fn split_across_helpers_stays_local() {
        let mut rt = RoutingTable::new();
        let (r1, m1) = clique("9q8");
        let (r2, m2) = clique("9r2");
        rt.insert(r1, 3, &m1, 0);
        rt.insert(r2, 5, &m2, 0);
        let keys = vec![m1[0], m2[0]];
        assert_eq!(rt.decide(&keys), RouteDecision::Local);
        // But each side alone is covered.
        assert_eq!(rt.decide(&m1[..2]), RouteDecision::Covered { helper: 3 });
        assert_eq!(rt.decide(&m2[..2]), RouteDecision::Covered { helper: 5 });
    }

    #[test]
    fn empty_inputs_are_local() {
        let rt = RoutingTable::new();
        assert_eq!(rt.decide(&[]), RouteDecision::Local);
        assert_eq!(rt.decide(&[key("9q8y")]), RouteDecision::Local);
    }

    #[test]
    fn ttl_purges_stale_routes() {
        let mut rt = RoutingTable::new();
        let (root, members) = clique("9q8");
        rt.insert(root, 3, &members, 100);
        assert_eq!(rt.purge_expired(150, 100), 0);
        assert_eq!(rt.len(), 1);
        assert_eq!(rt.purge_expired(200, 100), 1);
        assert!(rt.is_empty());
        assert_eq!(rt.decide(&members[..2]), RouteDecision::Local);
    }

    #[test]
    fn drop_helper_removes_its_routes() {
        let mut rt = RoutingTable::new();
        let (r1, m1) = clique("9q8");
        let (r2, m2) = clique("9r2");
        rt.insert(r1, 3, &m1, 0);
        rt.insert(r2, 5, &m2, 0);
        assert_eq!(rt.drop_helper(3), 1);
        assert_eq!(rt.decide(&m1[..2]), RouteDecision::Local);
        assert_eq!(rt.decide(&m2[..2]), RouteDecision::Covered { helper: 5 });
    }

    #[test]
    fn guest_book_knows_its_guests() {
        let mut gb = GuestBook::new();
        let (_, members) = clique("9q8");
        assert!(!gb.hosts_any(&members));
        gb.record(members[..4].iter().copied(), 2, 0);
        assert!(gb.hosts_any(&members));
        assert!(gb.hosts_any(&members[3..5]), "one known key is enough");
        assert!(!gb.hosts_any(&members[4..]));
        gb.forget(&members[..4]);
        assert!(!gb.hosts_any(&members));
    }

    #[test]
    fn guest_book_capacity_check() {
        let mut gb = GuestBook::new();
        assert!(gb.can_accommodate(10, 10));
        assert!(!gb.can_accommodate(11, 10));
        let (_, members) = clique("9q8");
        gb.record(members.iter().copied(), 2, 0);
        assert_eq!(gb.len(), 32);
        assert!(!gb.can_accommodate(1, 32));
        assert!(gb.can_accommodate(1, 33));
    }

    #[test]
    fn guest_ttl_and_touch() {
        let mut gb = GuestBook::new();
        let (_, members) = clique("9q8");
        gb.record(members.iter().copied(), 2, 0);
        // Touch half at tick 50.
        gb.touch(&members[..16], 50);
        let expired = gb.expired(60, 20);
        assert_eq!(expired.len(), 16, "untouched half expires");
        for k in &expired {
            assert!(members[16..].contains(k));
        }
        gb.forget(&expired);
        assert_eq!(gb.len(), 16);
        assert!(gb.expired(60, 20).is_empty());
    }

    #[test]
    fn guest_provenance() {
        let mut gb = GuestBook::new();
        let (_, m1) = clique("9q8");
        let (_, m2) = clique("9r2");
        gb.record(m1.iter().copied(), 2, 0);
        gb.record(m2.iter().copied(), 7, 0);
        assert_eq!(gb.source_of(&m1[0]), Some(2));
        assert_eq!(gb.source_of(&m2[0]), Some(7));
        assert_eq!(gb.source_of(&key("gcpv")), None);
    }
}
