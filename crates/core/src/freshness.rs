//! The freshness score driving Cell replacement (§V-C1).
//!
//! "*Freshness* is calculated as the product of the number of accesses to a
//! Cell (updated every time it gets accessed), and a time decay function.
//! Hence, both frequency and recency of access are contributors."
//!
//! We maintain the score incrementally: on every bump at tick `t`, the
//! stored score is first decayed by `exp(-(t - last)/τ)` and the increment
//! added. Between bumps the *effective* score continues to decay, so two
//! Cells are always comparable at the current tick without rewriting every
//! Cell on every clock advance.
//!
//! The score lives in atomics (f64 bits + last tick) so freshness bumps can
//! run under the graph's *read* lock — the hot path of every cache hit.
//! Bumps are lock-free and lose no increments: `fetch_max` on the tick
//! hands exactly one racing bumper each decay interval, which it applies as
//! a CAS-added delta (`score·(factor − 1)`), while every bump CAS-adds its
//! own increment. Same-tick concurrent bumps therefore sum exactly; racing
//! bumps at *different* ticks can at worst leave a just-added increment
//! un-decayed for one interval — a bounded overestimate, never a loss.

use std::sync::atomic::{AtomicU64, Ordering};

/// Incrementally-decayed freshness score of one cached Cell.
#[derive(Debug)]
pub struct Freshness {
    /// f64 bits of the score as of `last_tick`.
    score_bits: AtomicU64,
    last_tick: AtomicU64,
}

impl Freshness {
    /// A new score born at `tick` with initial value `initial`.
    pub fn new(initial: f64, tick: u64) -> Self {
        Freshness {
            score_bits: AtomicU64::new(initial.to_bits()),
            last_tick: AtomicU64::new(tick),
        }
    }

    /// The decayed score as of `tick`.
    pub fn effective(&self, tick: u64, tau: f64) -> f64 {
        let score = f64::from_bits(self.score_bits.load(Ordering::Relaxed));
        let last = self.last_tick.load(Ordering::Relaxed);
        score * decay_factor(tick.saturating_sub(last), tau)
    }

    /// Decay to `tick`, then add `amount`.
    ///
    /// Lock-free: the naive read-modify-write (`effective() + amount` then
    /// `store`) silently dropped concurrent increments — exactly the
    /// hotspot load where freshness drives eviction and Clique selection.
    /// Instead, `fetch_max` on `last_tick` *claims* the decay interval for
    /// exactly one of any set of racing bumpers, and both the claimed decay
    /// and the increment are folded in through a `compare_exchange_weak`
    /// loop, so no bump is ever lost. SeqCst keeps the pre-claim score
    /// snapshot from observing increments that are ordered after the claim.
    pub fn bump(&self, amount: f64, tick: u64, tau: f64) {
        let s0 = f64::from_bits(self.score_bits.load(Ordering::SeqCst));
        let prev = self.last_tick.fetch_max(tick, Ordering::SeqCst);
        let delta = if tick > prev {
            // This bumper alone owns the (prev -> tick) decay.
            s0 * (decay_factor(tick - prev, tau) - 1.0) + amount
        } else {
            amount
        };
        let mut cur = self.score_bits.load(Ordering::SeqCst);
        loop {
            // Clamp: overlapping decay claims at distinct ticks can in
            // theory over-subtract; a freshness score is never negative.
            let new = (f64::from_bits(cur) + delta).max(0.0);
            match self.score_bits.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Tick of the last bump.
    pub fn last_tick(&self) -> u64 {
        self.last_tick.load(Ordering::Relaxed)
    }
}

/// `exp(-Δ/τ)`.
#[inline]
pub fn decay_factor(delta_ticks: u64, tau: f64) -> f64 {
    (-(delta_ticks as f64) / tau).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAU: f64 = 8.0;

    #[test]
    fn fresh_score_is_initial() {
        let f = Freshness::new(2.0, 10);
        assert!((f.effective(10, TAU) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn score_decays_exponentially() {
        let f = Freshness::new(1.0, 0);
        let at_tau = f.effective(8, TAU);
        assert!(
            (at_tau - (-1.0f64).exp()).abs() < 1e-9,
            "1/e at τ, got {at_tau}"
        );
        assert!(f.effective(80, TAU) < 1e-4, "nearly gone at 10τ");
        // Monotone decreasing.
        assert!(f.effective(1, TAU) > f.effective(2, TAU));
    }

    #[test]
    fn bump_combines_frequency_and_recency() {
        // Two cells: A accessed 3 times long ago, B accessed once just now.
        let a = Freshness::new(1.0, 0);
        a.bump(1.0, 1, TAU);
        a.bump(1.0, 2, TAU);
        let b = Freshness::new(1.0, 40);
        // Shortly after tick 40, B's single recent access outranks A's
        // three stale ones.
        assert!(b.effective(41, TAU) > a.effective(41, TAU));
        // But right after A's accesses, A's frequency dominated.
        assert!(a.effective(3, TAU) > 1.0);
    }

    #[test]
    fn bump_decays_before_adding() {
        let f = Freshness::new(4.0, 0);
        f.bump(1.0, 8, TAU); // 4/e + 1
        let expected = 4.0 * (-1.0f64).exp() + 1.0;
        assert!((f.effective(8, TAU) - expected).abs() < 1e-9);
        assert_eq!(f.last_tick(), 8);
    }

    #[test]
    fn clock_regression_is_tolerated() {
        // A bump with an older tick must not catapult the score into the
        // future (saturating subtraction + max on last_tick).
        let f = Freshness::new(1.0, 100);
        f.bump(1.0, 50, TAU);
        assert_eq!(f.last_tick(), 100);
        let e = f.effective(100, TAU);
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn decay_factor_bounds() {
        assert_eq!(decay_factor(0, TAU), 1.0);
        assert!(decay_factor(1, TAU) < 1.0);
        assert!(decay_factor(u64::MAX, TAU) >= 0.0);
    }

    #[test]
    fn concurrent_bumps_keep_score_sane() {
        let f = std::sync::Arc::new(Freshness::new(0.0, 0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = std::sync::Arc::clone(&f);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        f.bump(1.0, 5, TAU);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let score = f.effective(5, TAU);
        // Lost-update regression: every one of the 4 x 1000 same-tick bumps
        // of 1.0 must land. The initial score is 0.0, so the single claimed
        // decay of the 0 -> 5 interval contributes nothing, and the exact
        // score at tick 5 is 4000 — the old read-modify-write dropped
        // increments under contention and came up short.
        assert_eq!(score, 4000.0, "lost {} bumps", 4000.0 - score);
    }
}
