//! The freshness score driving Cell replacement (§V-C1).
//!
//! "*Freshness* is calculated as the product of the number of accesses to a
//! Cell (updated every time it gets accessed), and a time decay function.
//! Hence, both frequency and recency of access are contributors."
//!
//! We maintain the score incrementally: on every bump at tick `t`, the
//! stored score is first decayed by `exp(-(t - last)/τ)` and the increment
//! added. Between bumps the *effective* score continues to decay, so two
//! Cells are always comparable at the current tick without rewriting every
//! Cell on every clock advance.
//!
//! The score lives in atomics (f64 bits + last tick) so freshness bumps can
//! run under the graph's *read* lock — the hot path of every cache hit.
//! Concurrent bumps may race benignly (one increment of several can be
//! lost); freshness is a ranking heuristic, not an invariant, and the paper
//! derives no correctness property from exact counts.

use std::sync::atomic::{AtomicU64, Ordering};

/// Incrementally-decayed freshness score of one cached Cell.
#[derive(Debug)]
pub struct Freshness {
    /// f64 bits of the score as of `last_tick`.
    score_bits: AtomicU64,
    last_tick: AtomicU64,
}

impl Freshness {
    /// A new score born at `tick` with initial value `initial`.
    pub fn new(initial: f64, tick: u64) -> Self {
        Freshness {
            score_bits: AtomicU64::new(initial.to_bits()),
            last_tick: AtomicU64::new(tick),
        }
    }

    /// The decayed score as of `tick`.
    pub fn effective(&self, tick: u64, tau: f64) -> f64 {
        let score = f64::from_bits(self.score_bits.load(Ordering::Relaxed));
        let last = self.last_tick.load(Ordering::Relaxed);
        score * decay_factor(tick.saturating_sub(last), tau)
    }

    /// Decay to `tick`, then add `amount`.
    pub fn bump(&self, amount: f64, tick: u64, tau: f64) {
        let new = self.effective(tick, tau) + amount;
        self.score_bits.store(new.to_bits(), Ordering::Relaxed);
        self.last_tick.store(tick.max(self.last_tick.load(Ordering::Relaxed)), Ordering::Relaxed);
    }

    /// Tick of the last bump.
    pub fn last_tick(&self) -> u64 {
        self.last_tick.load(Ordering::Relaxed)
    }
}

/// `exp(-Δ/τ)`.
#[inline]
pub fn decay_factor(delta_ticks: u64, tau: f64) -> f64 {
    (-(delta_ticks as f64) / tau).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TAU: f64 = 8.0;

    #[test]
    fn fresh_score_is_initial() {
        let f = Freshness::new(2.0, 10);
        assert!((f.effective(10, TAU) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn score_decays_exponentially() {
        let f = Freshness::new(1.0, 0);
        let at_tau = f.effective(8, TAU);
        assert!((at_tau - (-1.0f64).exp()).abs() < 1e-9, "1/e at τ, got {at_tau}");
        assert!(f.effective(80, TAU) < 1e-4, "nearly gone at 10τ");
        // Monotone decreasing.
        assert!(f.effective(1, TAU) > f.effective(2, TAU));
    }

    #[test]
    fn bump_combines_frequency_and_recency() {
        // Two cells: A accessed 3 times long ago, B accessed once just now.
        let a = Freshness::new(1.0, 0);
        a.bump(1.0, 1, TAU);
        a.bump(1.0, 2, TAU);
        let b = Freshness::new(1.0, 40);
        // Shortly after tick 40, B's single recent access outranks A's
        // three stale ones.
        assert!(b.effective(41, TAU) > a.effective(41, TAU));
        // But right after A's accesses, A's frequency dominated.
        assert!(a.effective(3, TAU) > 1.0);
    }

    #[test]
    fn bump_decays_before_adding() {
        let f = Freshness::new(4.0, 0);
        f.bump(1.0, 8, TAU); // 4/e + 1
        let expected = 4.0 * (-1.0f64).exp() + 1.0;
        assert!((f.effective(8, TAU) - expected).abs() < 1e-9);
        assert_eq!(f.last_tick(), 8);
    }

    #[test]
    fn clock_regression_is_tolerated() {
        // A bump with an older tick must not catapult the score into the
        // future (saturating subtraction + max on last_tick).
        let f = Freshness::new(1.0, 100);
        f.bump(1.0, 50, TAU);
        assert_eq!(f.last_tick(), 100);
        let e = f.effective(100, TAU);
        assert!(e.is_finite() && e > 0.0);
    }

    #[test]
    fn decay_factor_bounds() {
        assert_eq!(decay_factor(0, TAU), 1.0);
        assert!(decay_factor(1, TAU) < 1.0);
        assert!(decay_factor(u64::MAX, TAU) >= 0.0);
    }

    #[test]
    fn concurrent_bumps_keep_score_sane() {
        let f = std::sync::Arc::new(Freshness::new(0.0, 0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let f = std::sync::Arc::clone(&f);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        f.bump(1.0, 5, TAU);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let score = f.effective(5, TAU);
        // Races may drop increments but never corrupt: score is positive,
        // finite, and bounded by the total of all bumps.
        assert!(score > 0.0 && score <= 4000.0, "score {score}");
    }
}
