//! The query evaluation strategy (§IV-D, §V-B).
//!
//! "Any subsequent query will be evaluated over the cached values first.
//! Disk access is required only if (a) there are missing values for
//! completing query evaluation, and (b) those missing values are not
//! available by computing from the existing cached values."
//!
//! [`evaluate`] implements exactly that ladder for the keys a node owns:
//!
//! 1. **cache hit** — Cell fresh in the local graph;
//! 2. **derived hit** — Cell merged from a complete set of cached children;
//! 3. **fetch** — remaining keys go to the backing store through the
//!    caller-supplied [`FetchFn`] (local scan or one forwarded hop), and
//!    the fetched Cells are inserted for future reuse (collective caching).
//!
//! Finally the accessed region's freshness is dispersed to its
//! spatiotemporal neighborhood (§V-C2).

use crate::graph::StashGraph;
use stash_model::{Cell, CellKey, QueryError, QueryResult};
use stash_obs::StageTimes;
use std::time::Instant;

/// Supplies Cells the cache cannot: scans the backing store (and forwards
/// to peer partitions when a coarse Cell spans them). Must return exactly
/// one Cell per requested key — an empty summary is a valid answer for an
/// empty region, a *missing* key is a storage fault.
pub type FetchFn<'a> = dyn Fn(&[CellKey]) -> Result<Vec<Cell>, String> + Sync + 'a;

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Query could not be planned (bad resolution, cover too large).
    Query(QueryError),
    /// The backing store failed or returned an incomplete answer.
    Fetch(String),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Query(e) => write!(f, "planning failed: {e}"),
            EvalError::Fetch(e) => write!(f, "fetch failed: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<QueryError> for EvalError {
    fn from(e: QueryError) -> Self {
        EvalError::Query(e)
    }
}

/// Provenance of one evaluation, returned alongside the result.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalOutcome {
    pub cache_hits: usize,
    pub derived_hits: usize,
    pub fetched: usize,
}

/// Evaluate the given target keys against a node's graph. `keys` are the
/// Cells this node is responsible for (the coordinator has already split
/// the query by owner); call sites with a whole query use
/// [`stash_model::AggQuery::target_keys`] first.
pub fn evaluate(
    graph: &StashGraph,
    keys: &[CellKey],
    fetch: &FetchFn,
) -> Result<QueryResult, EvalError> {
    evaluate_traced(graph, keys, fetch).map(|(result, _)| result)
}

/// [`evaluate`] plus a per-stage timing breakdown: `plm_ns` covers the
/// batched PLM/cache pass, `merge_ns` derivation, insertion, dispersal,
/// and result assembly, and `dfs_ns` the wall time spent inside `fetch`
/// (local DFS scan, or scan + wire when the fetcher gathers remotely —
/// callers that know their fetcher's wire share move it to `wire_ns`).
pub fn evaluate_traced(
    graph: &StashGraph,
    keys: &[CellKey],
    fetch: &FetchFn,
) -> Result<(QueryResult, StageTimes), EvalError> {
    graph.clock().advance();
    let mut outcome = EvalOutcome::default();
    let mut times = StageTimes::default();

    // Pass 1: direct hits (batched: one lock round per level)…
    let t = Instant::now();
    let (mut cells, candidates) = graph.get_many(keys);
    times.plm_ns = t.elapsed().as_nanos() as u64;
    outcome.cache_hits = cells.len();

    // …then derivation from cached children for the remainder.
    let t = Instant::now();
    let mut missing: Vec<CellKey> = Vec::with_capacity(candidates.len());
    if graph.config().enable_derivation {
        for key in candidates {
            if let Some(cell) = graph.try_derive(&key) {
                outcome.derived_hits += 1;
                cells.push(cell);
            } else {
                missing.push(key);
            }
        }
    } else {
        missing = candidates;
    }
    times.merge_ns = t.elapsed().as_nanos() as u64;

    // Pass 2: fetch what memory cannot provide.
    if !missing.is_empty() {
        let t = Instant::now();
        let fetched = fetch(&missing).map_err(EvalError::Fetch)?;
        times.dfs_ns = t.elapsed().as_nanos() as u64;
        if fetched.len() != missing.len() {
            return Err(EvalError::Fetch(format!(
                "store returned {} cells for {} keys",
                fetched.len(),
                missing.len()
            )));
        }
        outcome.fetched = fetched.len();
        // Collective caching: fetched Cells are inserted so *any* later
        // query (from any user) reuses them.
        let t = Instant::now();
        graph.insert_many(fetched.iter().cloned());
        cells.extend(fetched);
        times.merge_ns += t.elapsed().as_nanos() as u64;
    }

    let t = Instant::now();
    // Freshness dispersion over the accessed region (§V-C2).
    graph.touch_region(keys);

    // Deterministic output order; drop empty Cells from the rendered set
    // (nothing to draw) while keeping them cached.
    cells.retain(|c| !c.summary.is_empty());
    cells.sort_by_key(|c| c.key);
    times.merge_ns += t.elapsed().as_nanos() as u64;
    Ok((
        QueryResult {
            cells,
            cache_hits: outcome.cache_hits,
            derived_hits: outcome.derived_hits,
            misses: outcome.fetched,
            rollup_hits: 0,
        },
        times,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::LogicalClock;
    use crate::config::StashConfig;
    use parking_lot::Mutex;
    use stash_geo::time::epoch_seconds;
    use stash_geo::{Geohash, TemporalRes, TimeBin};
    use std::str::FromStr;
    use std::sync::Arc;

    fn graph() -> StashGraph {
        StashGraph::new(StashConfig::default(), Arc::new(LogicalClock::new()))
    }

    fn key(gh: &str) -> CellKey {
        CellKey::new(
            Geohash::from_str(gh).unwrap(),
            TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        )
    }

    fn filled(k: CellKey, v: f64) -> Cell {
        let mut c = Cell::empty(k, 1);
        c.summary.push_row(&[v]);
        c
    }

    /// A fetcher that returns value `1.0` per key and records what it was
    /// asked for.
    fn recording_fetcher(
        log: Arc<Mutex<Vec<Vec<CellKey>>>>,
    ) -> impl Fn(&[CellKey]) -> Result<Vec<Cell>, String> + Sync {
        move |keys: &[CellKey]| {
            log.lock().push(keys.to_vec());
            Ok(keys.iter().map(|&k| filled(k, 1.0)).collect())
        }
    }

    #[test]
    fn cold_query_fetches_everything_then_warm_query_fetches_nothing() {
        let g = graph();
        let keys: Vec<CellKey> = key("9q8").spatial_children().unwrap();
        let log = Arc::new(Mutex::new(Vec::new()));
        let fetch = recording_fetcher(Arc::clone(&log));

        let cold = evaluate(&g, &keys, &fetch).unwrap();
        assert_eq!(cold.misses, 32);
        assert_eq!(cold.cache_hits, 0);
        assert_eq!(cold.cells.len(), 32);

        let warm = evaluate(&g, &keys, &fetch).unwrap();
        assert_eq!(warm.cache_hits, 32);
        assert_eq!(warm.misses, 0);
        assert_eq!(warm.cells.len(), 32);
        assert_eq!(log.lock().len(), 1, "second query must not fetch");
        assert!((warm.hit_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_overlap_fetches_only_missing() {
        let g = graph();
        let all: Vec<CellKey> = key("9q8").spatial_children().unwrap();
        let (cached, uncached) = all.split_at(20);
        g.insert_many(cached.iter().map(|&k| filled(k, 2.0)));

        let log = Arc::new(Mutex::new(Vec::new()));
        let fetch = recording_fetcher(Arc::clone(&log));
        let r = evaluate(&g, &all, &fetch).unwrap();
        assert_eq!(r.cache_hits, 20);
        assert_eq!(r.misses, 12);
        let fetched_keys = &log.lock()[0];
        assert_eq!(fetched_keys.as_slice(), uncached);
    }

    #[test]
    fn rollup_is_served_by_derivation_not_disk() {
        let g = graph();
        let parent = key("9q8");
        let children = parent.spatial_children().unwrap();
        g.insert_many(children.iter().map(|&k| filled(k, 3.0)));

        let fetch =
            |_: &[CellKey]| -> Result<Vec<Cell>, String> { Err("disk must not be touched".into()) };
        let r = evaluate(&g, &[parent], &fetch).unwrap();
        assert_eq!(r.derived_hits, 1);
        assert_eq!(r.misses, 0);
        assert_eq!(r.cells[0].summary.count(), 32);
        // And the derived parent now serves direct hits.
        let r2 = evaluate(&g, &[parent], &fetch).unwrap();
        assert_eq!(r2.cache_hits, 1);
    }

    #[test]
    fn empty_cells_are_cached_but_not_rendered() {
        let g = graph();
        let k = key("9q8y");
        let fetch = |keys: &[CellKey]| -> Result<Vec<Cell>, String> {
            Ok(keys.iter().map(|&k| Cell::empty(k, 1)).collect())
        };
        let r = evaluate(&g, &[k], &fetch).unwrap();
        assert_eq!(r.misses, 1);
        assert!(r.cells.is_empty(), "empty summaries are not rendered");
        // But the emptiness is cached: next evaluation is a hit, no fetch.
        let deny = |_: &[CellKey]| -> Result<Vec<Cell>, String> { Err("no".into()) };
        let r2 = evaluate(&g, &[k], &deny).unwrap();
        assert_eq!(r2.cache_hits, 1);
    }

    #[test]
    fn incomplete_fetch_is_an_error() {
        let g = graph();
        let keys = [key("9q8y"), key("9q8z")];
        let fetch = |keys: &[CellKey]| -> Result<Vec<Cell>, String> {
            Ok(vec![Cell::empty(keys[0], 1)]) // one short
        };
        match evaluate(&g, &keys, &fetch) {
            Err(EvalError::Fetch(msg)) => assert!(msg.contains("2 keys")),
            other => panic!("expected fetch error, got {other:?}"),
        }
    }

    #[test]
    fn fetch_failure_propagates() {
        let g = graph();
        let fetch = |_: &[CellKey]| -> Result<Vec<Cell>, String> { Err("io error".into()) };
        let err = evaluate(&g, &[key("9q8y")], &fetch).unwrap_err();
        assert_eq!(err, EvalError::Fetch("io error".into()));
    }

    #[test]
    fn results_are_sorted_by_key() {
        let g = graph();
        let mut keys: Vec<CellKey> = key("9q8").spatial_children().unwrap();
        keys.reverse();
        let fetch = |keys: &[CellKey]| -> Result<Vec<Cell>, String> {
            Ok(keys.iter().map(|&k| filled(k, 1.0)).collect())
        };
        let r = evaluate(&g, &keys, &fetch).unwrap();
        for w in r.cells.windows(2) {
            assert!(w[0].key < w[1].key);
        }
    }

    #[test]
    fn traced_evaluation_times_every_stage_it_runs() {
        let g = graph();
        let keys: Vec<CellKey> = key("9q8").spatial_children().unwrap();
        let slow_fetch = |keys: &[CellKey]| -> Result<Vec<Cell>, String> {
            std::thread::sleep(std::time::Duration::from_millis(5));
            Ok(keys.iter().map(|&k| filled(k, 1.0)).collect())
        };
        let (cold, t_cold) = evaluate_traced(&g, &keys, &slow_fetch).unwrap();
        assert_eq!(cold.misses, 32);
        assert!(
            t_cold.dfs_ns >= 5_000_000,
            "fetch wall time not captured: {} ns",
            t_cold.dfs_ns
        );
        // The evaluator itself never touches the wire or retries.
        assert_eq!((t_cold.wire_ns, t_cold.retry_ns, t_cold.wait_ns), (0, 0, 0));

        let deny = |_: &[CellKey]| -> Result<Vec<Cell>, String> { Err("warm".into()) };
        let (warm, t_warm) = evaluate_traced(&g, &keys, &deny).unwrap();
        assert_eq!(warm.cache_hits, 32);
        assert_eq!(t_warm.dfs_ns, 0, "warm evaluation must not fetch");
        // Results are identical to the untraced path.
        assert_eq!(evaluate(&g, &keys, &deny).unwrap().cells, warm.cells);
    }

    #[test]
    fn evaluation_advances_the_clock() {
        let g = graph();
        let t0 = g.clock().now();
        let fetch = |keys: &[CellKey]| -> Result<Vec<Cell>, String> {
            Ok(keys.iter().map(|&k| Cell::empty(k, 1)).collect())
        };
        evaluate(&g, &[key("9q8y")], &fetch).unwrap();
        assert_eq!(g.clock().now(), t0 + 1);
    }
}
