//! A sparse 64-bit-keyed bitmap: the storage behind the precision-level map.
//!
//! The paper describes the PLM as "a memory-resident bitmap" (§IV-D). Cell
//! identities are 64-bit [`dense_id`](stash_model::CellKey::dense_id)s, far
//! too sparse for a flat bit vector, so the bitmap is chunked: a hash map
//! from the upper 58 bits to one 64-bit word covering the lower 6. Dense
//! regions of ids (consecutive cells of one area) share words; isolated ids
//! cost one map entry.

use std::collections::HashMap;

/// A set of `u64` keys stored as chunked bit words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseBitmap {
    chunks: HashMap<u64, u64>,
    len: usize,
}

impl SparseBitmap {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn split(id: u64) -> (u64, u64) {
        (id >> 6, 1u64 << (id & 63))
    }

    /// Insert; returns `true` if the id was newly added.
    pub fn insert(&mut self, id: u64) -> bool {
        let (chunk, bit) = Self::split(id);
        let word = self.chunks.entry(chunk).or_insert(0);
        if *word & bit != 0 {
            return false;
        }
        *word |= bit;
        self.len += 1;
        true
    }

    /// Remove; returns `true` if the id was present.
    pub fn remove(&mut self, id: u64) -> bool {
        let (chunk, bit) = Self::split(id);
        match self.chunks.get_mut(&chunk) {
            Some(word) if *word & bit != 0 => {
                *word &= !bit;
                if *word == 0 {
                    self.chunks.remove(&chunk);
                }
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    #[inline]
    pub fn contains(&self, id: u64) -> bool {
        let (chunk, bit) = Self::split(id);
        self.chunks.get(&chunk).is_some_and(|w| w & bit != 0)
    }

    /// Number of ids stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn clear(&mut self) {
        self.chunks.clear();
        self.len = 0;
    }

    /// Iterate all stored ids (unordered).
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.chunks.iter().flat_map(|(&chunk, &word)| {
            (0..64u64).filter_map(move |b| (word & (1 << b) != 0).then_some((chunk << 6) | b))
        })
    }

    /// Approximate heap footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.chunks.len() * (std::mem::size_of::<u64>() * 2 + 8)
    }
}

impl FromIterator<u64> for SparseBitmap {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        let mut b = SparseBitmap::new();
        for id in iter {
            b.insert(id);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut b = SparseBitmap::new();
        assert!(b.insert(42));
        assert!(!b.insert(42), "duplicate insert must report false");
        assert!(b.contains(42));
        assert!(!b.contains(43));
        assert_eq!(b.len(), 1);
        assert!(b.remove(42));
        assert!(!b.remove(42));
        assert!(b.is_empty());
    }

    #[test]
    fn dense_ids_share_chunks() {
        let mut b = SparseBitmap::new();
        for i in 0..64 {
            b.insert(i);
        }
        assert_eq!(b.len(), 64);
        // One chunk word should hold all 64 bits.
        assert!(
            b.estimated_bytes() <= 64,
            "chunking failed: {} bytes",
            b.estimated_bytes()
        );
    }

    #[test]
    fn sparse_ids_work() {
        let ids = [0u64, u64::MAX, 1 << 63, 0xDEAD_BEEF_CAFE_F00D, 7];
        let b: SparseBitmap = ids.iter().copied().collect();
        for id in ids {
            assert!(b.contains(id));
        }
        assert_eq!(b.len(), ids.len());
    }

    #[test]
    fn iter_roundtrips() {
        let ids: Vec<u64> = (0..1000).map(|i| i * 2_654_435_761).collect();
        let b: SparseBitmap = ids.iter().copied().collect();
        let mut got: Vec<u64> = b.iter().collect();
        got.sort_unstable();
        let mut want = ids.clone();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
    }

    #[test]
    fn clear_empties() {
        let mut b: SparseBitmap = (0..100).collect();
        b.clear();
        assert!(b.is_empty());
        assert!(!b.contains(5));
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn word_boundary_neighbors_are_distinct() {
        let mut b = SparseBitmap::new();
        b.insert(63);
        b.insert(64);
        assert!(b.contains(63) && b.contains(64));
        b.remove(63);
        assert!(!b.contains(63) && b.contains(64));
    }
}
