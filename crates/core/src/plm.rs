//! The Precision-Level Map (§IV-D).
//!
//! "Across multiple precision levels, STASH relies on a precision-level map
//! (PLM) to check for completeness of the in-memory data. The PLM is a
//! memory-resident bitmap that associates the Cells contained in-memory for
//! a given level to the actual data blocks in the distributed storage."
//!
//! Two bitmaps per level:
//!
//! * **cached** — which Cells of this level are in the local graph;
//! * **stale** — cached Cells whose backing blocks changed since they were
//!   aggregated ("the PLM can be adjusted during an update … so that stale
//!   data summaries are recomputed in case of future access").
//!
//! A Cell counts toward query completeness only when cached *and not*
//! stale; [`Plm::missing_of`] is the completeness check the evaluator runs
//! before deciding what to fetch. The PLM also vets replicas during
//! hotspot handling ("the PLM helps identify the stale replicas", §VII-A).

use crate::bitmap::SparseBitmap;
use stash_model::level::NUM_LEVELS;
use stash_model::CellKey;

/// One node's precision-level map.
#[derive(Debug, Default)]
pub struct Plm {
    cached: Vec<SparseBitmap>,
    stale: Vec<SparseBitmap>,
}

impl Plm {
    pub fn new() -> Self {
        Plm {
            cached: (0..NUM_LEVELS).map(|_| SparseBitmap::new()).collect(),
            stale: (0..NUM_LEVELS).map(|_| SparseBitmap::new()).collect(),
        }
    }

    #[inline]
    fn slot(key: &CellKey) -> usize {
        key.level().index() as usize
    }

    /// Record that a Cell is now held in-memory (fresh).
    pub fn mark_cached(&mut self, key: &CellKey) {
        let s = Self::slot(key);
        self.cached[s].insert(key.dense_id());
        self.stale[s].remove(key.dense_id());
    }

    /// Record eviction.
    pub fn mark_evicted(&mut self, key: &CellKey) {
        let s = Self::slot(key);
        self.cached[s].remove(key.dense_id());
        self.stale[s].remove(key.dense_id());
    }

    /// Is the Cell in memory (stale or not)?
    pub fn is_cached(&self, key: &CellKey) -> bool {
        self.cached[Self::slot(key)].contains(key.dense_id())
    }

    /// Mark a cached Cell's summary out of date after a storage update.
    /// No-op for uncached Cells (nothing to invalidate). Returns whether
    /// the stale bit was newly set (the Cell transitioned fresh → stale).
    pub fn mark_stale(&mut self, key: &CellKey) -> bool {
        let s = Self::slot(key);
        if self.cached[s].contains(key.dense_id()) {
            self.stale[s].insert(key.dense_id())
        } else {
            false
        }
    }

    /// Is a cached Cell stale?
    pub fn is_stale(&self, key: &CellKey) -> bool {
        self.stale[Self::slot(key)].contains(key.dense_id())
    }

    /// Cached, up-to-date — usable for query evaluation.
    pub fn is_fresh(&self, key: &CellKey) -> bool {
        self.is_cached(key) && !self.is_stale(key)
    }

    /// Completeness check: the subset of `keys` that cannot be served from
    /// memory (uncached or stale) and must be fetched/recomputed.
    pub fn missing_of<'a>(&self, keys: impl IntoIterator<Item = &'a CellKey>) -> Vec<CellKey> {
        keys.into_iter()
            .filter(|k| !self.is_fresh(k))
            .copied()
            .collect()
    }

    /// Cells cached at one level.
    pub fn cached_at_level(&self, level_index: usize) -> usize {
        self.cached.get(level_index).map_or(0, SparseBitmap::len)
    }

    /// Total cached Cells across levels.
    pub fn total_cached(&self) -> usize {
        self.cached.iter().map(SparseBitmap::len).sum()
    }

    /// Total stale Cells across levels.
    pub fn total_stale(&self) -> usize {
        self.stale.iter().map(SparseBitmap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use stash_geo::{Geohash, TemporalRes, TimeBin};
    use std::str::FromStr;

    fn key(gh: &str, res: TemporalRes) -> CellKey {
        CellKey::new(
            Geohash::from_str(gh).unwrap(),
            TimeBin::containing(res, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        )
    }

    #[test]
    fn cache_lifecycle() {
        let mut plm = Plm::new();
        let k = key("9q8y", TemporalRes::Day);
        assert!(!plm.is_cached(&k));
        plm.mark_cached(&k);
        assert!(plm.is_cached(&k));
        assert!(plm.is_fresh(&k));
        plm.mark_evicted(&k);
        assert!(!plm.is_cached(&k));
        assert!(!plm.is_fresh(&k));
    }

    #[test]
    fn staleness_blocks_freshness_until_recached() {
        let mut plm = Plm::new();
        let k = key("9q8y", TemporalRes::Day);
        plm.mark_cached(&k);
        plm.mark_stale(&k);
        assert!(plm.is_cached(&k), "stale cells are still in memory");
        assert!(plm.is_stale(&k));
        assert!(!plm.is_fresh(&k));
        // Re-caching (recomputation) clears staleness.
        plm.mark_cached(&k);
        assert!(plm.is_fresh(&k));
    }

    #[test]
    fn stale_on_uncached_is_noop() {
        let mut plm = Plm::new();
        let k = key("9q8y", TemporalRes::Day);
        plm.mark_stale(&k);
        assert!(!plm.is_stale(&k));
        assert_eq!(plm.total_stale(), 0);
    }

    #[test]
    fn levels_are_independent() {
        let mut plm = Plm::new();
        // Same geohash at two temporal resolutions = two different levels.
        let day = key("9q8y", TemporalRes::Day);
        let month = key("9q8y", TemporalRes::Month);
        plm.mark_cached(&day);
        assert!(plm.is_cached(&day));
        assert!(!plm.is_cached(&month));
        assert_eq!(plm.cached_at_level(day.level().index() as usize), 1);
        assert_eq!(plm.cached_at_level(month.level().index() as usize), 0);
        assert_eq!(plm.total_cached(), 1);
    }

    #[test]
    fn missing_of_is_the_completeness_check() {
        let mut plm = Plm::new();
        let a = key("9q8y", TemporalRes::Day);
        let b = key("9q8z", TemporalRes::Day);
        let c = key("9q8v", TemporalRes::Day);
        plm.mark_cached(&a);
        plm.mark_cached(&b);
        plm.mark_stale(&b); // cached but stale ⇒ missing
        let missing = plm.missing_of([&a, &b, &c]);
        assert_eq!(missing, vec![b, c]);
        // Fully fresh set ⇒ complete.
        plm.mark_cached(&b);
        plm.mark_cached(&c);
        assert!(plm.missing_of([&a, &b, &c]).is_empty());
    }

    #[test]
    fn mark_stale_reports_the_fresh_to_stale_transition() {
        let mut plm = Plm::new();
        let k = key("9q8y", TemporalRes::Day);
        assert!(!plm.mark_stale(&k), "uncached: nothing to invalidate");
        plm.mark_cached(&k);
        assert!(plm.mark_stale(&k), "first mark transitions fresh -> stale");
        assert!(!plm.mark_stale(&k), "re-marking an already-stale cell");
        // Recomputation clears the bit; the next mark transitions again.
        plm.mark_cached(&k);
        assert!(plm.mark_stale(&k));
    }

    #[test]
    fn stale_then_evicted_then_stale_is_a_noop_again() {
        // The ingest invalidation path can race eviction: a key marked
        // stale, then evicted, must not resurrect any bit when a later
        // invalidation arrives for the (now absent) cell.
        let mut plm = Plm::new();
        let k = key("9q8y", TemporalRes::Day);
        plm.mark_cached(&k);
        assert!(plm.mark_stale(&k));
        plm.mark_evicted(&k);
        assert!(!plm.mark_stale(&k));
        assert!(!plm.is_stale(&k));
        assert!(!plm.is_cached(&k));
        assert_eq!(plm.total_cached(), 0);
        assert_eq!(plm.total_stale(), 0);
        assert_eq!(plm.missing_of([&k]), vec![k]);
    }

    #[test]
    fn repeated_ingest_cycles_keep_bitmaps_consistent() {
        let mut plm = Plm::new();
        let keys: Vec<CellKey> = ["9q8y", "9q8z", "9q8v", "9q8w"]
            .iter()
            .map(|g| key(g, TemporalRes::Hour))
            .collect();
        for round in 0..3 {
            for k in &keys {
                plm.mark_cached(k);
            }
            assert_eq!(plm.total_cached(), keys.len());
            assert_eq!(plm.total_stale(), 0, "round {round}: recache cleans");
            // Invalidate half, evict one of the stale ones.
            assert!(plm.mark_stale(&keys[0]));
            assert!(plm.mark_stale(&keys[1]));
            plm.mark_evicted(&keys[1]);
            assert_eq!(plm.total_stale(), 1);
            assert_eq!(plm.total_cached(), keys.len() - 1);
            let missing = plm.missing_of(keys.iter());
            assert_eq!(missing, vec![keys[0], keys[1]]);
            assert!(plm.is_fresh(&keys[2]) && plm.is_fresh(&keys[3]));
        }
    }

    #[test]
    fn eviction_clears_staleness_bit() {
        let mut plm = Plm::new();
        let k = key("9q8y", TemporalRes::Day);
        plm.mark_cached(&k);
        plm.mark_stale(&k);
        plm.mark_evicted(&k);
        assert_eq!(plm.total_stale(), 0);
        // Re-inserting starts clean.
        plm.mark_cached(&k);
        assert!(plm.is_fresh(&k));
    }
}
