//! # stash-core
//!
//! The paper's primary contribution: **STASH**, a distributed in-memory
//! cache of hierarchical spatiotemporal aggregates (Mitra et al., IEEE
//! CLUSTER 2019).
//!
//! This crate implements every mechanism of §IV–§VII as reusable, node-local
//! building blocks; `stash-cluster` wires them onto the simulated fabric:
//!
//! * [`graph::StashGraph`] — the per-node portion of `G_STASH`: Cells
//!   grouped by [`Level`](stash_model::Level), with hierarchical/lateral
//!   edges *computed* from labels (§IV-D), freshness-driven replacement
//!   with neighborhood dispersion (§V-C, Fig. 3) and a configurable Cell
//!   budget.
//! * [`plm::Plm`] — the precision-level map: memory-resident bitmaps that
//!   answer "is this Cell cached? is it stale?" without touching the graph
//!   maps, and that invalidate summaries when backing blocks change (§IV-D).
//! * [`evaluator`] — the query evaluation strategy: cache hits first, then
//!   Cells *derived* by merging cached children, and only then fetches from
//!   the backing store (§V-B's two conditions for disk access).
//! * [`clique`] — hotspot units: maximal-freshness subgraphs of configured
//!   depth, the unit of replication during Clique Handoff (§VII-B2).
//! * [`routing`] — the hotspotted node's routing table of replicated
//!   Cliques and the probabilistic rerouting decision (§VII-C), plus guest
//!   graph bookkeeping for helper nodes.
//! * [`freshness`] / [`clock`] — the access-frequency × time-decay score
//!   and the logical clock it decays against (§V-C1).

pub mod bitmap;
pub mod clique;
pub mod clock;
pub mod config;
pub mod evaluator;
pub mod freshness;
pub mod graph;
pub mod plm;
pub mod routing;

// The Fx hasher moved to `stash-model` so the DFS layer can use it too;
// re-exported here because this crate's users reach it as `stash_core::fx`.
pub use stash_model::fx;

pub use clique::{Clique, CliqueFinder};
pub use clock::LogicalClock;
pub use config::{HelperSelection, StashConfig};
pub use evaluator::{evaluate, evaluate_traced, EvalError, EvalOutcome, FetchFn};
pub use graph::{GraphStats, LevelStats, StashGraph};
pub use plm::Plm;
pub use routing::{GuestBook, RouteDecision, RoutingTable};
