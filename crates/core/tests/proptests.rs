//! Property tests for the STASH graph's load-bearing invariants: the graph
//! and its PLM must stay consistent under arbitrary operation sequences,
//! replacement must respect the budget and freshness order, and derivation
//! must equal direct aggregation.

use proptest::prelude::*;
use stash_core::{LogicalClock, StashConfig, StashGraph};
use stash_geo::time::epoch_seconds;
use stash_geo::{Geohash, TemporalRes, TimeBin};
use stash_model::{Cell, CellKey};
use std::sync::Arc;

fn day_bin() -> TimeBin {
    TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0))
}

/// A pool of keys: the 32 children of each of two parents, plus parents.
fn key_pool() -> Vec<CellKey> {
    let a = CellKey::new(Geohash::encode(40.0, -100.0, 3).unwrap(), day_bin());
    let b = CellKey::new(Geohash::encode(35.0, -90.0, 3).unwrap(), day_bin());
    let mut keys = vec![a, b];
    keys.extend(a.spatial_children().unwrap());
    keys.extend(b.spatial_children().unwrap());
    keys
}

#[derive(Debug, Clone)]
enum Op {
    Insert(usize, f64),
    Get(usize),
    Remove(usize),
    Invalidate(usize),
    Touch(usize),
    AdvanceClock(u64),
}

fn arb_op(pool: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0..pool), -50.0f64..50.0).prop_map(|(i, v)| Op::Insert(i, v)),
        (0..pool).prop_map(Op::Get),
        (0..pool).prop_map(Op::Remove),
        (0..pool).prop_map(Op::Invalidate),
        (0..pool).prop_map(Op::Touch),
        (1u64..16).prop_map(Op::AdvanceClock),
    ]
}

fn graph(max_cells: usize) -> StashGraph {
    StashGraph::new(
        StashConfig {
            max_cells,
            safe_fraction: 0.75,
            decay_tau: 8.0,
            ..StashConfig::default()
        },
        Arc::new(LogicalClock::new()),
    )
}

proptest! {
    /// Whatever the operation sequence, the graph's count, the PLM, and
    /// lookups stay mutually consistent.
    #[test]
    fn graph_and_plm_never_diverge(ops in prop::collection::vec(arb_op(66), 1..200)) {
        let keys = key_pool();
        let g = graph(10_000);
        let mut model: std::collections::HashMap<CellKey, bool> = std::collections::HashMap::new(); // key -> fresh?
        for op in ops {
            match op {
                Op::Insert(i, v) => {
                    let mut c = Cell::empty(keys[i], 1);
                    c.summary.push_row(&[v]);
                    g.insert(c);
                    model.insert(keys[i], true);
                }
                Op::Get(i) => {
                    let expect_fresh = model.get(&keys[i]).copied().unwrap_or(false);
                    prop_assert_eq!(g.get(&keys[i]).is_some(), expect_fresh, "get {}", keys[i]);
                }
                Op::Remove(i) => {
                    g.remove_many(&[keys[i]]);
                    model.remove(&keys[i]);
                }
                Op::Invalidate(i) => {
                    let k = keys[i];
                    g.invalidate_region(&k.geohash.bbox(), &k.time.range());
                    // Everything cached inside that box goes stale.
                    for (mk, fresh) in model.iter_mut() {
                        if mk.geohash.bbox().intersects(&k.geohash.bbox()) {
                            *fresh = false;
                        }
                    }
                }
                Op::Touch(i) => {
                    g.touch_region(std::slice::from_ref(&keys[i]));
                }
                Op::AdvanceClock(n) => {
                    g.clock().advance_by(n);
                }
            }
            // Global invariant: count == cached population.
            prop_assert_eq!(g.len(), model.len(), "len vs model");
            for (mk, fresh) in &model {
                prop_assert_eq!(g.contains_fresh(mk), *fresh, "freshness of {}", mk);
                prop_assert!(g.peek(mk).is_some(), "{} present in a level map", mk);
            }
        }
    }

    /// Replacement: after any overflow, the population is at the safe
    /// limit and survivors outrank victims in effective freshness.
    #[test]
    fn eviction_respects_budget_and_order(
        bumps in prop::collection::vec((0usize..64, 1u64..8), 10..80),
    ) {
        let parent = CellKey::new(Geohash::encode(40.0, -100.0, 3).unwrap(), day_bin());
        let children = parent.spatial_children().unwrap();
        let grand = children[0].spatial_children().unwrap();
        let pool: Vec<CellKey> = children.into_iter().chain(grand).collect(); // 64 keys

        let g = graph(32);
        // Insert half the pool (under budget), apply bumps, then overflow.
        for k in &pool[..32] {
            g.insert(Cell::empty(*k, 1));
        }
        for (i, ticks) in bumps {
            g.clock().advance_by(ticks);
            g.get(&pool[i % 32]);
        }
        for k in &pool[32..] {
            g.insert(Cell::empty(*k, 1));
        }
        // The budget is never exceeded at rest (each overflow pass drains
        // to the safe limit of 24, then population regrows insert by
        // insert, so any value in [24, 32] is legal).
        prop_assert!(g.len() <= 32, "population {} exceeds budget", g.len());
        prop_assert!(
            g.stats().evictions.load(std::sync::atomic::Ordering::Relaxed) > 0,
            "overflow must have evicted"
        );
    }

    /// Derivation equals direct aggregation of the same values, whatever
    /// the child contents.
    #[test]
    fn derivation_equals_direct_merge(values in prop::collection::vec(-100.0f64..100.0, 32)) {
        let parent = CellKey::new(Geohash::encode(40.0, -100.0, 3).unwrap(), day_bin());
        let children = parent.spatial_children().unwrap();
        let g = graph(10_000);
        let mut expected_count = 0u64;
        let mut expected_min = f64::INFINITY;
        let mut expected_max = f64::NEG_INFINITY;
        for (k, v) in children.iter().zip(&values) {
            let mut c = Cell::empty(*k, 1);
            c.summary.push_row(&[*v]);
            expected_count += 1;
            expected_min = expected_min.min(*v);
            expected_max = expected_max.max(*v);
            g.insert(c);
        }
        let derived = g.try_derive(&parent).expect("children complete");
        prop_assert_eq!(derived.summary.count(), expected_count);
        prop_assert_eq!(derived.summary.attr(0).unwrap().min(), Some(expected_min));
        prop_assert_eq!(derived.summary.attr(0).unwrap().max(), Some(expected_max));
    }

    /// get_many partitions its input exactly: |hits| + |missing| == |keys|
    /// and matches per-key get() behaviour.
    #[test]
    fn get_many_partitions_exactly(present in prop::collection::vec(any::<bool>(), 64)) {
        let parent = CellKey::new(Geohash::encode(40.0, -100.0, 3).unwrap(), day_bin());
        let children = parent.spatial_children().unwrap();
        let grand = children[0].spatial_children().unwrap();
        let pool: Vec<CellKey> = children.into_iter().chain(grand).collect();

        let g = graph(10_000);
        for (k, p) in pool.iter().zip(&present) {
            if *p {
                g.insert(Cell::empty(*k, 1));
            }
        }
        let (hits, missing) = g.get_many(&pool);
        prop_assert_eq!(hits.len() + missing.len(), pool.len());
        let n_present = present.iter().filter(|p| **p).count();
        prop_assert_eq!(hits.len(), n_present);
        for m in &missing {
            let idx = pool.iter().position(|k| k == m).unwrap();
            prop_assert!(!present[idx], "{} reported missing but present", m);
        }
    }
}
