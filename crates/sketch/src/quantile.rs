//! UDDSketch-style quantile sketch with a canonical compaction level.
//!
//! Values are binned into logarithmic buckets: a positive value `v` falls in
//! bucket `⌈ln v / ln γ⌉`, giving every bucket a bounded *relative* width and
//! hence a bounded relative error `α = (γ−1)/(γ+1)` on any quantile
//! estimate. When the bucket table outgrows its budget the sketch *compacts*:
//! γ is squared and bucket `i` maps to `⌈i/2⌉`, halving resolution and
//! doubling coverage (the Uniform DDSketch collapse rule).
//!
//! The crucial property for STASH is **merge-order invariance**. The sketch
//! always compacts down to the *minimal* level whose bucket count fits the
//! budget, and bucket indices at level `k` are derived from level-0 indices
//! by exact integer ceil-division (`⌈i₀ / 2^k⌉`), never by re-binning floats
//! at the coarser γ. Because the occupied-bucket count at any level is
//! monotone under multiset union, that minimal level — and therefore the
//! entire state — is a pure function of the inserted multiset. Any merge
//! tree over any partition of the data produces bit-identical state, which
//! is what lets cached hierarchical roll-ups answer percentile queries
//! exactly as if the raw observations had been folded directly.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A quantile estimate plus the guarantee it came with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileEstimate {
    /// The estimated quantile value.
    pub value: f64,
    /// Maximum relative error of `value` at the sketch's current compaction
    /// level: the true quantile `v` satisfies `|value − v| ≤ bound · |v|`.
    pub relative_error: f64,
    /// Number of observations the estimate aggregates.
    pub count: u64,
}

/// Mergeable quantile sketch (the partial state of the two-step aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct UddSketch {
    /// Initial (finest) relative error target; γ₀ = (1+α₀)/(1−α₀).
    alpha: f64,
    /// Bucket budget; compaction keeps `neg.len() + pos.len()` at or below
    /// this.
    max_buckets: usize,
    /// Compaction level `k`; the effective base is γ₀^(2^k).
    compactions: u32,
    /// Exact count of zero-valued observations (zero has no log bucket).
    zero_count: u64,
    /// Buckets of negative values, keyed by the level-`k` index of `|v|`.
    neg: BTreeMap<i64, u64>,
    /// Buckets of positive values, keyed by the level-`k` index of `v`.
    pos: BTreeMap<i64, u64>,
}

/// Integer ceil-division for a positive divisor, exact for all signs.
#[inline]
fn ceil_div(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0);
    (a + b - 1).div_euclid(b)
}

impl UddSketch {
    /// An empty sketch targeting relative error `alpha` with at most
    /// `max_buckets` log buckets.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)` or `max_buckets < 4`.
    pub fn new(alpha: f64, max_buckets: usize) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "quantile alpha must be in (0, 1)"
        );
        assert!(max_buckets >= 4, "quantile sketch needs at least 4 buckets");
        UddSketch {
            alpha,
            max_buckets,
            compactions: 0,
            zero_count: 0,
            neg: BTreeMap::new(),
            pos: BTreeMap::new(),
        }
    }

    /// ln γ₀ for the configured α₀.
    #[inline]
    fn ln_gamma0(&self) -> f64 {
        ((1.0 + self.alpha) / (1.0 - self.alpha)).ln()
    }

    /// Effective γ at the current compaction level.
    #[inline]
    fn gamma(&self) -> f64 {
        (self.ln_gamma0() * 2f64.powi(self.compactions as i32)).exp()
    }

    /// Level-0 bucket index of a positive magnitude. Always computed at the
    /// finest level so coarser indices can be derived by exact integer
    /// arithmetic (see module docs).
    #[inline]
    fn base_index(&self, magnitude: f64) -> i64 {
        (magnitude.ln() / self.ln_gamma0()).ceil() as i64
    }

    /// Index of a magnitude at the current compaction level.
    #[inline]
    fn index(&self, magnitude: f64) -> i64 {
        ceil_div(self.base_index(magnitude), 1i64 << self.compactions.min(62))
    }

    /// Fold one observation in.
    pub fn push(&mut self, value: f64) {
        if value == 0.0 || value.is_nan() {
            // NaNs carry no orderable information; count them with zero so
            // totals still reconcile with the exact summaries.
            self.zero_count += 1;
        } else if value > 0.0 {
            let i = self.index(value);
            *self.pos.entry(i).or_insert(0) += 1;
        } else {
            let i = self.index(-value);
            *self.neg.entry(i).or_insert(0) += 1;
        }
        self.compact_to_budget();
    }

    /// Merge another sketch into this one. Commutative and associative with
    /// bit-identical results (canonical compaction level, see module docs).
    ///
    /// # Panics
    /// Panics if the two sketches were configured differently.
    pub fn merge(&mut self, other: &UddSketch) {
        assert!(
            self.alpha == other.alpha && self.max_buckets == other.max_buckets,
            "sketch config mismatch in UddSketch::merge"
        );
        while self.compactions < other.compactions {
            self.compact();
        }
        let shift = 1i64 << (self.compactions - other.compactions).min(62);
        for (&i, &c) in &other.neg {
            *self.neg.entry(ceil_div(i, shift)).or_insert(0) += c;
        }
        for (&i, &c) in &other.pos {
            *self.pos.entry(ceil_div(i, shift)).or_insert(0) += c;
        }
        self.zero_count += other.zero_count;
        self.compact_to_budget();
    }

    /// One compaction step: γ ← γ², bucket `i` → `⌈i/2⌉`.
    fn compact(&mut self) {
        self.compactions += 1;
        for side in [&mut self.neg, &mut self.pos] {
            let old = std::mem::take(side);
            for (i, c) in old {
                *side.entry(ceil_div(i, 2)).or_insert(0) += c;
            }
        }
    }

    /// Compact until the bucket table fits the budget. At most ~60 levels
    /// are ever needed: by then every magnitude collapses into two buckets
    /// per sign.
    fn compact_to_budget(&mut self) {
        while self.neg.len() + self.pos.len() > self.max_buckets {
            self.compact();
        }
    }

    /// Total observations folded in.
    pub fn count(&self) -> u64 {
        self.zero_count + self.neg.values().sum::<u64>() + self.pos.values().sum::<u64>()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Current maximum relative error `α_k = (γ_k − 1)/(γ_k + 1)`; grows
    /// with each compaction, starting at the configured α₀.
    pub fn error_bound(&self) -> f64 {
        let g = self.gamma();
        (g - 1.0) / (g + 1.0)
    }

    /// The accessor: estimate the `q`-quantile (`q` clamped to `[0, 1]`).
    /// `None` on an empty sketch.
    pub fn quantile(&self, q: f64) -> Option<QuantileEstimate> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // 0-indexed rank of the requested quantile.
        let rank = ((total - 1) as f64 * q.clamp(0.0, 1.0)).floor() as u64;
        let gamma = self.gamma();
        // Representative of bucket `i`: 2γ^i/(γ+1), the point whose worst
        // relative error over the bucket (γ^(i−1), γ^i] is exactly
        // (γ−1)/(γ+1) — the bound reported alongside the estimate.
        let rep = |i: i64| gamma.powf(i as f64) * 2.0 / (gamma + 1.0);
        let mut cum = 0u64;
        // Ascending value order: negatives from largest magnitude down,
        // then zero, then positives from smallest magnitude up.
        for (&i, &c) in self.neg.iter().rev() {
            cum += c;
            if cum > rank {
                return Some(self.estimate(-rep(i), total));
            }
        }
        cum += self.zero_count;
        if cum > rank {
            return Some(self.estimate(0.0, total));
        }
        for (&i, &c) in &self.pos {
            cum += c;
            if cum > rank {
                return Some(self.estimate(rep(i), total));
            }
        }
        // Unreachable when counts are consistent; defend anyway.
        None
    }

    fn estimate(&self, value: f64, count: u64) -> QuantileEstimate {
        QuantileEstimate {
            value,
            relative_error: self.error_bound(),
            count,
        }
    }

    /// Approximate in-memory footprint, for cache budgets.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<UddSketch>() + (self.neg.len() + self.pos.len()) * 16
    }

    /// Approximate serialized footprint, for the network cost model.
    pub fn wire_bytes(&self) -> usize {
        40 + (self.neg.len() + self.pos.len()) * 16
    }
}

/// Wire mirror: buckets as sorted `(index, count)` pairs, so equal sketches
/// serialize to identical bytes.
#[derive(Serialize, Deserialize)]
struct WireUdd {
    alpha: f64,
    max_buckets: u64,
    compactions: u32,
    zero: u64,
    neg: Vec<(i64, u64)>,
    pos: Vec<(i64, u64)>,
}

impl serde::Serialize for UddSketch {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        WireUdd {
            alpha: self.alpha,
            max_buckets: self.max_buckets as u64,
            compactions: self.compactions,
            zero: self.zero_count,
            neg: self.neg.iter().map(|(&i, &c)| (i, c)).collect(),
            pos: self.pos.iter().map(|(&i, &c)| (i, c)).collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for UddSketch {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let w = WireUdd::deserialize(deserializer)?;
        if !(w.alpha > 0.0 && w.alpha < 1.0) || w.max_buckets < 4 {
            return Err(serde::de::Error::custom("invalid quantile sketch config"));
        }
        Ok(UddSketch {
            alpha: w.alpha,
            max_buckets: w.max_buckets as usize,
            compactions: w.compactions,
            zero_count: w.zero,
            neg: w.neg.into_iter().collect(),
            pos: w.pos.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: &[f64]) -> UddSketch {
        let mut s = UddSketch::new(0.01, 64);
        for &v in values {
            s.push(v);
        }
        s
    }

    fn exact_quantile(values: &[f64], q: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((sorted.len() - 1) as f64 * q).floor() as usize;
        sorted[rank]
    }

    #[test]
    fn empty_has_no_quantile() {
        assert_eq!(UddSketch::new(0.01, 64).quantile(0.5), None);
    }

    #[test]
    fn estimates_respect_relative_error() {
        let values: Vec<f64> = (1..=500).map(|i| (i as f64) * 0.37 + 0.1).collect();
        let s = sketch_of(&values);
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let est = s.quantile(q).unwrap();
            let exact = exact_quantile(&values, q);
            assert!(
                (est.value - exact).abs() <= est.relative_error * exact.abs() + 1e-9,
                "q={q}: est {} vs exact {exact} (bound {})",
                est.value,
                est.relative_error
            );
        }
    }

    #[test]
    fn handles_mixed_signs_and_zero() {
        let values = [-10.0, -1.0, 0.0, 0.0, 1.0, 10.0, 100.0];
        let s = sketch_of(&values);
        assert_eq!(s.count(), 7);
        let med = s.quantile(0.5).unwrap();
        assert_eq!(med.value, 0.0);
        assert!(s.quantile(0.0).unwrap().value < 0.0);
        assert!(s.quantile(1.0).unwrap().value > 90.0);
    }

    #[test]
    fn merge_is_bit_identical_to_whole_fold() {
        let values: Vec<f64> = (0..300).map(|i| ((i * 37) % 100) as f64 - 50.0).collect();
        for split in [0, 1, 150, 299, 300] {
            let (lo, hi) = values.split_at(split);
            let mut merged = sketch_of(lo);
            merged.merge(&sketch_of(hi));
            assert_eq!(merged, sketch_of(&values), "split at {split}");
        }
    }

    #[test]
    fn compaction_keeps_budget_and_widens_bound() {
        let mut s = UddSketch::new(0.001, 8);
        let initial_bound = s.error_bound();
        // A huge dynamic range forces repeated compaction.
        for e in -20..=20 {
            s.push(10f64.powi(e));
        }
        assert!(s.neg.len() + s.pos.len() <= 8);
        assert!(s.compactions > 0);
        assert!(s.error_bound() > initial_bound);
        assert!(s.error_bound() < 1.0);
    }

    #[test]
    #[should_panic(expected = "sketch config mismatch")]
    fn merge_rejects_config_mismatch() {
        let mut a = UddSketch::new(0.01, 64);
        a.merge(&UddSketch::new(0.02, 64));
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let s = sketch_of(&[-3.5, 0.0, 1.0, 2.0, 2.0, 1e9, 1e-9]);
        let json = serde_json::to_string(&s).unwrap();
        let back: UddSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
