//! UDDSketch-style quantile sketch with a canonical compaction level.
//!
//! Values are binned into logarithmic buckets: a positive value `v` falls in
//! bucket `⌈ln v / ln γ⌉`, giving every bucket a bounded *relative* width and
//! hence a bounded relative error `α = (γ−1)/(γ+1)` on any quantile
//! estimate. When the bucket table outgrows its budget the sketch *compacts*:
//! γ is squared and bucket `i` maps to `⌈i/2⌉`, halving resolution and
//! doubling coverage (the Uniform DDSketch collapse rule).
//!
//! The crucial property for STASH is **merge-order invariance**. The sketch
//! always compacts down to the *minimal* level whose bucket count fits the
//! budget, and bucket indices at level `k` are derived from level-0 indices
//! by exact integer ceil-division (`⌈i₀ / 2^k⌉`), never by re-binning floats
//! at the coarser γ. Because the occupied-bucket count at any level is
//! monotone under multiset union, that minimal level — and therefore the
//! entire state — is a pure function of the inserted multiset. Any merge
//! tree over any partition of the data produces bit-identical state, which
//! is what lets cached hierarchical roll-ups answer percentile queries
//! exactly as if the raw observations had been folded directly.
//!
//! The bucket table is an open-addressed hash map, not an ordered tree:
//! `push` is the scan kernel's per-row hot path, and a linear-probe table
//! turns the ~log-depth pointer chase per insert into one hash and a short
//! probe. Order only matters at the edges — serialization, merge, quantile
//! walks — so the table canonicalizes to sorted `(index, count)` pairs
//! there, keeping the wire form and equality bit-deterministic.

use crate::error::MergeError;
use crate::hash::splitmix64;
use serde::{Deserialize, Serialize};
use stash_flat::{FlatError, WordReader, WordWriter};

/// A quantile estimate plus the guarantee it came with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantileEstimate {
    /// The estimated quantile value.
    pub value: f64,
    /// Maximum relative error of `value` at the sketch's current compaction
    /// level: the true quantile `v` satisfies `|value − v| ≤ bound · |v|`.
    pub relative_error: f64,
    /// Number of observations the estimate aggregates.
    pub count: u64,
}

/// Open-addressed `i64 → u64` counter table with power-of-two capacity and
/// linear probing. Occupancy is marked by a non-zero count (bucket counts
/// are always ≥ 1), so no separate tombstone/occupied bitmap is needed.
/// Iteration order is unspecified; callers needing determinism use
/// [`BucketMap::sorted`].
#[derive(Debug, Clone, Default)]
pub(crate) struct BucketMap {
    keys: Vec<i64>,
    counts: Vec<u64>,
    len: usize,
}

impl BucketMap {
    const MIN_CAPACITY: usize = 16;

    pub(crate) fn new() -> Self {
        BucketMap::default()
    }

    /// Occupied bucket count.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn slot_of(&self, key: i64) -> usize {
        debug_assert!(!self.counts.is_empty());
        let mask = self.counts.len() - 1;
        let mut slot = splitmix64(key as u64) as usize & mask;
        while self.counts[slot] != 0 && self.keys[slot] != key {
            slot = (slot + 1) & mask;
        }
        slot
    }

    /// Add `delta` (> 0) to `key`'s count, inserting the bucket if absent.
    /// Counts saturate instead of wrapping: long-lived rollups can push a
    /// bucket past `u64::MAX`, and a wrapped count of 0 would corrupt the
    /// occupancy encoding.
    pub(crate) fn add(&mut self, key: i64, delta: u64) {
        debug_assert!(delta > 0);
        // Keep load at or below 7/8 so probes stay short.
        if (self.len + 1) * 8 > self.counts.len() * 7 {
            self.grow();
        }
        let slot = self.slot_of(key);
        if self.counts[slot] == 0 {
            self.keys[slot] = key;
            self.len += 1;
        }
        self.counts[slot] = self.counts[slot].saturating_add(delta);
    }

    fn grow(&mut self) {
        let new_cap = (self.counts.len() * 2).max(Self::MIN_CAPACITY);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_counts = std::mem::replace(&mut self.counts, vec![0; new_cap]);
        for (key, count) in old_keys.into_iter().zip(old_counts) {
            if count != 0 {
                let slot = self.slot_of(key);
                self.keys[slot] = key;
                self.counts[slot] += count;
            }
        }
    }

    /// All `(key, count)` pairs in unspecified order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (i64, u64)> + '_ {
        self.keys
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c != 0)
            .map(|(&k, &c)| (k, c))
    }

    /// Canonical form: `(key, count)` pairs sorted by key ascending.
    pub(crate) fn sorted(&self) -> Vec<(i64, u64)> {
        let mut pairs: Vec<(i64, u64)> = self.iter().collect();
        pairs.sort_unstable_by_key(|&(k, _)| k);
        pairs
    }

    /// Sum of all counts (saturating).
    pub(crate) fn total(&self) -> u64 {
        self.counts.iter().fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Table capacity in slots, for memory accounting.
    pub(crate) fn capacity(&self) -> usize {
        self.counts.len()
    }
}

impl FromIterator<(i64, u64)> for BucketMap {
    fn from_iter<I: IntoIterator<Item = (i64, u64)>>(iter: I) -> Self {
        let mut m = BucketMap::new();
        for (k, c) in iter {
            if c != 0 {
                m.add(k, c);
            }
        }
        m
    }
}

/// Mergeable quantile sketch (the partial state of the two-step aggregate).
#[derive(Debug, Clone)]
pub struct UddSketch {
    /// Initial (finest) relative error target; γ₀ = (1+α₀)/(1−α₀).
    alpha: f64,
    /// Bucket budget; compaction keeps `neg.len() + pos.len()` at or below
    /// this.
    max_buckets: usize,
    /// Compaction level `k`; the effective base is γ₀^(2^k).
    compactions: u32,
    /// Exact count of zero-valued observations (zero has no log bucket).
    zero_count: u64,
    /// Buckets of negative values, keyed by the level-`k` index of `|v|`.
    neg: BucketMap,
    /// Buckets of positive values, keyed by the level-`k` index of `v`.
    pos: BucketMap,
}

/// Two sketches are equal when their canonical states match; the hash
/// tables' internal layouts (capacity, probe order) are irrelevant.
impl PartialEq for UddSketch {
    fn eq(&self, other: &Self) -> bool {
        self.alpha == other.alpha
            && self.max_buckets == other.max_buckets
            && self.compactions == other.compactions
            && self.zero_count == other.zero_count
            && self.neg.sorted() == other.neg.sorted()
            && self.pos.sorted() == other.pos.sorted()
    }
}

/// Integer ceil-division for a positive divisor, exact for all signs.
#[inline]
fn ceil_div(a: i64, b: i64) -> i64 {
    // Every caller passes a positive power of two (`1 << compactions`,
    // merge shifts, `2` during compaction), so Euclidean division is an
    // arithmetic shift — no hardware divide in the per-bucket hot path.
    debug_assert!(b > 0 && (b as u64).is_power_of_two());
    (a + b - 1) >> b.trailing_zeros()
}

/// Pack a value's *level-0* bucket assignment into one `i64` key, for
/// batched folds ([`UddSketch::add_packed`]): `0` for the zero/NaN bucket,
/// otherwise `(base_index << 2) | side` with `side = 0b01` for positive and
/// `0b11` for negative values. The shift is wrapping, so packing stays
/// panic-free for absurd α (which saturates `base_index`); it is injective
/// for `|base_index| < 2⁶¹`, far beyond any index a finite `f64` magnitude
/// can produce at a sane α.
///
/// `ln_gamma0` must be `((1 + α)/(1 − α)).ln()` — the exact expression
/// `UddSketch` evaluates — so the packed index is bit-identical to what
/// [`UddSketch::push`] would compute.
#[inline]
pub(crate) fn packed_key(ln_gamma0: f64, value: f64) -> i64 {
    if value == 0.0 || value.is_nan() {
        return 0;
    }
    let magnitude = value.abs();
    let base = (magnitude.ln() / ln_gamma0).ceil() as i64;
    let side = if value > 0.0 { 0b01 } else { 0b11 };
    base.wrapping_shl(2) | side
}

impl UddSketch {
    /// An empty sketch targeting relative error `alpha` with at most
    /// `max_buckets` log buckets.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `(0, 1)` or `max_buckets < 4`.
    pub fn new(alpha: f64, max_buckets: usize) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "quantile alpha must be in (0, 1)"
        );
        assert!(max_buckets >= 4, "quantile sketch needs at least 4 buckets");
        UddSketch {
            alpha,
            max_buckets,
            compactions: 0,
            zero_count: 0,
            neg: BucketMap::new(),
            pos: BucketMap::new(),
        }
    }

    /// ln γ₀ for the configured α₀.
    #[inline]
    fn ln_gamma0(&self) -> f64 {
        ((1.0 + self.alpha) / (1.0 - self.alpha)).ln()
    }

    /// Effective γ at the current compaction level.
    #[inline]
    fn gamma(&self) -> f64 {
        (self.ln_gamma0() * 2f64.powi(self.compactions as i32)).exp()
    }

    /// Level-0 bucket index of a positive magnitude. Always computed at the
    /// finest level so coarser indices can be derived by exact integer
    /// arithmetic (see module docs).
    #[inline]
    fn base_index(&self, magnitude: f64) -> i64 {
        (magnitude.ln() / self.ln_gamma0()).ceil() as i64
    }

    /// Index of a magnitude at the current compaction level.
    #[inline]
    fn index(&self, magnitude: f64) -> i64 {
        ceil_div(self.base_index(magnitude), 1i64 << self.compactions.min(62))
    }

    /// Fold one observation in.
    pub fn push(&mut self, value: f64) {
        if value == 0.0 || value.is_nan() {
            // NaNs carry no orderable information; count them with zero so
            // totals still reconcile with the exact summaries.
            self.zero_count = self.zero_count.saturating_add(1);
        } else if value > 0.0 {
            let i = self.index(value);
            self.pos.add(i, 1);
        } else {
            let i = self.index(-value);
            self.neg.add(i, 1);
        }
        self.compact_to_budget();
    }

    /// Fold `count` observations that share one packed level-0 bucket key
    /// (from `packed_key` via
    /// [`FoldCtx::prepare`](crate::FoldCtx::prepare)) in one step —
    /// bit-identical to `count` repeated [`push`](Self::push) calls of any
    /// value in that bucket, because the sketch's state is a pure function
    /// of the inserted (bucket, count) multiset.
    pub fn add_packed(&mut self, key: i64, count: u64) {
        if count == 0 {
            return;
        }
        if key == 0 {
            self.zero_count = self.zero_count.saturating_add(count);
        } else {
            // Arithmetic shift recovers the signed level-0 index.
            let base = key >> 2;
            let i = ceil_div(base, 1i64 << self.compactions.min(62));
            if key & 0b10 == 0 {
                self.pos.add(i, count);
            } else {
                self.neg.add(i, count);
            }
        }
        self.compact_to_budget();
    }

    /// Refuse to merge differently-configured sketches (see
    /// [`try_merge`](Self::try_merge)).
    pub(crate) fn check_config(&self, other: &UddSketch) -> Result<(), MergeError> {
        if self.alpha == other.alpha && self.max_buckets == other.max_buckets {
            Ok(())
        } else {
            Err(MergeError::ConfigMismatch { sketch: "quantile" })
        }
    }

    /// Merge another sketch into this one. Commutative and associative with
    /// bit-identical results (canonical compaction level, see module docs).
    /// On a configuration mismatch — reachable with wire-delivered partials
    /// from a misconfigured peer — returns an error and leaves `self`
    /// untouched.
    pub fn try_merge(&mut self, other: &UddSketch) -> Result<(), MergeError> {
        self.check_config(other)?;
        while self.compactions < other.compactions {
            self.compact();
        }
        let shift = 1i64 << (self.compactions - other.compactions).min(62);
        for (i, c) in other.neg.iter() {
            self.neg.add(ceil_div(i, shift), c);
        }
        for (i, c) in other.pos.iter() {
            self.pos.add(ceil_div(i, shift), c);
        }
        self.zero_count = self.zero_count.saturating_add(other.zero_count);
        self.compact_to_budget();
        Ok(())
    }

    /// Merge another sketch into this one.
    ///
    /// # Panics
    /// Panics if the two sketches were configured differently; use
    /// [`try_merge`](Self::try_merge) when the other side arrived over the
    /// wire.
    pub fn merge(&mut self, other: &UddSketch) {
        if let Err(e) = self.try_merge(other) {
            panic!("{e} (UddSketch::merge)");
        }
    }

    /// One compaction step: γ ← γ², bucket `i` → `⌈i/2⌉`.
    fn compact(&mut self) {
        self.compactions += 1;
        for side in [&mut self.neg, &mut self.pos] {
            let old = std::mem::take(side);
            for (i, c) in old.iter() {
                side.add(ceil_div(i, 2), c);
            }
        }
    }

    /// Compact until the bucket table fits the budget. At most ~60 levels
    /// are ever needed: by then every magnitude collapses into two buckets
    /// per sign.
    fn compact_to_budget(&mut self) {
        while self.neg.len() + self.pos.len() > self.max_buckets {
            self.compact();
        }
    }

    /// Total observations folded in (saturating).
    pub fn count(&self) -> u64 {
        self.zero_count
            .saturating_add(self.neg.total())
            .saturating_add(self.pos.total())
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Current maximum relative error `α_k = (γ_k − 1)/(γ_k + 1)`; grows
    /// with each compaction, starting at the configured α₀.
    pub fn error_bound(&self) -> f64 {
        let g = self.gamma();
        (g - 1.0) / (g + 1.0)
    }

    /// The accessor: estimate the `q`-quantile (`q` clamped to `[0, 1]`).
    /// `None` on an empty sketch.
    pub fn quantile(&self, q: f64) -> Option<QuantileEstimate> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        // 0-indexed rank of the requested quantile.
        let rank = ((total - 1) as f64 * q.clamp(0.0, 1.0)).floor() as u64;
        let gamma = self.gamma();
        // Representative of bucket `i`: 2γ^i/(γ+1), the point whose worst
        // relative error over the bucket (γ^(i−1), γ^i] is exactly
        // (γ−1)/(γ+1) — the bound reported alongside the estimate.
        let rep = |i: i64| gamma.powf(i as f64) * 2.0 / (gamma + 1.0);
        let mut cum = 0u64;
        // Ascending value order: negatives from largest magnitude down,
        // then zero, then positives from smallest magnitude up.
        for (i, c) in self.neg.sorted().into_iter().rev() {
            cum += c;
            if cum > rank {
                return Some(self.estimate(-rep(i), total));
            }
        }
        cum += self.zero_count;
        if cum > rank {
            return Some(self.estimate(0.0, total));
        }
        for (i, c) in self.pos.sorted() {
            cum += c;
            if cum > rank {
                return Some(self.estimate(rep(i), total));
            }
        }
        // Unreachable when counts are consistent; defend anyway.
        None
    }

    fn estimate(&self, value: f64, count: u64) -> QuantileEstimate {
        QuantileEstimate {
            value,
            relative_error: self.error_bound(),
            count,
        }
    }

    /// Approximate in-memory footprint, for cache budgets.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<UddSketch>() + (self.neg.capacity() + self.pos.capacity()) * 16
    }

    /// Exact serialized footprint: the flat wire form's byte length.
    pub fn wire_bytes(&self) -> usize {
        self.flat_words() * 8
    }

    /// Words of this sketch's flat encoding (DESIGN.md §15): a 6-word
    /// header (α bits, budget, level, zero count, two side lengths) plus
    /// two `(index, count)` pair runs in canonical sorted order.
    pub fn flat_words(&self) -> usize {
        6 + 2 * (self.neg.len() + self.pos.len())
    }

    /// Append the flat wire form to `w`. Equal sketches encode to
    /// identical words (canonical sorted bucket order).
    pub fn flat_encode(&self, w: &mut WordWriter) {
        w.push_f64(self.alpha);
        w.push_u64(self.max_buckets as u64);
        w.push_u64(self.compactions as u64);
        w.push_u64(self.zero_count);
        w.push_u64(self.neg.len() as u64);
        w.push_u64(self.pos.len() as u64);
        for (i, c) in self.neg.sorted().into_iter().chain(self.pos.sorted()) {
            w.push_i64(i);
            w.push_u64(c);
        }
    }

    /// Decode a flat wire form, validating every invariant the constructor
    /// and canonical form guarantee. Never panics on corrupt input.
    pub fn flat_decode(r: &mut WordReader) -> Result<Self, FlatError> {
        let alpha = r.f64()?;
        let max_buckets = r.u64()? as usize;
        let compactions = r.u64()?;
        let zero_count = r.u64()?;
        let neg_len = r.u64()? as usize;
        let pos_len = r.u64()? as usize;
        if !(alpha > 0.0 && alpha < 1.0) || max_buckets < 4 {
            return Err(FlatError::Corrupt("invalid quantile sketch config"));
        }
        if compactions > 62 {
            return Err(FlatError::Corrupt("quantile compaction level out of range"));
        }
        if neg_len.saturating_add(pos_len) > max_buckets {
            return Err(FlatError::Corrupt("quantile bucket count exceeds budget"));
        }
        let mut side = |n: usize| -> Result<BucketMap, FlatError> {
            let mut m = BucketMap::new();
            let mut prev: Option<i64> = None;
            for _ in 0..n {
                let i = r.i64()?;
                let c = r.u64()?;
                if prev.is_some_and(|p| p >= i) {
                    return Err(FlatError::Corrupt("quantile buckets not sorted"));
                }
                if c == 0 {
                    return Err(FlatError::Corrupt("quantile bucket with zero count"));
                }
                prev = Some(i);
                m.add(i, c);
            }
            Ok(m)
        };
        let neg = side(neg_len)?;
        let pos = side(pos_len)?;
        Ok(UddSketch {
            alpha,
            max_buckets,
            compactions: compactions as u32,
            zero_count,
            neg,
            pos,
        })
    }
}

/// Wire mirror: buckets as sorted `(index, count)` pairs, so equal sketches
/// serialize to identical bytes.
#[derive(Serialize, Deserialize)]
struct WireUdd {
    alpha: f64,
    max_buckets: u64,
    compactions: u32,
    zero: u64,
    neg: Vec<(i64, u64)>,
    pos: Vec<(i64, u64)>,
}

impl serde::Serialize for UddSketch {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        WireUdd {
            alpha: self.alpha,
            max_buckets: self.max_buckets as u64,
            compactions: self.compactions,
            zero: self.zero_count,
            neg: self.neg.sorted(),
            pos: self.pos.sorted(),
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for UddSketch {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let w = WireUdd::deserialize(deserializer)?;
        if !(w.alpha > 0.0 && w.alpha < 1.0) || w.max_buckets < 4 {
            return Err(serde::de::Error::custom("invalid quantile sketch config"));
        }
        Ok(UddSketch {
            alpha: w.alpha,
            max_buckets: w.max_buckets as usize,
            compactions: w.compactions,
            zero_count: w.zero,
            neg: w.neg.into_iter().collect(),
            pos: w.pos.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: &[f64]) -> UddSketch {
        let mut s = UddSketch::new(0.01, 64);
        for &v in values {
            s.push(v);
        }
        s
    }

    fn exact_quantile(values: &[f64], q: f64) -> f64 {
        let mut sorted = values.to_vec();
        sorted.sort_by(f64::total_cmp);
        let rank = ((sorted.len() - 1) as f64 * q).floor() as usize;
        sorted[rank]
    }

    #[test]
    fn empty_has_no_quantile() {
        assert_eq!(UddSketch::new(0.01, 64).quantile(0.5), None);
    }

    #[test]
    fn bucket_map_counts_and_canonicalizes() {
        let mut m = BucketMap::new();
        for round in 1..=3u64 {
            for key in [-5i64, 0, 7, 1000, -5] {
                m.add(key, round);
            }
        }
        assert_eq!(m.len(), 4);
        assert_eq!(m.total(), 5 * (1 + 2 + 3));
        assert_eq!(
            m.sorted(),
            vec![(-5, 12), (0, 6), (7, 6), (1000, 6)],
            "sorted form is canonical"
        );
    }

    #[test]
    fn bucket_map_survives_growth() {
        let mut m = BucketMap::new();
        for key in 0..500i64 {
            m.add(key * 3 - 700, 2);
        }
        assert_eq!(m.len(), 500);
        assert_eq!(m.total(), 1000);
        let sorted = m.sorted();
        assert!(sorted.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn estimates_respect_relative_error() {
        let values: Vec<f64> = (1..=500).map(|i| (i as f64) * 0.37 + 0.1).collect();
        let s = sketch_of(&values);
        for q in [0.0, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0] {
            let est = s.quantile(q).unwrap();
            let exact = exact_quantile(&values, q);
            assert!(
                (est.value - exact).abs() <= est.relative_error * exact.abs() + 1e-9,
                "q={q}: est {} vs exact {exact} (bound {})",
                est.value,
                est.relative_error
            );
        }
    }

    #[test]
    fn handles_mixed_signs_and_zero() {
        let values = [-10.0, -1.0, 0.0, 0.0, 1.0, 10.0, 100.0];
        let s = sketch_of(&values);
        assert_eq!(s.count(), 7);
        let med = s.quantile(0.5).unwrap();
        assert_eq!(med.value, 0.0);
        assert!(s.quantile(0.0).unwrap().value < 0.0);
        assert!(s.quantile(1.0).unwrap().value > 90.0);
    }

    #[test]
    fn merge_is_bit_identical_to_whole_fold() {
        let values: Vec<f64> = (0..300).map(|i| ((i * 37) % 100) as f64 - 50.0).collect();
        for split in [0, 1, 150, 299, 300] {
            let (lo, hi) = values.split_at(split);
            let mut merged = sketch_of(lo);
            merged.merge(&sketch_of(hi));
            assert_eq!(merged, sketch_of(&values), "split at {split}");
        }
    }

    #[test]
    fn compaction_keeps_budget_and_widens_bound() {
        let mut s = UddSketch::new(0.001, 8);
        let initial_bound = s.error_bound();
        // A huge dynamic range forces repeated compaction.
        for e in -20..=20 {
            s.push(10f64.powi(e));
        }
        assert!(s.neg.len() + s.pos.len() <= 8);
        assert!(s.compactions > 0);
        assert!(s.error_bound() > initial_bound);
        assert!(s.error_bound() < 1.0);
    }

    #[test]
    #[should_panic(expected = "sketch config mismatch")]
    fn merge_rejects_config_mismatch() {
        let mut a = UddSketch::new(0.01, 64);
        a.merge(&UddSketch::new(0.02, 64));
    }

    #[test]
    fn try_merge_errors_without_mutating() {
        let mut a = sketch_of(&[1.0, -2.0, 0.0]);
        let before = a.clone();
        let err = a.try_merge(&UddSketch::new(0.02, 64)).unwrap_err();
        assert_eq!(err, MergeError::ConfigMismatch { sketch: "quantile" });
        assert_eq!(a, before, "failed merge must leave the receiver intact");
        assert!(a.try_merge(&sketch_of(&[3.0])).is_ok());
        assert_eq!(a.count(), 4);
    }

    #[test]
    fn add_packed_matches_push() {
        // Batched (key, count) folds must land bit-identically to repeated
        // pushes, including across compactions and for zero/NaN.
        let values = [0.25, -3.5, 0.0, f64::NAN, 1e9, 1e-9, 7.0, 7.0, -0.0];
        let mut pushed = UddSketch::new(0.01, 8);
        let mut batched = UddSketch::new(0.01, 8);
        let ln_gamma0 = pushed.ln_gamma0();
        let mut tally: Vec<(i64, u64)> = Vec::new();
        for &v in &values {
            pushed.push(v);
            let key = packed_key(ln_gamma0, v);
            match tally.iter_mut().find(|(k, _)| *k == key) {
                Some((_, c)) => *c += 1,
                None => tally.push((key, 1)),
            }
        }
        for (key, count) in tally {
            batched.add_packed(key, count);
        }
        assert_eq!(batched, pushed);
        assert_eq!(batched.count(), pushed.count());
    }

    #[test]
    fn counts_saturate_at_boundaries() {
        // Drive zero_count and a bucket count to the boundary through the
        // wire decoder, then push past it: counts must pin, not wrap.
        let s = sketch_of(&[0.0, 5.0]);
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        let mut words = w.into_words();
        words[3] = u64::MAX - 1; // zero_count
        *words.last_mut().unwrap() = u64::MAX - 1; // the 5.0 bucket
        let mut big = UddSketch::flat_decode(&mut WordReader::new(&words)).unwrap();
        big.push(0.0);
        big.push(0.0);
        big.push(5.0);
        big.push(5.0);
        assert_eq!(big.zero_count, u64::MAX);
        assert_eq!(big.pos.total(), u64::MAX);
        assert_eq!(big.count(), u64::MAX);
        let mut merged = UddSketch::flat_decode(&mut WordReader::new(&words)).unwrap();
        merged.merge(&big);
        assert_eq!(merged.count(), u64::MAX);
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let s = sketch_of(&[-3.5, 0.0, 1.0, 2.0, 2.0, 1e9, 1e-9]);
        let json = serde_json::to_string(&s).unwrap();
        let back: UddSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn flat_roundtrip_preserves_state_and_length() {
        let s = sketch_of(&[-3.5, 0.0, 1.0, 2.0, 2.0, 1e9, 1e-9]);
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        assert_eq!(w.len(), s.flat_words());
        assert_eq!(w.len() * 8, s.wire_bytes());
        let words = w.into_words();
        let mut r = WordReader::new(&words);
        let back = UddSketch::flat_decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn flat_decode_rejects_corrupt_buffers() {
        let s = sketch_of(&[1.0, 2.0, -4.0]);
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        let words = w.into_words();
        // Truncation at every prefix must error, never panic.
        for cut in 0..words.len() {
            let mut r = WordReader::new(&words[..cut]);
            assert!(UddSketch::flat_decode(&mut r).is_err(), "cut {cut}");
        }
        // A zero bucket count is non-canonical.
        let mut bad = words.clone();
        *bad.last_mut().unwrap() = 0;
        assert!(UddSketch::flat_decode(&mut WordReader::new(&bad)).is_err());
        // An absurd compaction level is rejected.
        let mut bad = words;
        bad[2] = 63;
        assert!(UddSketch::flat_decode(&mut WordReader::new(&bad)).is_err());
    }
}
