//! HyperLogLog distinct-count estimator with linear-counting correction.
//!
//! The partial state is a file of `2^p` 6-bit ranks (stored as bytes):
//! register `j` holds the maximum number of leading zero bits (+1) seen in
//! the hashed suffix of any value routed to `j`. Merging is register-wise
//! `max`, which is idempotent, commutative, and associative — bit-for-bit
//! merge-order invariance for free. The accessor applies the standard HLL
//! harmonic-mean estimator, falling back to linear counting over the empty
//! registers in the small-cardinality regime where it is strictly more
//! accurate.

use crate::error::MergeError;
use crate::hash::hash_value;
use serde::{Deserialize, Serialize};
use stash_flat::{FlatError, WordReader, WordWriter};

/// A distinct-count estimate plus its standard error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistinctEstimate {
    /// Estimated number of distinct values.
    pub count: f64,
    /// Relative standard error of the estimator (≈ 1.04/√m); the true
    /// cardinality lies within ±3·`standard_error`·`count` with high
    /// probability.
    pub standard_error: f64,
}

impl DistinctEstimate {
    /// The estimate rounded to a whole count.
    pub fn rounded(&self) -> u64 {
        self.count.round().max(0.0) as u64
    }
}

/// Mergeable distinct-count sketch (the partial state of the two-step
/// aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct DistinctSketch {
    /// log₂ of the register count.
    precision: u8,
    /// One max-rank per register.
    registers: Vec<u8>,
}

impl DistinctSketch {
    /// An empty sketch with `2^precision` registers.
    ///
    /// # Panics
    /// Panics unless `4 ≤ precision ≤ 16`.
    pub fn new(precision: u8) -> Self {
        assert!(
            (4..=16).contains(&precision),
            "hll precision must be in 4..=16"
        );
        DistinctSketch {
            precision,
            registers: vec![0; 1 << precision],
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, value: f64) {
        self.push_hashed(hash_value(value));
    }

    /// Fold one observation in from its precomputed `hash_value` digest —
    /// bit-identical to [`push`](Self::push), with the hash shared across
    /// fold targets (see [`FoldCtx`](crate::FoldCtx)).
    #[inline]
    pub(crate) fn push_hashed(&mut self, h: u64) {
        let p = self.precision as u32;
        let idx = (h >> (64 - p)) as usize;
        // Rank of the remaining 64−p bits: leading zeros + 1, capped so an
        // all-zero suffix stays representable.
        let w = h << p;
        let rank = (w.leading_zeros() as u8 + 1).min(64 - self.precision + 1);
        if rank > self.registers[idx] {
            self.registers[idx] = rank;
        }
    }

    /// Fold a run of precomputed digests in — bit-identical to calling
    /// [`push_hashed`](Self::push_hashed) once per digest (register max is
    /// order-invariant), with the precision constants hoisted out of the
    /// per-value path.
    #[inline]
    pub(crate) fn push_hashed_batch<I: IntoIterator<Item = u64>>(&mut self, hashes: I) {
        let p = self.precision as u32;
        let cap = 64 - self.precision + 1;
        for h in hashes {
            let idx = (h >> (64 - p)) as usize;
            let w = h << p;
            let rank = (w.leading_zeros() as u8 + 1).min(cap);
            if rank > self.registers[idx] {
                self.registers[idx] = rank;
            }
        }
    }

    /// Refuse to merge differently-configured sketches (see
    /// [`try_merge`](Self::try_merge)).
    pub(crate) fn check_config(&self, other: &DistinctSketch) -> Result<(), MergeError> {
        if self.precision == other.precision {
            Ok(())
        } else {
            Err(MergeError::ConfigMismatch { sketch: "distinct" })
        }
    }

    /// Merge another sketch into this one (register-wise max). On a
    /// precision mismatch — reachable with wire-delivered partials from a
    /// misconfigured peer — returns an error and leaves `self` untouched.
    pub fn try_merge(&mut self, other: &DistinctSketch) -> Result<(), MergeError> {
        self.check_config(other)?;
        for (a, &b) in self.registers.iter_mut().zip(&other.registers) {
            if b > *a {
                *a = b;
            }
        }
        Ok(())
    }

    /// Merge another sketch into this one (register-wise max).
    ///
    /// # Panics
    /// Panics if the two sketches were configured differently; use
    /// [`try_merge`](Self::try_merge) when the other side arrived over the
    /// wire.
    pub fn merge(&mut self, other: &DistinctSketch) {
        if let Err(e) = self.try_merge(other) {
            panic!("{e} (DistinctSketch::merge)");
        }
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.registers.iter().all(|&r| r == 0)
    }

    /// The accessor: estimated distinct count with its standard error.
    pub fn estimate(&self) -> DistinctEstimate {
        let m = self.registers.len() as f64;
        let alpha = match self.registers.len() {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            _ => 0.7213 / (1.0 + 1.079 / m),
        };
        let denom: f64 = self.registers.iter().map(|&r| 2f64.powi(-(r as i32))).sum();
        let raw = alpha * m * m / denom;
        let zeros = self.registers.iter().filter(|&&r| r == 0).count();
        let count = if raw <= 2.5 * m && zeros > 0 {
            // Linear counting over the empty registers.
            m * (m / zeros as f64).ln()
        } else {
            raw
        };
        DistinctEstimate {
            count,
            standard_error: 1.04 / m.sqrt(),
        }
    }

    /// Approximate in-memory footprint, for cache budgets.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<DistinctSketch>() + self.registers.len()
    }

    /// Exact serialized footprint: the flat wire form's byte length
    /// (registers pack 8 per word on the wire).
    pub fn wire_bytes(&self) -> usize {
        self.flat_words() * 8
    }

    /// Words of this sketch's flat encoding (DESIGN.md §15): one precision
    /// word plus `2^p / 8` packed register words.
    pub fn flat_words(&self) -> usize {
        1 + self.registers.len() / 8
    }

    /// Append the flat wire form to `w`: registers packed big-endian eight
    /// per word, in register order (already canonical).
    pub fn flat_encode(&self, w: &mut WordWriter) {
        w.push_u64(self.precision as u64);
        for chunk in self.registers.chunks_exact(8) {
            w.push_u64(u64::from_be_bytes(chunk.try_into().expect("chunks(8)")));
        }
    }

    /// Decode a flat wire form, validating precision and register ranks.
    /// Never panics on corrupt input.
    pub fn flat_decode(r: &mut WordReader) -> Result<Self, FlatError> {
        let precision = r.u64()?;
        if !(4..=16).contains(&precision) {
            return Err(FlatError::Corrupt("invalid hll precision"));
        }
        let precision = precision as u8;
        let m = 1usize << precision;
        let mut registers = Vec::with_capacity(m);
        for word in r.take(m / 8)? {
            registers.extend_from_slice(&word.to_be_bytes());
        }
        let max_rank = 64 - precision + 1;
        if registers.iter().any(|&rk| rk > max_rank) {
            return Err(FlatError::Corrupt("hll register rank out of range"));
        }
        Ok(DistinctSketch {
            precision,
            registers,
        })
    }
}

/// Wire mirror: registers packed big-endian 8-per-u64, canonical order.
#[derive(Serialize, Deserialize)]
struct WireHll {
    precision: u8,
    packed: Vec<u64>,
}

impl serde::Serialize for DistinctSketch {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let packed = self
            .registers
            .chunks(8)
            .map(|c| {
                let mut w = [0u8; 8];
                w[..c.len()].copy_from_slice(c);
                u64::from_be_bytes(w)
            })
            .collect();
        WireHll {
            precision: self.precision,
            packed,
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for DistinctSketch {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let w = WireHll::deserialize(deserializer)?;
        if !(4..=16).contains(&w.precision) {
            return Err(serde::de::Error::custom("invalid hll precision"));
        }
        let m = 1usize << w.precision;
        if w.packed.len() != m / 8 {
            return Err(serde::de::Error::custom("hll register payload size"));
        }
        let mut registers = Vec::with_capacity(m);
        for word in &w.packed {
            registers.extend_from_slice(&word.to_be_bytes());
        }
        let max_rank = 64 - w.precision + 1;
        if registers.iter().any(|&r| r > max_rank) {
            return Err(serde::de::Error::custom("hll register rank out of range"));
        }
        Ok(DistinctSketch {
            precision: w.precision,
            registers,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: impl IntoIterator<Item = f64>) -> DistinctSketch {
        let mut s = DistinctSketch::new(8);
        for v in values {
            s.push(v);
        }
        s
    }

    #[test]
    fn empty_estimates_zero() {
        let s = DistinctSketch::new(8);
        assert!(s.is_empty());
        assert_eq!(s.estimate().rounded(), 0);
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let once = sketch_of((0..50).map(f64::from));
        let thrice = sketch_of((0..150).map(|i| f64::from(i % 50)));
        assert_eq!(once, thrice);
    }

    #[test]
    fn estimate_tracks_true_cardinality() {
        for n in [10usize, 100, 1000, 10_000] {
            let s = sketch_of((0..n).map(|i| i as f64 * 1.25));
            let est = s.estimate();
            let tolerance = (3.0 * est.standard_error * n as f64).max(2.0);
            assert!(
                (est.count - n as f64).abs() <= tolerance,
                "n={n}: estimate {} (±{tolerance})",
                est.count
            );
        }
    }

    #[test]
    fn merge_is_bit_identical_to_whole_fold() {
        let values: Vec<f64> = (0..400).map(|i| ((i * 13) % 177) as f64).collect();
        for split in [0, 1, 200, 400] {
            let (lo, hi) = values.split_at(split);
            let mut merged = sketch_of(lo.iter().copied());
            merged.merge(&sketch_of(hi.iter().copied()));
            assert_eq!(merged, sketch_of(values.iter().copied()), "split {split}");
        }
    }

    #[test]
    #[should_panic(expected = "sketch config mismatch")]
    fn merge_rejects_config_mismatch() {
        let mut a = DistinctSketch::new(8);
        a.merge(&DistinctSketch::new(9));
    }

    #[test]
    fn try_merge_errors_without_mutating() {
        let mut a = sketch_of([1.0, 2.0]);
        let before = a.clone();
        let err = a.try_merge(&DistinctSketch::new(9)).unwrap_err();
        assert_eq!(err, MergeError::ConfigMismatch { sketch: "distinct" });
        assert_eq!(a, before, "failed merge must leave the receiver intact");
        assert!(a.try_merge(&sketch_of([3.0])).is_ok());
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let s = sketch_of((0..77).map(|i| i as f64 - 38.0));
        let json = serde_json::to_string(&s).unwrap();
        let back: DistinctSketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn flat_roundtrip_preserves_state_and_length() {
        let s = sketch_of((0..77).map(|i| i as f64 - 38.0));
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        assert_eq!(w.len(), s.flat_words());
        assert_eq!(w.len() * 8, s.wire_bytes());
        let words = w.into_words();
        let mut r = WordReader::new(&words);
        let back = DistinctSketch::flat_decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn flat_decode_rejects_corrupt_buffers() {
        let s = sketch_of((0..20).map(f64::from));
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        let words = w.into_words();
        for cut in 0..words.len() {
            let mut r = WordReader::new(&words[..cut]);
            assert!(DistinctSketch::flat_decode(&mut r).is_err(), "cut {cut}");
        }
        // An out-of-range rank is rejected.
        let mut bad = words.clone();
        bad[1] = u64::MAX;
        assert!(DistinctSketch::flat_decode(&mut WordReader::new(&bad)).is_err());
        // A bogus precision is rejected.
        let mut bad = words;
        bad[0] = 3;
        assert!(DistinctSketch::flat_decode(&mut WordReader::new(&bad)).is_err());
    }
}
