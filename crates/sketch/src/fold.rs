//! Batched fold support: per-value preparation shared across fold targets.
//!
//! The scan kernel folds every valid row into one sketch bundle *per
//! resolution group* (typically ~5). A naive per-push fold therefore
//! recomputes the value's `ln` (quantile bucket index), its 64-bit hash
//! (HLL), and its count-min columns once per group — pure functions of the
//! value and the [`SketchSpec`], not of the receiving sketch. A [`FoldCtx`]
//! hoists all of that into a single [`FoldCtx::prepare`] call per
//! `(row, attribute)`, and the sketches accept the precomputed
//! [`PreparedValue`] instead:
//!
//! * [`AttrSketches::push_prepared`](crate::AttrSketches::push_prepared)
//!   applies the HLL register update and the heavy-hitter matrix/candidate
//!   update — the two order-sensitive folds, which must still run per cell
//!   in row order to stay bit-identical to a direct per-cell fold;
//! * the quantile update is *deferred*: the caller accumulates
//!   `(cell, `[`PreparedValue::quantile_key`]`)` counts in a scratch table
//!   and applies each distinct pair once via
//!   [`UddSketch::add_packed`](crate::UddSketch::add_packed). The quantile
//!   sketch's canonical compaction level makes its state a pure function of
//!   the inserted multiset, so batching (and the reordering it implies) is
//!   exact, not approximate.
//!
//! Folding a prepared value is bit-for-bit identical to calling the plain
//! `push` entry points with the original `f64` — pinned by the
//! `prepared_fold_matches_push_fold` proptest.

use crate::hash::{canonical_bits, splitmix64};
use crate::spec::SketchSpec;

/// Maximum count-min depth (mirrors the `HeavyHitters` constructor bound);
/// sizes the fixed column array in [`PreparedValue`].
const MAX_CM_DEPTH: usize = 8;

/// Everything the three sketches need to fold one value, computed once.
///
/// Cheap to copy; build one per `(row, attribute)` and reuse it for every
/// resolution group the row lands in.
#[derive(Debug, Clone, Copy)]
pub struct PreparedValue {
    /// Canonical bit pattern of the value (`-0.0` → `0.0`, NaNs collapsed).
    pub(crate) bits: u64,
    /// `splitmix64(bits)` — the HLL routing hash.
    pub(crate) hash: u64,
    /// Packed level-0 quantile bucket key (see [`UddSketch::add_packed`]).
    ///
    /// [`UddSketch::add_packed`]: crate::UddSketch::add_packed
    udd_key: i64,
    /// Count-min column per matrix row, for `d < cm_depth`.
    pub(crate) cols: [u32; MAX_CM_DEPTH],
}

impl PreparedValue {
    /// The packed quantile bucket key — the scratch-table key for batched
    /// quantile updates. Equal values always produce equal keys, and the
    /// key is independent of any sketch's current compaction level.
    #[inline]
    pub fn quantile_key(&self) -> i64 {
        self.udd_key
    }
}

/// Precomputed fold constants for one [`SketchSpec`]. Build once per scan.
#[derive(Debug, Clone)]
pub struct FoldCtx {
    /// `ln γ₀` of the quantile sketch — computed with the exact expression
    /// `UddSketch` uses so bucket indices match bit-for-bit.
    ln_gamma0: f64,
    cm_width: u64,
    cm_depth: usize,
}

impl FoldCtx {
    /// Fold constants for sketches configured per `spec`.
    pub fn new(spec: &SketchSpec) -> Self {
        FoldCtx {
            ln_gamma0: ((1.0 + spec.quantile_alpha) / (1.0 - spec.quantile_alpha)).ln(),
            cm_width: spec.cm_width as u64,
            cm_depth: spec.cm_depth.min(MAX_CM_DEPTH),
        }
    }

    /// Prepare one value: canonicalize, hash, bucket-index, and count-min
    /// columns — every per-value computation the fold repeats per group.
    #[inline]
    pub fn prepare(&self, value: f64) -> PreparedValue {
        let bits = canonical_bits(value);
        let mut cols = [0u32; MAX_CM_DEPTH];
        // Same column math as `HeavyHitters::column`, including its
        // power-of-two mask fast path.
        let pow2 = self.cm_width.is_power_of_two();
        for (d, col) in cols.iter_mut().enumerate().take(self.cm_depth) {
            let h = splitmix64(bits ^ (0xC0FF_EE00 + d as u64));
            *col = if pow2 {
                (h & (self.cm_width - 1)) as u32
            } else {
                (h % self.cm_width) as u32
            };
        }
        PreparedValue {
            bits,
            hash: splitmix64(bits),
            udd_key: crate::quantile::packed_key(self.ln_gamma0, value),
            cols,
        }
    }
}
