//! Count-min + candidate-table heavy-hitters sketch.
//!
//! Frequencies live in a `depth × width` count-min matrix: every observation
//! increments one counter per row (chosen by independent hashes of the
//! value), and a point query takes the minimum across rows — an estimate
//! that never undercounts and overcounts by at most `2·total/width` with
//! probability `1 − 2^−depth`. The matrix merges entrywise, so it is exactly
//! merge-order invariant.
//!
//! A count-min matrix alone cannot *enumerate* the heavy values, so the
//! sketch also carries a capped candidate set of values actually seen. The
//! set is an open-addressed hash table ([`CandidateSet`], same idiom as the
//! quantile sketch's `BucketMap`): membership insert is the per-push hot
//! path of the scan kernel on continuous data, and a linear-probe table
//! turns the ordered-tree insert the seed paid into one hash and a short
//! probe. Order only matters at the edges — serialization, equality,
//! `top_k` — where the table canonicalizes to sorted bit order, keeping the
//! wire form deterministic.
//!
//! Eviction is deterministic — drop candidates with the smallest
//! `(estimate, value bits)` — and amortized: the set may grow to twice its
//! cap before a one-pass trim cuts it back, so saturated streams pay O(1)
//! amortized per push instead of a full rescan. As long as the number of
//! distinct values stays within the cap (the intended regime: quantized or
//! categorical attributes, cf. the generator's `value_quantum`) no eviction
//! ever fires and the set is bit-for-bit merge-order invariant. Beyond the
//! cap the set degrades to a best-effort top set while the matrix keeps its
//! guarantees; the sketch records that degradation in a sticky
//! [`is_trimmed`](HeavyHitters::is_trimmed) flag so consumers can tell a
//! complete enumeration from a best-effort one.

use crate::error::MergeError;
use crate::fold::PreparedValue;
use crate::hash::{canonical_bits, is_canonical_bits, splitmix64};
use serde::{Deserialize, Serialize};
use stash_flat::{FlatError, WordReader, WordWriter};

/// One entry of a top-K answer.
///
/// **Contract:** [`HeavyHitters::top_k`] returns fewer than `k` entries
/// whenever the sketch tracks fewer than `k` candidates. If the sketch was
/// never trimmed ([`HeavyHitters::is_trimmed`] is `false`) that shorter
/// list is ground truth — the data simply had fewer distinct values. After
/// a trim the candidate set is best-effort and may omit true heavy values;
/// use [`HeavyHitters::top_k_report`] to obtain the answer together with
/// that truncation signal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKEntry {
    /// The candidate value.
    pub value: f64,
    /// Count-min frequency estimate; never below the true count.
    pub count: u64,
    /// Overcount bound: the true count is within `[count − error_bound,
    /// count]` with probability `1 − 2^−depth`.
    pub error_bound: u64,
}

/// A top-K answer plus the candidate-set completeness signal clients need
/// to interpret a short list (see [`TopKEntry`]).
#[derive(Debug, Clone, PartialEq)]
pub struct TopKResult {
    /// The most frequent candidates, ordered by descending estimate.
    pub entries: Vec<TopKEntry>,
    /// True when candidate eviction has fired somewhere in this sketch's
    /// history (including merged-in partials): `entries` may omit values
    /// that are truly among the top `k`. When false, a list shorter than
    /// `k` means the data had fewer distinct values — ground truth.
    pub truncated: bool,
}

/// Open-addressed set of canonical value bit patterns with power-of-two
/// capacity and linear probing. The empty-slot sentinel is `u64::MAX` — a
/// non-canonical NaN payload that `canonical_bits` can never produce (and
/// that decoding rejects), so no bitmap is needed. Iteration order is
/// unspecified; callers needing determinism use [`CandidateSet::sorted`].
#[derive(Debug, Clone, Default)]
struct CandidateSet {
    slots: Vec<u64>,
    len: usize,
}

/// Empty-slot marker: unreachable as a candidate (see [`CandidateSet`]).
const EMPTY_SLOT: u64 = u64::MAX;

impl CandidateSet {
    const MIN_CAPACITY: usize = 16;

    fn new() -> Self {
        CandidateSet::default()
    }

    /// An empty set presized so `n` members fit without growing (capacity
    /// is never part of the canonical state).
    fn with_capacity_for(n: usize) -> Self {
        let cap = (n * 8 / 7 + 1).next_power_of_two().max(Self::MIN_CAPACITY);
        CandidateSet {
            slots: vec![EMPTY_SLOT; cap],
            len: 0,
        }
    }

    #[inline]
    fn len(&self) -> usize {
        self.len
    }

    #[inline]
    fn slot_of(&self, bits: u64) -> usize {
        self.probe(bits, splitmix64(bits))
    }

    /// Linear probe from `hash` (which must be `splitmix64(bits)`) to the
    /// slot holding `bits` or the first empty slot.
    #[inline]
    fn probe(&self, bits: u64, hash: u64) -> usize {
        debug_assert!(!self.slots.is_empty());
        debug_assert_eq!(hash, splitmix64(bits));
        let mask = self.slots.len() - 1;
        let mut slot = hash as usize & mask;
        while self.slots[slot] != EMPTY_SLOT && self.slots[slot] != bits {
            slot = (slot + 1) & mask;
        }
        slot
    }

    /// Insert a canonical bit pattern; returns true if it was new.
    #[inline]
    fn insert(&mut self, bits: u64) -> bool {
        self.insert_hashed(bits, splitmix64(bits))
    }

    /// [`insert`](Self::insert) with the probe hash (`splitmix64(bits)`)
    /// precomputed by the caller.
    #[inline]
    fn insert_hashed(&mut self, bits: u64, hash: u64) -> bool {
        debug_assert_ne!(bits, EMPTY_SLOT, "sentinel inserted as candidate");
        // Keep load at or below 7/8 so probes stay short.
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let slot = self.probe(bits, hash);
        if self.slots[slot] == EMPTY_SLOT {
            self.slots[slot] = bits;
            self.len += 1;
            true
        } else {
            false
        }
    }

    fn grow(&mut self) {
        let new_cap = (self.slots.len() * 2).max(Self::MIN_CAPACITY);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY_SLOT; new_cap]);
        for bits in old {
            if bits != EMPTY_SLOT {
                let slot = self.slot_of(bits);
                self.slots[slot] = bits;
            }
        }
    }

    /// All members in unspecified order.
    fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.iter().copied().filter(|&b| b != EMPTY_SLOT)
    }

    /// Canonical form: members sorted ascending by bit pattern.
    fn sorted(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.iter().collect();
        v.sort_unstable();
        v
    }

    fn estimated_bytes(&self) -> usize {
        self.slots.len() * 8
    }
}

impl FromIterator<u64> for CandidateSet {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let it = iter.into_iter();
        let mut s = CandidateSet::new();
        // Presize from the lower size hint so bulk rebuilds (trim survivor
        // lists, flat decodes) skip the grow-rehash chain. Capacity never
        // affects the canonical (sorted-member) state.
        let (lower, _) = it.size_hint();
        if lower > 0 {
            let cap = (lower * 8 / 7 + 1)
                .next_power_of_two()
                .max(Self::MIN_CAPACITY);
            s.slots = vec![EMPTY_SLOT; cap];
        }
        for bits in it {
            s.insert(bits);
        }
        s
    }
}

/// Mergeable heavy-hitters sketch (the partial state of the two-step
/// aggregate).
#[derive(Debug, Clone)]
pub struct HeavyHitters {
    width: usize,
    depth: usize,
    /// Candidate-set capacity.
    limit: usize,
    /// True once any trim evicted candidates (sticky, merged with OR).
    trimmed: bool,
    /// Total observations folded in (saturating on overflow).
    total: u64,
    /// `depth × width` counters, row-major (saturating on overflow).
    rows: Vec<u64>,
    /// Canonical bit patterns of candidate values.
    candidates: CandidateSet,
}

/// Two sketches are equal when their canonical states match; the candidate
/// table's internal layout (capacity, probe order) is irrelevant.
impl PartialEq for HeavyHitters {
    fn eq(&self, other: &Self) -> bool {
        self.width == other.width
            && self.depth == other.depth
            && self.limit == other.limit
            && self.trimmed == other.trimmed
            && self.total == other.total
            && self.rows == other.rows
            && self.candidates.sorted() == other.candidates.sorted()
    }
}

impl HeavyHitters {
    /// An empty sketch with a `depth × width` count-min matrix and at most
    /// `limit` tracked candidates.
    ///
    /// # Panics
    /// Panics if `width < 8`, `depth` is outside `1..=8`, or `limit == 0`.
    pub fn new(width: usize, depth: usize, limit: usize) -> Self {
        assert!(width >= 8, "count-min width must be at least 8");
        assert!((1..=8).contains(&depth), "count-min depth must be in 1..=8");
        assert!(limit > 0, "heavy-hitter candidate limit must be positive");
        HeavyHitters {
            width,
            depth,
            limit,
            trimmed: false,
            total: 0,
            rows: vec![0; width * depth],
            candidates: CandidateSet::new(),
        }
    }

    /// Row-`d` column for a value's canonical bits. For power-of-two
    /// widths (the common configuration) the modulo reduces to a mask —
    /// same column, no division in the estimate/trim hot path.
    #[inline]
    fn column(&self, bits: u64, d: usize) -> usize {
        let h = splitmix64(bits ^ (0xC0FF_EE00 + d as u64));
        if self.width.is_power_of_two() {
            h as usize & (self.width - 1)
        } else {
            (h % self.width as u64) as usize
        }
    }

    /// Fold one observation in.
    pub fn push(&mut self, value: f64) {
        let bits = canonical_bits(value);
        self.total = self.total.saturating_add(1);
        for d in 0..self.depth {
            let col = self.column(bits, d);
            let c = &mut self.rows[d * self.width + col];
            *c = c.saturating_add(1);
        }
        // The set only grows past the trim threshold on a *new* insert, so
        // trimming is a no-op (an early-return len check) otherwise.
        if self.candidates.insert(bits) {
            self.trim();
        }
    }

    /// [`push`](Self::push) with the hashing precomputed by
    /// [`FoldCtx::prepare`](crate::FoldCtx) — bit-identical state, the
    /// per-value `splitmix64` rounds (per matrix row and for the candidate
    /// probe) hoisted out. The prepared value must come from a `FoldCtx`
    /// built with this sketch's configuration.
    #[inline]
    pub(crate) fn push_prepared(&mut self, pv: &PreparedValue) {
        self.total = self.total.saturating_add(1);
        for (row, &col) in self
            .rows
            .chunks_exact_mut(self.width)
            .zip(&pv.cols[..self.depth])
        {
            let c = &mut row[col as usize];
            *c = c.saturating_add(1);
        }
        if self.candidates.insert_hashed(pv.bits, pv.hash) {
            self.trim();
        }
    }

    /// Fold a run of prepared observations in — bit-identical to calling
    /// [`push_prepared`](Self::push_prepared) once per element in order.
    /// The count-min updates apply matrix-row-major across the batch
    /// (saturating adds commute, so the matrix state is order-invariant),
    /// and candidate inserts keep the per-insert trim schedule so the
    /// eviction sequence matches the one-at-a-time fold exactly.
    pub(crate) fn push_prepared_batch(&mut self, pvs: &[PreparedValue]) {
        self.total = self.total.saturating_add(pvs.len() as u64);
        for (d, row) in self.rows.chunks_exact_mut(self.width).enumerate() {
            for pv in pvs {
                let c = &mut row[pv.cols[d] as usize];
                *c = c.saturating_add(1);
            }
        }
        for pv in pvs {
            if self.candidates.insert_hashed(pv.bits, pv.hash) {
                self.trim();
            }
        }
    }

    /// Refuse to merge differently-configured sketches (see
    /// [`try_merge`](Self::try_merge)).
    pub(crate) fn check_config(&self, other: &HeavyHitters) -> Result<(), MergeError> {
        if self.width == other.width && self.depth == other.depth && self.limit == other.limit {
            Ok(())
        } else {
            Err(MergeError::ConfigMismatch {
                sketch: "heavy_hitters",
            })
        }
    }

    /// Merge another sketch into this one (entrywise matrix add, candidate
    /// union, deterministic re-trim). On a configuration mismatch —
    /// reachable with wire-delivered partials from a misconfigured peer —
    /// returns an error and leaves `self` untouched.
    pub fn try_merge(&mut self, other: &HeavyHitters) -> Result<(), MergeError> {
        self.check_config(other)?;
        self.total = self.total.saturating_add(other.total);
        self.trimmed |= other.trimmed;
        for (a, &b) in self.rows.iter_mut().zip(&other.rows) {
            *a = a.saturating_add(b);
        }
        for bits in other.candidates.iter() {
            self.candidates.insert(bits);
        }
        self.trim();
        Ok(())
    }

    /// Merge another sketch into this one.
    ///
    /// # Panics
    /// Panics if the two sketches were configured differently; use
    /// [`try_merge`](Self::try_merge) when the other side arrived over the
    /// wire.
    pub fn merge(&mut self, other: &HeavyHitters) {
        if let Err(e) = self.try_merge(other) {
            panic!("{e} (HeavyHitters::merge)");
        }
    }

    /// Amortized eviction: once the set exceeds twice its cap, cut it back
    /// to the cap in one pass, dropping the smallest `(estimate, bits)`
    /// first. Evictions never touch the matrix, so batching them is
    /// equivalent to evicting one at a time. A selection partition (not a
    /// full sort) finds the survivors: ranks are distinct (bits break
    /// ties), so the surviving *set* — and therefore the canonical state —
    /// is deterministic regardless of partition order.
    fn trim(&mut self) {
        if self.candidates.len() <= 2 * self.limit {
            return;
        }
        let mut ranked: Vec<(u64, u64)> = Vec::with_capacity(self.candidates.len());
        ranked.extend(
            self.candidates
                .iter()
                .map(|bits| (self.estimate_bits(bits), bits)),
        );
        let cut = ranked.len() - self.limit;
        ranked.select_nth_unstable(cut - 1);
        // Survivors get a table sized for the full grow-to-`2·limit+1`
        // oscillation, so the inserts between consecutive trims never
        // trigger a grow-rehash.
        let mut survivors = CandidateSet::with_capacity_for(2 * self.limit + 1);
        for &(_, bits) in &ranked[cut..] {
            survivors.insert(bits);
        }
        self.candidates = survivors;
        self.trimmed = true;
    }

    /// Count-min point estimate for a canonical bit pattern.
    fn estimate_bits(&self, bits: u64) -> u64 {
        (0..self.depth)
            .map(|d| self.rows[d * self.width + self.column(bits, d)])
            .min()
            .unwrap_or(0)
    }

    /// The accessor: frequency estimate for a specific value (never below
    /// the true count).
    pub fn estimate(&self, value: f64) -> u64 {
        self.estimate_bits(canonical_bits(value))
    }

    /// Overcount bound that holds with probability `1 − 2^−depth`
    /// (saturating: totals near `u64::MAX` report `u64::MAX/width`-ish
    /// bounds instead of wrapping to tiny ones).
    pub fn error_bound(&self) -> u64 {
        self.total.saturating_mul(2).div_ceil(self.width as u64)
    }

    /// Total observations folded in.
    pub fn count(&self) -> u64 {
        self.total
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// True once candidate eviction has fired in this sketch's history
    /// (its own trims or any merged-in partial's). While false, the
    /// candidate set enumerates *every* distinct value folded in.
    #[inline]
    pub fn is_trimmed(&self) -> bool {
        self.trimmed
    }

    /// The accessor: the `k` most frequent candidate values, ordered by
    /// descending estimate (ties broken by ascending value for
    /// determinism). See [`TopKEntry`] for the shorter-than-`k` contract;
    /// [`top_k_report`](Self::top_k_report) carries the truncation signal.
    pub fn top_k(&self, k: usize) -> Vec<TopKEntry> {
        let error_bound = self.error_bound();
        let mut entries: Vec<(u64, u64)> = self
            .candidates
            .sorted()
            .into_iter()
            .map(|bits| (self.estimate_bits(bits), bits))
            .collect();
        entries.sort_by(|a, b| {
            b.0.cmp(&a.0)
                .then_with(|| f64::from_bits(a.1).total_cmp(&f64::from_bits(b.1)))
        });
        entries
            .into_iter()
            .take(k)
            .map(|(count, bits)| TopKEntry {
                value: f64::from_bits(bits),
                count,
                error_bound,
            })
            .collect()
    }

    /// [`top_k`](Self::top_k) plus the completeness signal: `truncated`
    /// is set when eviction may have dropped true heavy values, so a list
    /// shorter than `k` cannot be mistaken for ground truth.
    pub fn top_k_report(&self, k: usize) -> TopKResult {
        TopKResult {
            entries: self.top_k(k),
            truncated: self.trimmed,
        }
    }

    /// Approximate in-memory footprint, for cache budgets.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<HeavyHitters>()
            + self.rows.len() * 8
            + self.candidates.estimated_bytes()
    }

    /// Exact serialized footprint: the flat wire form's byte length.
    pub fn wire_bytes(&self) -> usize {
        self.flat_words() * 8
    }

    /// Words of this sketch's flat encoding (DESIGN.md §15): a 6-word
    /// header (config, total, candidate count, flags), the count-min
    /// matrix row-major, then candidates in sorted bit order.
    pub fn flat_words(&self) -> usize {
        6 + self.rows.len() + self.candidates.len()
    }

    /// Append the flat wire form to `w`. Equal sketches encode to
    /// identical words (candidates drain in canonical sorted order).
    pub fn flat_encode(&self, w: &mut WordWriter) {
        w.push_u64(self.width as u64);
        w.push_u64(self.depth as u64);
        w.push_u64(self.limit as u64);
        w.push_u64(self.total);
        w.push_u64(self.candidates.len() as u64);
        w.push_u64(self.trimmed as u64);
        w.extend_u64(&self.rows);
        for bits in self.candidates.sorted() {
            w.push_u64(bits);
        }
    }

    /// Decode a flat wire form, validating the same invariants as the
    /// constructor plus the canonical candidate form (sorted, canonical
    /// bit patterns only — which also keeps the table's `u64::MAX`
    /// sentinel unreachable). Never panics on corrupt input.
    pub fn flat_decode(r: &mut WordReader) -> Result<Self, FlatError> {
        let width = r.u64()? as usize;
        let depth = r.u64()? as usize;
        let limit = r.u64()? as usize;
        let total = r.u64()?;
        let n_candidates = r.u64()? as usize;
        let flags = r.u64()?;
        if width < 8 || !(1..=8).contains(&depth) || limit == 0 {
            return Err(FlatError::Corrupt("invalid heavy-hitter config"));
        }
        if n_candidates > limit.saturating_mul(2) {
            return Err(FlatError::Corrupt("heavy-hitter candidate overflow"));
        }
        if flags > 1 {
            return Err(FlatError::Corrupt("unknown heavy-hitter flags"));
        }
        let cells = width
            .checked_mul(depth)
            .ok_or(FlatError::Corrupt("heavy-hitter matrix size overflow"))?;
        let rows = r.take(cells)?.to_vec();
        let mut candidates = CandidateSet::new();
        let mut prev: Option<u64> = None;
        for &bits in r.take(n_candidates)? {
            if prev.is_some_and(|p| p >= bits) {
                return Err(FlatError::Corrupt("heavy-hitter candidates not sorted"));
            }
            if !is_canonical_bits(bits) {
                return Err(FlatError::Corrupt("non-canonical heavy-hitter candidate"));
            }
            prev = Some(bits);
            candidates.insert(bits);
        }
        Ok(HeavyHitters {
            width,
            depth,
            limit,
            trimmed: flags == 1,
            total,
            rows,
            candidates,
        })
    }
}

/// Wire mirror: matrix row-major, candidates in sorted bit order.
#[derive(Serialize, Deserialize)]
struct WireHh {
    width: u64,
    depth: u64,
    limit: u64,
    trimmed: bool,
    total: u64,
    rows: Vec<u64>,
    candidates: Vec<u64>,
}

impl serde::Serialize for HeavyHitters {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        WireHh {
            width: self.width as u64,
            depth: self.depth as u64,
            limit: self.limit as u64,
            trimmed: self.trimmed,
            total: self.total,
            rows: self.rows.clone(),
            candidates: self.candidates.sorted(),
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for HeavyHitters {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let w = WireHh::deserialize(deserializer)?;
        let (width, depth, limit) = (w.width as usize, w.depth as usize, w.limit as usize);
        if width < 8 || !(1..=8).contains(&depth) || limit == 0 {
            return Err(serde::de::Error::custom("invalid heavy-hitter config"));
        }
        if w.rows.len() != width * depth || w.candidates.len() > 2 * limit {
            return Err(serde::de::Error::custom("heavy-hitter payload size"));
        }
        if w.candidates.iter().any(|&b| !is_canonical_bits(b)) {
            return Err(serde::de::Error::custom(
                "non-canonical heavy-hitter candidate",
            ));
        }
        Ok(HeavyHitters {
            width,
            depth,
            limit,
            trimmed: w.trimmed,
            total: w.total,
            rows: w.rows,
            candidates: w.candidates.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: impl IntoIterator<Item = f64>) -> HeavyHitters {
        let mut s = HeavyHitters::new(64, 3, 32);
        for v in values {
            s.push(v);
        }
        s
    }

    #[test]
    fn candidate_set_inserts_and_canonicalizes() {
        let mut s = CandidateSet::new();
        for round in 0..3 {
            for bits in [0u64, 7, 1 << 40, 3] {
                let fresh = s.insert(bits);
                assert_eq!(fresh, round == 0, "bits {bits} round {round}");
            }
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.sorted(), vec![0, 3, 7, 1 << 40]);
    }

    #[test]
    fn candidate_set_survives_growth() {
        let mut s = CandidateSet::new();
        for i in 0..500u64 {
            assert!(s.insert(splitmix64(i)));
        }
        assert_eq!(s.len(), 500);
        let sorted = s.sorted();
        assert_eq!(sorted.len(), 500);
        assert!(sorted.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn estimates_never_undercount() {
        // A skewed stream: value i appears (20 - i) times.
        let mut stream = Vec::new();
        for i in 0..20 {
            for _ in 0..(20 - i) {
                stream.push(i as f64);
            }
        }
        let s = sketch_of(stream.iter().copied());
        for i in 0..20u64 {
            let true_count = 20 - i;
            let est = s.estimate(i as f64);
            assert!(est >= true_count, "undercount for {i}");
            assert!(
                est <= true_count + s.error_bound(),
                "overcount beyond bound"
            );
        }
    }

    #[test]
    fn top_k_finds_the_heavy_values() {
        let mut stream: Vec<f64> = (0..30).map(f64::from).collect();
        for _ in 0..50 {
            stream.push(7.0);
            stream.push(13.0);
        }
        let top = sketch_of(stream.iter().copied()).top_k(2);
        let values: Vec<f64> = top.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![7.0, 13.0]);
        assert!(top[0].count >= 51);
    }

    #[test]
    fn merge_is_bit_identical_within_cap() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 7) % 30) as f64).collect();
        for split in [0, 1, 100, 200] {
            let (lo, hi) = values.split_at(split);
            let mut merged = sketch_of(lo.iter().copied());
            merged.merge(&sketch_of(hi.iter().copied()));
            assert_eq!(merged, sketch_of(values.iter().copied()), "split {split}");
        }
    }

    #[test]
    fn candidate_list_respects_cap_and_reports_trim() {
        let s = sketch_of((0..200).map(f64::from));
        assert!(s.candidates.len() <= 2 * 32, "hysteresis ceiling");
        assert_eq!(s.count(), 200);
        assert!(s.is_trimmed(), "200 distinct values must trim a 32-cap set");
        let report = s.top_k_report(64);
        assert!(report.truncated);
        assert!(report.entries.len() < 64);
        // Within the cap: no trim, a short top-k is ground truth.
        let small = sketch_of((0..10).map(f64::from));
        assert!(!small.is_trimmed());
        let report = small.top_k_report(64);
        assert!(!report.truncated);
        assert_eq!(report.entries.len(), 10);
    }

    #[test]
    fn trimmed_flag_survives_merge_and_wire() {
        let trimmed = sketch_of((0..200).map(f64::from));
        let mut clean = sketch_of([1.0, 2.0]);
        assert!(!clean.is_trimmed());
        clean.merge(&trimmed);
        assert!(clean.is_trimmed(), "trim flag must be sticky across merge");
        let json = serde_json::to_string(&clean).unwrap();
        let back: HeavyHitters = serde_json::from_str(&json).unwrap();
        assert!(back.is_trimmed());
    }

    #[test]
    #[should_panic(expected = "sketch config mismatch")]
    fn merge_rejects_config_mismatch() {
        let mut a = HeavyHitters::new(64, 3, 32);
        a.merge(&HeavyHitters::new(64, 4, 32));
    }

    #[test]
    fn try_merge_errors_without_mutating() {
        let mut a = sketch_of([1.0, 2.0, 3.0]);
        let before = a.clone();
        let err = a.try_merge(&HeavyHitters::new(64, 3, 64)).unwrap_err();
        assert_eq!(
            err,
            MergeError::ConfigMismatch {
                sketch: "heavy_hitters"
            }
        );
        assert_eq!(a, before, "failed merge must leave the receiver intact");
        assert!(a.try_merge(&sketch_of([4.0])).is_ok());
        assert_eq!(a.count(), 4);
    }

    /// A sketch with an arbitrary (huge) total, built through the wire
    /// decoder — the only way to reach counter-boundary states.
    fn with_total(total: u64) -> HeavyHitters {
        let mut w = WordWriter::new();
        let mut s = HeavyHitters::new(8, 1, 4);
        s.push(1.0);
        s.flat_encode(&mut w);
        let mut words = w.into_words();
        words[3] = total;
        // Saturate the single matrix counter too.
        let row = words[6..14].iter().position(|&c| c != 0).unwrap();
        words[6 + row] = total;
        HeavyHitters::flat_decode(&mut WordReader::new(&words)).unwrap()
    }

    #[test]
    fn arithmetic_saturates_at_counter_boundaries() {
        // error_bound: 2 * total would wrap for totals ≥ 2^63.
        let big = with_total(u64::MAX - 1);
        assert_eq!(big.error_bound(), u64::MAX.div_ceil(8));
        // push and merge saturate instead of wrapping.
        let mut s = with_total(u64::MAX - 1);
        s.push(1.0);
        s.push(1.0);
        assert_eq!(s.count(), u64::MAX);
        let mut m = with_total(u64::MAX - 1);
        m.merge(&big);
        assert_eq!(m.count(), u64::MAX);
        assert_eq!(
            m.estimate(1.0),
            u64::MAX,
            "matrix add saturated, not wrapped"
        );
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let s = sketch_of((0..60).map(|i| (i % 11) as f64 - 5.0));
        let json = serde_json::to_string(&s).unwrap();
        let back: HeavyHitters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn serde_rejects_noncanonical_candidates() {
        let s = sketch_of([1.0, 2.0]);
        let json = serde_json::to_string(&s).unwrap();
        // Smuggle the sentinel in as a candidate.
        let bad = json.replace(
            "\"candidates\":[",
            &format!("\"candidates\":[{},", u64::MAX),
        );
        assert!(serde_json::from_str::<HeavyHitters>(&bad).is_err());
    }

    #[test]
    fn flat_roundtrip_preserves_state_and_length() {
        let s = sketch_of((0..60).map(|i| (i % 11) as f64 - 5.0));
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        assert_eq!(w.len(), s.flat_words());
        assert_eq!(w.len() * 8, s.wire_bytes());
        let words = w.into_words();
        let mut r = WordReader::new(&words);
        let back = HeavyHitters::flat_decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn flat_decode_rejects_corrupt_buffers() {
        let s = sketch_of((0..10).map(f64::from));
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        let words = w.into_words();
        for cut in 0..words.len() {
            let mut r = WordReader::new(&words[..cut]);
            assert!(HeavyHitters::flat_decode(&mut r).is_err(), "cut {cut}");
        }
        // A zero-depth config is rejected.
        let mut bad = words.clone();
        bad[1] = 0;
        assert!(HeavyHitters::flat_decode(&mut WordReader::new(&bad)).is_err());
        // More candidates than the hysteresis ceiling is rejected.
        let mut bad = words.clone();
        bad[4] = 1000;
        assert!(HeavyHitters::flat_decode(&mut WordReader::new(&bad)).is_err());
        // Unknown flag bits are rejected.
        let mut bad = words.clone();
        bad[5] = 2;
        assert!(HeavyHitters::flat_decode(&mut WordReader::new(&bad)).is_err());
        // A non-canonical candidate (the table sentinel) is rejected.
        let mut bad = words;
        *bad.last_mut().unwrap() = u64::MAX;
        assert!(HeavyHitters::flat_decode(&mut WordReader::new(&bad)).is_err());
    }
}
