//! Count-min + candidate-list heavy-hitters sketch.
//!
//! Frequencies live in a `depth × width` count-min matrix: every observation
//! increments one counter per row (chosen by independent hashes of the
//! value), and a point query takes the minimum across rows — an estimate
//! that never undercounts and overcounts by at most `2·total/width` with
//! probability `1 − 2^−depth`. The matrix merges entrywise, so it is exactly
//! merge-order invariant.
//!
//! A count-min matrix alone cannot *enumerate* the heavy values, so the
//! sketch also carries a capped candidate list of values actually seen.
//! Eviction is deterministic — drop candidates with the smallest
//! `(estimate, value bits)` — and amortized: the list may grow to twice its
//! cap before a one-pass trim cuts it back, so saturated streams pay O(1)
//! amortized per push instead of a full rescan. As long as the number of
//! distinct values stays within the cap (the intended regime: quantized or
//! categorical attributes, cf. the generator's `value_quantum`) no eviction
//! ever fires and the list is bit-for-bit merge-order invariant. Beyond the
//! cap the list degrades to a best-effort top set while the matrix keeps
//! its guarantees.

use crate::hash::{canonical_bits, splitmix64};
use serde::{Deserialize, Serialize};
use stash_flat::{FlatError, WordReader, WordWriter};
use std::collections::BTreeSet;

/// One entry of a top-K answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKEntry {
    /// The candidate value.
    pub value: f64,
    /// Count-min frequency estimate; never below the true count.
    pub count: u64,
    /// Overcount bound: the true count is within `[count − error_bound,
    /// count]` with probability `1 − 2^−depth`.
    pub error_bound: u64,
}

/// Mergeable heavy-hitters sketch (the partial state of the two-step
/// aggregate).
#[derive(Debug, Clone, PartialEq)]
pub struct HeavyHitters {
    width: usize,
    depth: usize,
    /// Candidate-list capacity.
    limit: usize,
    /// Total observations folded in.
    total: u64,
    /// `depth × width` counters, row-major.
    rows: Vec<u64>,
    /// Canonical bit patterns of candidate values, sorted by construction.
    candidates: BTreeSet<u64>,
}

impl HeavyHitters {
    /// An empty sketch with a `depth × width` count-min matrix and at most
    /// `limit` tracked candidates.
    ///
    /// # Panics
    /// Panics if `width < 8`, `depth` is outside `1..=8`, or `limit == 0`.
    pub fn new(width: usize, depth: usize, limit: usize) -> Self {
        assert!(width >= 8, "count-min width must be at least 8");
        assert!((1..=8).contains(&depth), "count-min depth must be in 1..=8");
        assert!(limit > 0, "heavy-hitter candidate limit must be positive");
        HeavyHitters {
            width,
            depth,
            limit,
            total: 0,
            rows: vec![0; width * depth],
            candidates: BTreeSet::new(),
        }
    }

    /// Row-`d` column for a value's canonical bits.
    #[inline]
    fn column(&self, bits: u64, d: usize) -> usize {
        (splitmix64(bits ^ (0xC0FF_EE00 + d as u64)) % self.width as u64) as usize
    }

    /// Fold one observation in.
    pub fn push(&mut self, value: f64) {
        let bits = canonical_bits(value);
        self.total += 1;
        for d in 0..self.depth {
            let col = self.column(bits, d);
            self.rows[d * self.width + col] += 1;
        }
        self.candidates.insert(bits);
        self.trim();
    }

    /// Merge another sketch into this one (entrywise matrix add, candidate
    /// union, deterministic re-trim).
    ///
    /// # Panics
    /// Panics if the two sketches were configured differently.
    pub fn merge(&mut self, other: &HeavyHitters) {
        assert!(
            self.width == other.width && self.depth == other.depth && self.limit == other.limit,
            "sketch config mismatch in HeavyHitters::merge"
        );
        self.total += other.total;
        for (a, &b) in self.rows.iter_mut().zip(&other.rows) {
            *a += b;
        }
        for &bits in &other.candidates {
            self.candidates.insert(bits);
        }
        self.trim();
    }

    /// Amortized eviction: once the list exceeds twice its cap, cut it back
    /// to the cap in one pass, dropping the smallest `(estimate, bits)`
    /// first. Evictions never touch the matrix, so batching them is
    /// equivalent to evicting one at a time.
    fn trim(&mut self) {
        if self.candidates.len() <= 2 * self.limit {
            return;
        }
        let mut ranked: Vec<(u64, u64)> = self
            .candidates
            .iter()
            .map(|&bits| (self.estimate_bits(bits), bits))
            .collect();
        ranked.sort_unstable();
        for &(_, bits) in &ranked[..ranked.len() - self.limit] {
            self.candidates.remove(&bits);
        }
    }

    /// Count-min point estimate for a canonical bit pattern.
    fn estimate_bits(&self, bits: u64) -> u64 {
        (0..self.depth)
            .map(|d| self.rows[d * self.width + self.column(bits, d)])
            .min()
            .unwrap_or(0)
    }

    /// The accessor: frequency estimate for a specific value (never below
    /// the true count).
    pub fn estimate(&self, value: f64) -> u64 {
        self.estimate_bits(canonical_bits(value))
    }

    /// Overcount bound that holds with probability `1 − 2^−depth`.
    pub fn error_bound(&self) -> u64 {
        (2 * self.total).div_ceil(self.width as u64)
    }

    /// Total observations folded in.
    pub fn count(&self) -> u64 {
        self.total
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The accessor: the `k` most frequent candidate values, ordered by
    /// descending estimate (ties broken by ascending value for determinism).
    pub fn top_k(&self, k: usize) -> Vec<TopKEntry> {
        let error_bound = self.error_bound();
        let mut entries: Vec<(u64, u64)> = self
            .candidates
            .iter()
            .map(|&bits| (self.estimate_bits(bits), bits))
            .collect();
        entries.sort_by(|a, b| {
            b.0.cmp(&a.0)
                .then_with(|| f64::from_bits(a.1).total_cmp(&f64::from_bits(b.1)))
        });
        entries
            .into_iter()
            .take(k)
            .map(|(count, bits)| TopKEntry {
                value: f64::from_bits(bits),
                count,
                error_bound,
            })
            .collect()
    }

    /// Approximate in-memory footprint, for cache budgets.
    pub fn estimated_bytes(&self) -> usize {
        std::mem::size_of::<HeavyHitters>() + self.rows.len() * 8 + self.candidates.len() * 8
    }

    /// Exact serialized footprint: the flat wire form's byte length.
    pub fn wire_bytes(&self) -> usize {
        self.flat_words() * 8
    }

    /// Words of this sketch's flat encoding (DESIGN.md §15): a 5-word
    /// header (config, total, candidate count), the count-min matrix
    /// row-major, then candidates in sorted bit order.
    pub fn flat_words(&self) -> usize {
        5 + self.rows.len() + self.candidates.len()
    }

    /// Append the flat wire form to `w`. Equal sketches encode to
    /// identical words (candidate set is sorted by construction).
    pub fn flat_encode(&self, w: &mut WordWriter) {
        w.push_u64(self.width as u64);
        w.push_u64(self.depth as u64);
        w.push_u64(self.limit as u64);
        w.push_u64(self.total);
        w.push_u64(self.candidates.len() as u64);
        w.extend_u64(&self.rows);
        for &bits in &self.candidates {
            w.push_u64(bits);
        }
    }

    /// Decode a flat wire form, validating the same invariants as the
    /// constructor. Never panics on corrupt input.
    pub fn flat_decode(r: &mut WordReader) -> Result<Self, FlatError> {
        let width = r.u64()? as usize;
        let depth = r.u64()? as usize;
        let limit = r.u64()? as usize;
        let total = r.u64()?;
        let n_candidates = r.u64()? as usize;
        if width < 8 || !(1..=8).contains(&depth) || limit == 0 {
            return Err(FlatError::Corrupt("invalid heavy-hitter config"));
        }
        if n_candidates > limit.saturating_mul(2) {
            return Err(FlatError::Corrupt("heavy-hitter candidate overflow"));
        }
        let cells = width
            .checked_mul(depth)
            .ok_or(FlatError::Corrupt("heavy-hitter matrix size overflow"))?;
        let rows = r.take(cells)?.to_vec();
        let mut candidates = BTreeSet::new();
        let mut prev: Option<u64> = None;
        for &bits in r.take(n_candidates)? {
            if prev.is_some_and(|p| p >= bits) {
                return Err(FlatError::Corrupt("heavy-hitter candidates not sorted"));
            }
            prev = Some(bits);
            candidates.insert(bits);
        }
        Ok(HeavyHitters {
            width,
            depth,
            limit,
            total,
            rows,
            candidates,
        })
    }
}

/// Wire mirror: matrix row-major, candidates in sorted bit order.
#[derive(Serialize, Deserialize)]
struct WireHh {
    width: u64,
    depth: u64,
    limit: u64,
    total: u64,
    rows: Vec<u64>,
    candidates: Vec<u64>,
}

impl serde::Serialize for HeavyHitters {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        WireHh {
            width: self.width as u64,
            depth: self.depth as u64,
            limit: self.limit as u64,
            total: self.total,
            rows: self.rows.clone(),
            candidates: self.candidates.iter().copied().collect(),
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for HeavyHitters {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let w = WireHh::deserialize(deserializer)?;
        let (width, depth, limit) = (w.width as usize, w.depth as usize, w.limit as usize);
        if width < 8 || !(1..=8).contains(&depth) || limit == 0 {
            return Err(serde::de::Error::custom("invalid heavy-hitter config"));
        }
        if w.rows.len() != width * depth || w.candidates.len() > 2 * limit {
            return Err(serde::de::Error::custom("heavy-hitter payload size"));
        }
        Ok(HeavyHitters {
            width,
            depth,
            limit,
            total: w.total,
            rows: w.rows,
            candidates: w.candidates.into_iter().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sketch_of(values: impl IntoIterator<Item = f64>) -> HeavyHitters {
        let mut s = HeavyHitters::new(64, 3, 32);
        for v in values {
            s.push(v);
        }
        s
    }

    #[test]
    fn estimates_never_undercount() {
        // A skewed stream: value i appears (20 - i) times.
        let mut stream = Vec::new();
        for i in 0..20 {
            for _ in 0..(20 - i) {
                stream.push(i as f64);
            }
        }
        let s = sketch_of(stream.iter().copied());
        for i in 0..20u64 {
            let true_count = 20 - i;
            let est = s.estimate(i as f64);
            assert!(est >= true_count, "undercount for {i}");
            assert!(
                est <= true_count + s.error_bound(),
                "overcount beyond bound"
            );
        }
    }

    #[test]
    fn top_k_finds_the_heavy_values() {
        let mut stream: Vec<f64> = (0..30).map(f64::from).collect();
        for _ in 0..50 {
            stream.push(7.0);
            stream.push(13.0);
        }
        let top = sketch_of(stream.iter().copied()).top_k(2);
        let values: Vec<f64> = top.iter().map(|e| e.value).collect();
        assert_eq!(values, vec![7.0, 13.0]);
        assert!(top[0].count >= 51);
    }

    #[test]
    fn merge_is_bit_identical_within_cap() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 7) % 30) as f64).collect();
        for split in [0, 1, 100, 200] {
            let (lo, hi) = values.split_at(split);
            let mut merged = sketch_of(lo.iter().copied());
            merged.merge(&sketch_of(hi.iter().copied()));
            assert_eq!(merged, sketch_of(values.iter().copied()), "split {split}");
        }
    }

    #[test]
    fn candidate_list_respects_cap() {
        let s = sketch_of((0..200).map(f64::from));
        assert!(s.candidates.len() <= 2 * 32, "hysteresis ceiling");
        assert_eq!(s.count(), 200);
    }

    #[test]
    #[should_panic(expected = "sketch config mismatch")]
    fn merge_rejects_config_mismatch() {
        let mut a = HeavyHitters::new(64, 3, 32);
        a.merge(&HeavyHitters::new(64, 4, 32));
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let s = sketch_of((0..60).map(|i| (i % 11) as f64 - 5.0));
        let json = serde_json::to_string(&s).unwrap();
        let back: HeavyHitters = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }

    #[test]
    fn flat_roundtrip_preserves_state_and_length() {
        let s = sketch_of((0..60).map(|i| (i % 11) as f64 - 5.0));
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        assert_eq!(w.len(), s.flat_words());
        assert_eq!(w.len() * 8, s.wire_bytes());
        let words = w.into_words();
        let mut r = WordReader::new(&words);
        let back = HeavyHitters::flat_decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn flat_decode_rejects_corrupt_buffers() {
        let s = sketch_of((0..10).map(f64::from));
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        let words = w.into_words();
        for cut in 0..words.len() {
            let mut r = WordReader::new(&words[..cut]);
            assert!(HeavyHitters::flat_decode(&mut r).is_err(), "cut {cut}");
        }
        // A zero-depth config is rejected.
        let mut bad = words.clone();
        bad[1] = 0;
        assert!(HeavyHitters::flat_decode(&mut WordReader::new(&bad)).is_err());
        // More candidates than the hysteresis ceiling is rejected.
        let mut bad = words;
        bad[4] = 1000;
        assert!(HeavyHitters::flat_decode(&mut WordReader::new(&bad)).is_err());
    }
}
