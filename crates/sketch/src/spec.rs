//! Configuration for sketch-valued Cells.
//!
//! The spec is carried inside `StashConfig` and threaded down to the scan
//! kernel, so every sketch in a deployment is built with identical
//! parameters — a precondition for merging (sketches panic on config
//! mismatch, mirroring the schema-mismatch panic of the exact summaries).

use serde::value::Value;
use serde::{Deserialize, Serialize};

/// How the scan kernel folds rows into per-group sketch bundles.
///
/// The kernel emits one Cell per resolution group, and every valid row
/// belongs to *every* group — so the fold cost is `rows × groups` pushes
/// unless coarser groups reuse finer ones.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SketchFoldMode {
    /// Fold every row into every group's bundle (the default). Sketch state
    /// is bit-for-bit identical to folding the raw rows directly into each
    /// Cell — the strongest reproducibility property, at `rows × groups`
    /// push cost.
    #[default]
    PerGroup,
    /// Fold rows only at the finest (spatial, temporal) group and derive
    /// every coarser group's bundles by *merging* the finest Cells' sketches
    /// (≈ `rows + cells` work instead of `rows × groups`). Quantile and
    /// distinct sketches are exactly merge-invariant, so their state is
    /// still bit-identical to a raw fold; heavy-hitter *candidate sets* may
    /// differ from a raw fold once an attribute exceeds the candidate cap
    /// (the count-min matrix and its error bounds are unaffected). The
    /// trade is spelled out in DESIGN.md §14.
    FinestThenMerge,
}

impl SketchFoldMode {
    /// Canonical wire name.
    fn as_str(self) -> &'static str {
        match self {
            SketchFoldMode::PerGroup => "per_group",
            SketchFoldMode::FinestThenMerge => "finest_then_merge",
        }
    }
}

impl serde::Serialize for SketchFoldMode {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

impl<'de> serde::Deserialize<'de> for SketchFoldMode {
    fn from_value(v: &Value) -> Result<Self, serde::de::DeError> {
        match v {
            // Configs written before fold modes existed.
            Value::Null => Ok(SketchFoldMode::PerGroup),
            Value::String(s) if s == "per_group" => Ok(SketchFoldMode::PerGroup),
            Value::String(s) if s == "finest_then_merge" => Ok(SketchFoldMode::FinestThenMerge),
            other => Err(serde::de::DeError::message(format!(
                "sketch.fold_mode: expected \"per_group\" or \"finest_then_merge\", got {}",
                other.kind()
            ))),
        }
    }
}

/// Knobs for the per-attribute sketch bundle. `enabled: false` (the
/// default) keeps Cells exact-only and bit-for-bit identical to a build
/// without this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct SketchSpec {
    /// Master switch; when off, no sketch state is allocated anywhere.
    pub enabled: bool,
    /// Initial relative-error target of the quantile sketch.
    pub quantile_alpha: f64,
    /// Log-bucket budget of the quantile sketch; compaction keeps the table
    /// at or below this, widening the error bound instead of growing.
    pub quantile_max_buckets: usize,
    /// log₂ of the HLL register count (error ≈ 1.04/√2^p).
    pub hll_precision: u8,
    /// Count-min matrix width (overcount bound 2·total/width).
    pub cm_width: usize,
    /// Count-min matrix depth (bound failure probability 2^−depth).
    pub cm_depth: usize,
    /// Heavy-hitter candidate-list cap; exact merge invariance holds while
    /// the distinct values per attribute stay within it.
    pub hh_candidates: usize,
    /// How the scan kernel folds rows into group bundles (see
    /// [`SketchFoldMode`]).
    pub fold_mode: SketchFoldMode,
}

impl Default for SketchSpec {
    fn default() -> Self {
        SketchSpec::disabled()
    }
}

impl SketchSpec {
    /// Exact-only mode: no sketches anywhere (the default).
    pub fn disabled() -> Self {
        SketchSpec {
            enabled: false,
            ..SketchSpec::standard()
        }
    }

    /// Sketches on, with parameters sized for the simulated NAM workload:
    /// ~1% quantile error, ~6.5% distinct-count error, and a heavy-hitter
    /// cap that covers unit-quantized NAM attributes exactly.
    pub fn standard() -> Self {
        SketchSpec {
            enabled: true,
            quantile_alpha: 0.01,
            quantile_max_buckets: 64,
            hll_precision: 8,
            cm_width: 64,
            cm_depth: 3,
            hh_candidates: 256,
            fold_mode: SketchFoldMode::PerGroup,
        }
    }

    /// Validate parameter ranges (mirrors the panics of the sketch
    /// constructors, but as a `Result` for config loading).
    pub fn validate(&self) -> Result<(), String> {
        if !(self.quantile_alpha > 0.0 && self.quantile_alpha < 1.0) {
            return Err("sketch.quantile_alpha must be in (0, 1)".into());
        }
        if self.quantile_max_buckets < 4 {
            return Err("sketch.quantile_max_buckets must be at least 4".into());
        }
        if !(4..=16).contains(&self.hll_precision) {
            return Err("sketch.hll_precision must be in 4..=16".into());
        }
        if self.cm_width < 8 {
            return Err("sketch.cm_width must be at least 8".into());
        }
        if !(1..=8).contains(&self.cm_depth) {
            return Err("sketch.cm_depth must be in 1..=8".into());
        }
        if self.hh_candidates == 0 {
            return Err("sketch.hh_candidates must be positive".into());
        }
        Ok(())
    }
}

/// Wire mirror with every field present; hand-written `Deserialize` below
/// additionally accepts `Null`/missing (older configs) as "disabled".
#[derive(Serialize, Deserialize)]
struct WireSpec {
    enabled: bool,
    quantile_alpha: f64,
    quantile_max_buckets: u64,
    hll_precision: u8,
    cm_width: u64,
    cm_depth: u64,
    hh_candidates: u64,
    fold_mode: SketchFoldMode,
}

impl serde::Serialize for SketchSpec {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        WireSpec {
            enabled: self.enabled,
            quantile_alpha: self.quantile_alpha,
            quantile_max_buckets: self.quantile_max_buckets as u64,
            hll_precision: self.hll_precision,
            cm_width: self.cm_width as u64,
            cm_depth: self.cm_depth as u64,
            hh_candidates: self.hh_candidates as u64,
            fold_mode: self.fold_mode,
        }
        .serialize(serializer)
    }
}

impl<'de> serde::Deserialize<'de> for SketchSpec {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let v = deserializer.deserialize_value()?;
        if matches!(v, Value::Null) {
            // Configs written before sketches existed: exact-only.
            return Ok(SketchSpec::disabled());
        }
        let w = WireSpec::from_value(&v).map_err(serde::de::Error::custom)?;
        let spec = SketchSpec {
            enabled: w.enabled,
            quantile_alpha: w.quantile_alpha,
            quantile_max_buckets: w.quantile_max_buckets as usize,
            hll_precision: w.hll_precision,
            cm_width: w.cm_width as usize,
            cm_depth: w.cm_depth as usize,
            hh_candidates: w.hh_candidates as usize,
            fold_mode: w.fold_mode,
        };
        spec.validate().map_err(serde::de::Error::custom)?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_valid() {
        let spec = SketchSpec::default();
        assert!(!spec.enabled);
        assert!(spec.validate().is_ok());
        assert!(SketchSpec::standard().validate().is_ok());
    }

    #[test]
    fn null_deserializes_to_disabled() {
        let spec = SketchSpec::from_value(&Value::Null).unwrap();
        assert_eq!(spec, SketchSpec::disabled());
    }

    #[test]
    fn roundtrips_through_json() {
        let mut spec = SketchSpec::standard();
        for mode in [SketchFoldMode::PerGroup, SketchFoldMode::FinestThenMerge] {
            spec.fold_mode = mode;
            let json = serde_json::to_string(&spec).unwrap();
            let back: SketchSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec);
        }
    }

    #[test]
    fn fold_mode_defaults_and_rejects_unknown() {
        // Configs written before fold modes existed carry no key: PerGroup.
        let mut json = serde_json::to_string(&SketchSpec::standard()).unwrap();
        json = json.replace(",\"fold_mode\":\"per_group\"", "");
        assert!(!json.contains("fold_mode"));
        let back: SketchSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fold_mode, SketchFoldMode::PerGroup);
        // An unknown mode string is a config error, not a silent default.
        let bad = json.replace(
            "\"enabled\":true",
            "\"enabled\":true,\"fold_mode\":\"fastest\"",
        );
        assert!(serde_json::from_str::<SketchSpec>(&bad).is_err());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        for f in [
            |s: &mut SketchSpec| s.quantile_alpha = 1.5,
            |s: &mut SketchSpec| s.quantile_max_buckets = 2,
            |s: &mut SketchSpec| s.hll_precision = 30,
            |s: &mut SketchSpec| s.cm_width = 1,
            |s: &mut SketchSpec| s.cm_depth = 0,
            |s: &mut SketchSpec| s.hh_candidates = 0,
        ] {
            let mut spec = SketchSpec::standard();
            f(&mut spec);
            assert!(spec.validate().is_err());
        }
    }
}
