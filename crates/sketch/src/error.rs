//! Typed merge failures.
//!
//! Sketch partials travel on the wire (partials fragments, ingest deltas),
//! so a merge can meet state built by a *misconfigured or stale peer* — not
//! just programmer error. The fallible [`try_merge`](crate::AttrSketches::
//! try_merge) entry points return this error and leave the receiver
//! untouched; the panicking `merge` wrappers remain for call sites where
//! both sides are provably built from one local config.

use std::fmt;

/// A merge was refused because the two partials were built with different
/// sketch parameters. The receiving sketch is unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// `sketch` names the component that mismatched (`"quantile"`,
    /// `"distinct"`, `"heavy_hitters"`).
    ConfigMismatch {
        /// Which sketch component refused the merge.
        sketch: &'static str,
    },
    /// Two summaries carried different attribute counts — they were built
    /// from different dataset schemas and share no meaningful merge.
    SchemaWidth {
        /// Attribute count of the receiving summary.
        left: usize,
        /// Attribute count of the incoming summary.
        right: usize,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::ConfigMismatch { sketch } => {
                write!(f, "sketch config mismatch in {sketch} merge")
            }
            MergeError::SchemaWidth { left, right } => {
                write!(
                    f,
                    "schema width mismatch in summary merge: {left} vs {right} attrs"
                )
            }
        }
    }
}

impl std::error::Error for MergeError {}
