//! Mergeable sketches for sketch-valued Cells.
//!
//! STASH's exact per-attribute summaries (count/min/max/sum/sum²) are
//! decomposable, which is what makes roll-up queries answerable from cache —
//! but they cannot answer the percentile overlays, cardinality maps, and
//! top-K panels that interactive exploration fronts ask for. This crate adds
//! three *approximate* summaries with the same algebraic contract:
//!
//! * [`UddSketch`] — a UDDSketch-style log-bucketed quantile sketch with a
//!   bounded relative error that degrades predictably under compaction.
//! * [`DistinctSketch`] — a HyperLogLog register file with linear-counting
//!   small-range correction.
//! * [`HeavyHitters`] — a count-min matrix plus a capped candidate list for
//!   top-K attribute values.
//!
//! Each follows the two-step aggregate convention: the struct itself is the
//! **mergeable partial state** that lives inside Cells, travels in partials
//! fragments, and merges upward along the hierarchy; **accessors**
//! ([`UddSketch::quantile`], [`DistinctSketch::estimate`],
//! [`HeavyHitters::top_k`]) turn a partial into a final answer with an
//! explicit error bound. Merging never consults insertion order:
//! [`UddSketch`] keeps a canonical compaction level so its state is a pure
//! function of the inserted multiset, HLL registers merge by `max`, and the
//! count-min matrix merges entrywise. The heavy-hitter candidate list is
//! additionally bit-for-bit order-invariant whenever the number of distinct
//! values stays within its cap (the intended regime: quantized/categorical
//! attributes).
//!
//! Wire form is deterministic: every sketch serializes its buckets and
//! registers in a canonical sorted order, so equal states produce equal
//! bytes — the property the cluster's bit-for-bit equivalence tests lean on.
//!
//! Two fold entry points serve the scan kernel's hot path: [`FoldCtx`]
//! prepares each value once (hash, count-min columns, quantile bucket key)
//! so folding it into many groups skips the per-group recomputation, and
//! [`UddSketch::add_packed`] applies batched per-bucket counts in one step.
//! Merges come in two flavors: panicking `merge` for locally-built state
//! and fallible `try_merge` (returning [`MergeError`]) for partials that
//! arrived over the wire from a possibly misconfigured peer.

mod bundle;
mod distinct;
mod error;
mod fold;
mod hash;
mod heavy;
mod quantile;
mod spec;

pub use bundle::AttrSketches;
pub use distinct::{DistinctEstimate, DistinctSketch};
pub use error::MergeError;
pub use fold::{FoldCtx, PreparedValue};
pub use heavy::{HeavyHitters, TopKEntry, TopKResult};
pub use quantile::{QuantileEstimate, UddSketch};
pub use spec::{SketchFoldMode, SketchSpec};
