//! The per-attribute sketch bundle carried inside a Cell.

use crate::distinct::DistinctSketch;
use crate::heavy::HeavyHitters;
use crate::quantile::UddSketch;
use crate::spec::SketchSpec;
use serde::{Deserialize, Serialize};
use stash_flat::{FlatError, WordReader, WordWriter};

/// All three sketch partials for one attribute. Lives alongside the exact
/// `SummaryStats` of the attribute and obeys the same monoid contract:
/// freshly-constructed state is the identity, and merging bundles built
/// from partitions of a dataset yields the bundle of the whole (bit-for-bit
/// for quantiles and distinct counts; for heavy hitters, whenever distinct
/// values fit the candidate cap).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrSketches {
    pub quantile: UddSketch,
    pub distinct: DistinctSketch,
    pub heavy: HeavyHitters,
}

impl AttrSketches {
    /// Empty bundle configured per `spec`.
    pub fn new(spec: &SketchSpec) -> Self {
        AttrSketches {
            quantile: UddSketch::new(spec.quantile_alpha, spec.quantile_max_buckets),
            distinct: DistinctSketch::new(spec.hll_precision),
            heavy: HeavyHitters::new(spec.cm_width, spec.cm_depth, spec.hh_candidates),
        }
    }

    /// Fold one observation of this attribute into all three sketches.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.quantile.push(value);
        self.distinct.push(value);
        self.heavy.push(value);
    }

    /// Merge another bundle into this one.
    ///
    /// # Panics
    /// Panics if the bundles were configured differently.
    pub fn merge(&mut self, other: &AttrSketches) {
        self.quantile.merge(&other.quantile);
        self.distinct.merge(&other.distinct);
        self.heavy.merge(&other.heavy);
    }

    /// True if no observation has been folded in.
    pub fn is_empty(&self) -> bool {
        self.quantile.is_empty() && self.distinct.is_empty() && self.heavy.is_empty()
    }

    /// Approximate in-memory footprint, for cache budgets.
    pub fn estimated_bytes(&self) -> usize {
        self.quantile.estimated_bytes()
            + self.distinct.estimated_bytes()
            + self.heavy.estimated_bytes()
    }

    /// Exact serialized footprint: the flat wire form's byte length.
    pub fn wire_bytes(&self) -> usize {
        self.flat_words() * 8
    }

    /// Words of this bundle's flat encoding: the three sketches in
    /// sequence, each self-delimiting (DESIGN.md §15).
    pub fn flat_words(&self) -> usize {
        self.quantile.flat_words() + self.distinct.flat_words() + self.heavy.flat_words()
    }

    /// Append the flat wire form to `w`: quantile, then distinct, then
    /// heavy hitters.
    pub fn flat_encode(&self, w: &mut WordWriter) {
        self.quantile.flat_encode(w);
        self.distinct.flat_encode(w);
        self.heavy.flat_encode(w);
    }

    /// Decode a flat wire form. Never panics on corrupt input.
    pub fn flat_decode(r: &mut WordReader) -> Result<Self, FlatError> {
        Ok(AttrSketches {
            quantile: UddSketch::flat_decode(r)?,
            distinct: DistinctSketch::flat_decode(r)?,
            heavy: HeavyHitters::flat_decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_merge_equals_whole_fold() {
        let spec = SketchSpec::standard();
        let values: Vec<f64> = (0..300).map(|i| ((i * 31) % 60) as f64 - 30.0).collect();
        let mut whole = AttrSketches::new(&spec);
        for &v in &values {
            whole.push(v);
        }
        let (lo, hi) = values.split_at(120);
        let mut a = AttrSketches::new(&spec);
        for &v in lo {
            a.push(v);
        }
        let mut b = AttrSketches::new(&spec);
        for &v in hi {
            b.push(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn new_bundle_is_identity() {
        let spec = SketchSpec::standard();
        let mut s = AttrSketches::new(&spec);
        s.push(4.0);
        s.push(-1.5);
        let before = s.clone();
        s.merge(&AttrSketches::new(&spec));
        assert_eq!(s, before);
        assert!(AttrSketches::new(&spec).is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let spec = SketchSpec::standard();
        let mut s = AttrSketches::new(&spec);
        for i in 0..40 {
            s.push((i % 7) as f64);
        }
        let json = serde_json::to_string(&s).unwrap();
        let back: AttrSketches = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn flat_roundtrip_preserves_state_and_length() {
        let spec = SketchSpec::standard();
        let mut s = AttrSketches::new(&spec);
        for i in 0..40 {
            s.push((i % 7) as f64 - 2.0);
        }
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        assert_eq!(w.len(), s.flat_words());
        assert_eq!(w.len() * 8, s.wire_bytes());
        let words = w.into_words();
        let mut r = WordReader::new(&words);
        let back = AttrSketches::flat_decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }
}
