//! The per-attribute sketch bundle carried inside a Cell.

use crate::distinct::DistinctSketch;
use crate::error::MergeError;
use crate::fold::PreparedValue;
use crate::heavy::HeavyHitters;
use crate::quantile::UddSketch;
use crate::spec::SketchSpec;
use serde::{Deserialize, Serialize};
use stash_flat::{FlatError, WordReader, WordWriter};

/// All three sketch partials for one attribute. Lives alongside the exact
/// `SummaryStats` of the attribute and obeys the same monoid contract:
/// freshly-constructed state is the identity, and merging bundles built
/// from partitions of a dataset yields the bundle of the whole (bit-for-bit
/// for quantiles and distinct counts; for heavy hitters, whenever distinct
/// values fit the candidate cap).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttrSketches {
    pub quantile: UddSketch,
    pub distinct: DistinctSketch,
    pub heavy: HeavyHitters,
}

impl AttrSketches {
    /// Empty bundle configured per `spec`.
    pub fn new(spec: &SketchSpec) -> Self {
        AttrSketches {
            quantile: UddSketch::new(spec.quantile_alpha, spec.quantile_max_buckets),
            distinct: DistinctSketch::new(spec.hll_precision),
            heavy: HeavyHitters::new(spec.cm_width, spec.cm_depth, spec.hh_candidates),
        }
    }

    /// Fold one observation of this attribute into all three sketches.
    #[inline]
    pub fn push(&mut self, value: f64) {
        self.quantile.push(value);
        self.distinct.push(value);
        self.heavy.push(value);
    }

    /// Fold a [`prepared`](crate::FoldCtx::prepare) observation into the
    /// distinct and heavy-hitter sketches — bit-identical to the
    /// corresponding halves of [`push`](Self::push), with the per-value
    /// hashing done once by the caller. The *quantile* update is
    /// deliberately left out: batch it through
    /// [`add_quantile_batch`](Self::add_quantile_batch) keyed by
    /// [`PreparedValue::quantile_key`] (see the `fold` module docs).
    #[inline]
    pub fn push_prepared(&mut self, pv: &PreparedValue) {
        self.distinct.push_hashed(pv.hash);
        self.heavy.push_prepared(pv);
    }

    /// Fold a run of prepared observations into the distinct and
    /// heavy-hitter sketches — bit-identical to calling
    /// [`push_prepared`](Self::push_prepared) once per element in order,
    /// with per-value loop setup hoisted out of both sketches' hot paths.
    /// The quantile half stays deferred, exactly as for `push_prepared`.
    #[inline]
    pub fn push_prepared_batch(&mut self, pvs: &[PreparedValue]) {
        self.distinct
            .push_hashed_batch(pvs.iter().map(|pv| pv.hash));
        self.heavy.push_prepared_batch(pvs);
    }

    /// Fold `count` quantile observations sharing one packed bucket key in
    /// one step (the deferred half of [`push_prepared`](Self::push_prepared);
    /// see [`UddSketch::add_packed`]).
    #[inline]
    pub fn add_quantile_batch(&mut self, key: i64, count: u64) {
        self.quantile.add_packed(key, count);
    }

    /// Check that `other` was configured compatibly for merging, without
    /// mutating either bundle. Callers that merge *sequences* of bundles
    /// atomically (all-or-nothing) check every pair up front with this.
    pub fn check_config(&self, other: &AttrSketches) -> Result<(), MergeError> {
        self.quantile.check_config(&other.quantile)?;
        self.distinct.check_config(&other.distinct)?;
        self.heavy.check_config(&other.heavy)
    }

    /// Merge another bundle into this one. On any configuration mismatch —
    /// reachable with wire-delivered partials from a misconfigured peer —
    /// returns an error and leaves *all three* sketches untouched (configs
    /// are checked up front, so no partial merge is ever applied).
    pub fn try_merge(&mut self, other: &AttrSketches) -> Result<(), MergeError> {
        self.check_config(other)?;
        self.quantile
            .try_merge(&other.quantile)
            .expect("checked quantile config");
        self.distinct
            .try_merge(&other.distinct)
            .expect("checked distinct config");
        self.heavy
            .try_merge(&other.heavy)
            .expect("checked heavy-hitter config");
        Ok(())
    }

    /// Merge another bundle into this one.
    ///
    /// # Panics
    /// Panics if the bundles were configured differently; use
    /// [`try_merge`](Self::try_merge) when the other side arrived over the
    /// wire.
    pub fn merge(&mut self, other: &AttrSketches) {
        if let Err(e) = self.try_merge(other) {
            panic!("{e} (AttrSketches::merge)");
        }
    }

    /// True if no observation has been folded in.
    pub fn is_empty(&self) -> bool {
        self.quantile.is_empty() && self.distinct.is_empty() && self.heavy.is_empty()
    }

    /// Approximate in-memory footprint, for cache budgets.
    pub fn estimated_bytes(&self) -> usize {
        self.quantile.estimated_bytes()
            + self.distinct.estimated_bytes()
            + self.heavy.estimated_bytes()
    }

    /// Exact serialized footprint: the flat wire form's byte length.
    pub fn wire_bytes(&self) -> usize {
        self.flat_words() * 8
    }

    /// Words of this bundle's flat encoding: the three sketches in
    /// sequence, each self-delimiting (DESIGN.md §15).
    pub fn flat_words(&self) -> usize {
        self.quantile.flat_words() + self.distinct.flat_words() + self.heavy.flat_words()
    }

    /// Append the flat wire form to `w`: quantile, then distinct, then
    /// heavy hitters.
    pub fn flat_encode(&self, w: &mut WordWriter) {
        self.quantile.flat_encode(w);
        self.distinct.flat_encode(w);
        self.heavy.flat_encode(w);
    }

    /// Decode a flat wire form. Never panics on corrupt input.
    pub fn flat_decode(r: &mut WordReader) -> Result<Self, FlatError> {
        Ok(AttrSketches {
            quantile: UddSketch::flat_decode(r)?,
            distinct: DistinctSketch::flat_decode(r)?,
            heavy: HeavyHitters::flat_decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_merge_equals_whole_fold() {
        let spec = SketchSpec::standard();
        let values: Vec<f64> = (0..300).map(|i| ((i * 31) % 60) as f64 - 30.0).collect();
        let mut whole = AttrSketches::new(&spec);
        for &v in &values {
            whole.push(v);
        }
        let (lo, hi) = values.split_at(120);
        let mut a = AttrSketches::new(&spec);
        for &v in lo {
            a.push(v);
        }
        let mut b = AttrSketches::new(&spec);
        for &v in hi {
            b.push(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn new_bundle_is_identity() {
        let spec = SketchSpec::standard();
        let mut s = AttrSketches::new(&spec);
        s.push(4.0);
        s.push(-1.5);
        let before = s.clone();
        s.merge(&AttrSketches::new(&spec));
        assert_eq!(s, before);
        assert!(AttrSketches::new(&spec).is_empty());
        assert!(!s.is_empty());
    }

    #[test]
    fn prepared_fold_matches_push() {
        // push_prepared + a batched quantile apply must reproduce plain
        // push bit-for-bit.
        let spec = SketchSpec::standard();
        let ctx = crate::FoldCtx::new(&spec);
        let values: Vec<f64> = (0..200).map(|i| (i as f64) * 0.37 - 30.0).collect();
        let mut pushed = AttrSketches::new(&spec);
        let mut prepared = AttrSketches::new(&spec);
        let mut tally: Vec<(i64, u64)> = Vec::new();
        for &v in &values {
            pushed.push(v);
            let pv = ctx.prepare(v);
            prepared.push_prepared(&pv);
            match tally.iter_mut().find(|(k, _)| *k == pv.quantile_key()) {
                Some((_, c)) => *c += 1,
                None => tally.push((pv.quantile_key(), 1)),
            }
        }
        for (key, count) in tally {
            prepared.add_quantile_batch(key, count);
        }
        assert_eq!(prepared, pushed);
    }

    #[test]
    fn try_merge_rejects_any_component_mismatch() {
        let spec = SketchSpec::standard();
        let mut a = AttrSketches::new(&spec);
        a.push(1.0);
        let before = a.clone();
        for f in [
            |s: &mut SketchSpec| s.quantile_alpha = 0.02,
            |s: &mut SketchSpec| s.hll_precision = 9,
            |s: &mut SketchSpec| s.cm_depth = 4,
        ] {
            let mut other_spec = spec.clone();
            f(&mut other_spec);
            let err = a.try_merge(&AttrSketches::new(&other_spec)).unwrap_err();
            assert!(matches!(err, MergeError::ConfigMismatch { .. }));
            assert_eq!(a, before, "failed merge must leave the receiver intact");
        }
    }

    #[test]
    fn serde_roundtrip_preserves_state() {
        let spec = SketchSpec::standard();
        let mut s = AttrSketches::new(&spec);
        for i in 0..40 {
            s.push((i % 7) as f64);
        }
        let json = serde_json::to_string(&s).unwrap();
        let back: AttrSketches = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn flat_roundtrip_preserves_state_and_length() {
        let spec = SketchSpec::standard();
        let mut s = AttrSketches::new(&spec);
        for i in 0..40 {
            s.push((i % 7) as f64 - 2.0);
        }
        let mut w = WordWriter::new();
        s.flat_encode(&mut w);
        assert_eq!(w.len(), s.flat_words());
        assert_eq!(w.len() * 8, s.wire_bytes());
        let words = w.into_words();
        let mut r = WordReader::new(&words);
        let back = AttrSketches::flat_decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, s);
    }
}
