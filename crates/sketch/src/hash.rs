//! Deterministic value hashing shared by the distinct and heavy-hitter
//! sketches. Sketch state must be identical across nodes and across runs, so
//! hashing is a fixed function of the value's bit pattern — no per-process
//! seeds.

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Canonical bit pattern of an observation value: `-0.0` folds into `0.0`
/// and every NaN folds into one bit pattern, so equal-looking values always
/// hash (and compare) identically.
#[inline]
pub(crate) fn canonical_bits(v: f64) -> u64 {
    if v == 0.0 {
        0.0f64.to_bits()
    } else if v.is_nan() {
        f64::NAN.to_bits()
    } else {
        v.to_bits()
    }
}

/// Hash an observation value into a 64-bit digest.
#[inline]
pub(crate) fn hash_value(v: f64) -> u64 {
    splitmix64(canonical_bits(v))
}

/// True iff `bits` is a pattern [`canonical_bits`] can produce: not `-0.0`
/// and not a NaN payload other than the canonical one. Wire decoding
/// enforces this so the candidate table's empty-slot sentinel (`u64::MAX`,
/// a NaN payload) can never collide with a stored candidate.
#[inline]
pub(crate) fn is_canonical_bits(bits: u64) -> bool {
    bits == canonical_bits(f64::from_bits(bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_signs_collapse() {
        assert_eq!(hash_value(0.0), hash_value(-0.0));
    }

    #[test]
    fn canonical_bits_classification() {
        assert!(is_canonical_bits(0.0f64.to_bits()));
        assert!(is_canonical_bits(1.5f64.to_bits()));
        assert!(is_canonical_bits(f64::NAN.to_bits()));
        assert!(!is_canonical_bits((-0.0f64).to_bits()));
        // u64::MAX is a non-canonical NaN payload — the sentinel is safe.
        assert!(!is_canonical_bits(u64::MAX));
    }

    #[test]
    fn distinct_values_distinct_hashes() {
        // Not a universality proof, just a sanity sweep.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000 {
            assert!(seen.insert(hash_value(i as f64 * 0.5 - 100.0)));
        }
    }
}
