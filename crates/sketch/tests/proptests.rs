//! Merge laws for the sketch partials — the algebra that makes cached
//! hierarchical roll-ups of sketch-valued Cells answer like a direct fold
//! over the raw observations.

use proptest::prelude::*;
use stash_sketch::{AttrSketches, DistinctSketch, HeavyHitters, SketchSpec, UddSketch};

/// Unbounded-precision values: exercise the log-bucket and hash paths.
fn arb_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 0..max_len)
}

/// Quantized values with a small domain: the regime where the heavy-hitter
/// candidate list is exactly merge-order invariant.
fn arb_quantized(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-40i32..40).prop_map(|i| i as f64), 0..max_len)
}

fn udd_of(values: &[f64]) -> UddSketch {
    let mut s = UddSketch::new(0.02, 32);
    for &v in values {
        s.push(v);
    }
    s
}

fn hll_of(values: &[f64]) -> DistinctSketch {
    let mut s = DistinctSketch::new(6);
    for &v in values {
        s.push(v);
    }
    s
}

fn hh_of(values: &[f64]) -> HeavyHitters {
    let mut s = HeavyHitters::new(32, 3, 128);
    for &v in values {
        s.push(v);
    }
    s
}

fn bundle_of(values: &[f64]) -> AttrSketches {
    let mut s = AttrSketches::new(&SketchSpec::standard());
    for &v in values {
        s.push(v);
    }
    s
}

proptest! {
    #[test]
    fn udd_merge_commutes(a in arb_values(60), b in arb_values(60)) {
        let mut ab = udd_of(&a);
        ab.merge(&udd_of(&b));
        let mut ba = udd_of(&b);
        ba.merge(&udd_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn udd_merge_associates(a in arb_values(40), b in arb_values(40), c in arb_values(40)) {
        let mut left = udd_of(&a);
        left.merge(&udd_of(&b));
        left.merge(&udd_of(&c));
        let mut bc = udd_of(&b);
        bc.merge(&udd_of(&c));
        let mut right = udd_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn udd_partition_equals_whole(values in arb_values(120), split in 0usize..120) {
        let split = split.min(values.len());
        let (lo, hi) = values.split_at(split);
        let mut merged = udd_of(lo);
        merged.merge(&udd_of(hi));
        prop_assert_eq!(merged, udd_of(&values));
    }

    #[test]
    fn udd_quantile_is_within_bound(values in arb_values(120), q in 0.0f64..=1.0) {
        if values.is_empty() {
            return Ok(());
        }
        let s = udd_of(&values);
        let est = s.quantile(q).unwrap();
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((sorted.len() - 1) as f64 * q).floor() as usize;
        let exact = sorted[rank];
        prop_assert!(
            (est.value - exact).abs() <= est.relative_error * exact.abs() + 1e-9,
            "est {} exact {} bound {}", est.value, exact, est.relative_error
        );
    }

    #[test]
    fn hll_merge_commutes(a in arb_values(60), b in arb_values(60)) {
        let mut ab = hll_of(&a);
        ab.merge(&hll_of(&b));
        let mut ba = hll_of(&b);
        ba.merge(&hll_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn hll_partition_equals_whole(values in arb_values(120), split in 0usize..120) {
        let split = split.min(values.len());
        let (lo, hi) = values.split_at(split);
        let mut merged = hll_of(lo);
        merged.merge(&hll_of(hi));
        prop_assert_eq!(merged, hll_of(&values));
    }

    #[test]
    fn hll_merge_is_idempotent(values in arb_values(60)) {
        let s = hll_of(&values);
        let mut doubled = s.clone();
        doubled.merge(&s);
        prop_assert_eq!(doubled, s);
    }

    #[test]
    fn hh_merge_commutes_within_cap(a in arb_quantized(80), b in arb_quantized(80)) {
        let mut ab = hh_of(&a);
        ab.merge(&hh_of(&b));
        let mut ba = hh_of(&b);
        ba.merge(&hh_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn hh_partition_equals_whole_within_cap(values in arb_quantized(150), split in 0usize..150) {
        let split = split.min(values.len());
        let (lo, hi) = values.split_at(split);
        let mut merged = hh_of(lo);
        merged.merge(&hh_of(hi));
        prop_assert_eq!(merged, hh_of(&values));
    }

    #[test]
    fn hh_estimate_brackets_true_count(values in arb_quantized(150)) {
        let s = hh_of(&values);
        for target in [-40.0f64, -1.0, 0.0, 1.0, 39.0] {
            let true_count = values.iter().filter(|&&v| v == target).count() as u64;
            let est = s.estimate(target);
            prop_assert!(est >= true_count);
            prop_assert!(est <= true_count + s.error_bound());
        }
    }

    #[test]
    fn bundle_partition_equals_whole(values in arb_quantized(150), split in 0usize..150) {
        let split = split.min(values.len());
        let (lo, hi) = values.split_at(split);
        let mut merged = bundle_of(lo);
        merged.merge(&bundle_of(hi));
        prop_assert_eq!(merged, bundle_of(&values));
    }
}
