//! Merge laws for the sketch partials — the algebra that makes cached
//! hierarchical roll-ups of sketch-valued Cells answer like a direct fold
//! over the raw observations — plus oracle tests pinning the heavy-hitter
//! candidate table against the ordered-set implementation it replaced, and
//! corruption tests for the wire decoders.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use stash_flat::{WordReader, WordWriter};
use stash_sketch::{AttrSketches, DistinctSketch, FoldCtx, HeavyHitters, SketchSpec, UddSketch};

/// Unbounded-precision values: exercise the log-bucket and hash paths.
fn arb_values(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1000.0f64..1000.0, 0..max_len)
}

/// Quantized values with a small domain: the regime where the heavy-hitter
/// candidate list is exactly merge-order invariant.
fn arb_quantized(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec((-40i32..40).prop_map(|i| i as f64), 0..max_len)
}

fn udd_of(values: &[f64]) -> UddSketch {
    let mut s = UddSketch::new(0.02, 32);
    for &v in values {
        s.push(v);
    }
    s
}

fn hll_of(values: &[f64]) -> DistinctSketch {
    let mut s = DistinctSketch::new(6);
    for &v in values {
        s.push(v);
    }
    s
}

fn hh_of(values: &[f64]) -> HeavyHitters {
    let mut s = HeavyHitters::new(32, 3, 128);
    for &v in values {
        s.push(v);
    }
    s
}

fn bundle_of(values: &[f64]) -> AttrSketches {
    let mut s = AttrSketches::new(&SketchSpec::standard());
    for &v in values {
        s.push(v);
    }
    s
}

/// The `BTreeSet`-backed heavy-hitter implementation this PR replaced,
/// reimplemented verbatim as the oracle for the open-addressed candidate
/// table: same hashes, same 2×-cap trim hysteresis, same largest-
/// `(estimate, bits)` survivor rule. Its canonical state (sorted
/// candidates, matrix, total) must match `HeavyHitters` bit-for-bit.
mod oracle {
    use std::collections::BTreeSet;

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    fn canonical_bits(v: f64) -> u64 {
        if v == 0.0 {
            0.0f64.to_bits()
        } else if v.is_nan() {
            f64::NAN.to_bits()
        } else {
            v.to_bits()
        }
    }

    pub struct BTreeHh {
        width: usize,
        depth: usize,
        limit: usize,
        pub total: u64,
        pub rows: Vec<u64>,
        candidates: BTreeSet<u64>,
    }

    impl BTreeHh {
        pub fn new(width: usize, depth: usize, limit: usize) -> Self {
            BTreeHh {
                width,
                depth,
                limit,
                total: 0,
                rows: vec![0; width * depth],
                candidates: BTreeSet::new(),
            }
        }

        fn column(&self, bits: u64, d: usize) -> usize {
            (splitmix64(bits ^ (0xC0FF_EE00 + d as u64)) % self.width as u64) as usize
        }

        pub fn push(&mut self, value: f64) {
            let bits = canonical_bits(value);
            self.total += 1;
            for d in 0..self.depth {
                let col = self.column(bits, d);
                self.rows[d * self.width + col] += 1;
            }
            self.candidates.insert(bits);
            self.trim();
        }

        pub fn merge(&mut self, other: &BTreeHh) {
            self.total += other.total;
            for (a, &b) in self.rows.iter_mut().zip(&other.rows) {
                *a += b;
            }
            for &bits in &other.candidates {
                self.candidates.insert(bits);
            }
            self.trim();
        }

        fn trim(&mut self) {
            if self.candidates.len() <= 2 * self.limit {
                return;
            }
            let mut ranked: Vec<(u64, u64)> = self
                .candidates
                .iter()
                .map(|&bits| (self.estimate_bits(bits), bits))
                .collect();
            ranked.sort_unstable();
            self.candidates = ranked[ranked.len() - self.limit..]
                .iter()
                .map(|&(_, bits)| bits)
                .collect();
        }

        fn estimate_bits(&self, bits: u64) -> u64 {
            (0..self.depth)
                .map(|d| self.rows[d * self.width + self.column(bits, d)])
                .min()
                .unwrap_or(0)
        }

        pub fn estimate(&self, value: f64) -> u64 {
            self.estimate_bits(canonical_bits(value))
        }

        /// Sorted candidate bits — the canonical form the table must match.
        pub fn sorted_candidates(&self) -> Vec<u64> {
            self.candidates.iter().copied().collect()
        }
    }
}

/// Build matched (new, oracle) heavy-hitter folds with a cap small enough
/// that continuous values trim constantly.
fn hh_pair(values: &[f64]) -> (HeavyHitters, oracle::BTreeHh) {
    let mut new = HeavyHitters::new(32, 3, 8);
    let mut old = oracle::BTreeHh::new(32, 3, 8);
    for &v in values {
        new.push(v);
        old.push(v);
    }
    (new, old)
}

/// Assert the new table's canonical state matches the oracle bit-for-bit,
/// via the deterministic flat wire form (header + matrix + sorted
/// candidates).
fn assert_matches_oracle(new: &HeavyHitters, old: &oracle::BTreeHh) -> Result<(), TestCaseError> {
    let mut w = WordWriter::new();
    new.flat_encode(&mut w);
    let words = w.into_words();
    prop_assert_eq!(words[3], old.total, "total");
    let n_cand = words[4] as usize;
    let rows_end = 6 + old.rows.len();
    prop_assert_eq!(&words[6..rows_end], &old.rows[..], "count-min matrix");
    let cands = &words[rows_end..rows_end + n_cand];
    prop_assert_eq!(cands, &old.sorted_candidates()[..], "candidate set");
    Ok(())
}

proptest! {
    #[test]
    fn udd_merge_commutes(a in arb_values(60), b in arb_values(60)) {
        let mut ab = udd_of(&a);
        ab.merge(&udd_of(&b));
        let mut ba = udd_of(&b);
        ba.merge(&udd_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn udd_merge_associates(a in arb_values(40), b in arb_values(40), c in arb_values(40)) {
        let mut left = udd_of(&a);
        left.merge(&udd_of(&b));
        left.merge(&udd_of(&c));
        let mut bc = udd_of(&b);
        bc.merge(&udd_of(&c));
        let mut right = udd_of(&a);
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn udd_partition_equals_whole(values in arb_values(120), split in 0usize..120) {
        let split = split.min(values.len());
        let (lo, hi) = values.split_at(split);
        let mut merged = udd_of(lo);
        merged.merge(&udd_of(hi));
        prop_assert_eq!(merged, udd_of(&values));
    }

    #[test]
    fn udd_quantile_is_within_bound(values in arb_values(120), q in 0.0f64..=1.0) {
        if values.is_empty() {
            return Ok(());
        }
        let s = udd_of(&values);
        let est = s.quantile(q).unwrap();
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        let rank = ((sorted.len() - 1) as f64 * q).floor() as usize;
        let exact = sorted[rank];
        prop_assert!(
            (est.value - exact).abs() <= est.relative_error * exact.abs() + 1e-9,
            "est {} exact {} bound {}", est.value, exact, est.relative_error
        );
    }

    #[test]
    fn hll_merge_commutes(a in arb_values(60), b in arb_values(60)) {
        let mut ab = hll_of(&a);
        ab.merge(&hll_of(&b));
        let mut ba = hll_of(&b);
        ba.merge(&hll_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn hll_partition_equals_whole(values in arb_values(120), split in 0usize..120) {
        let split = split.min(values.len());
        let (lo, hi) = values.split_at(split);
        let mut merged = hll_of(lo);
        merged.merge(&hll_of(hi));
        prop_assert_eq!(merged, hll_of(&values));
    }

    #[test]
    fn hll_merge_is_idempotent(values in arb_values(60)) {
        let s = hll_of(&values);
        let mut doubled = s.clone();
        doubled.merge(&s);
        prop_assert_eq!(doubled, s);
    }

    #[test]
    fn hh_merge_commutes_within_cap(a in arb_quantized(80), b in arb_quantized(80)) {
        let mut ab = hh_of(&a);
        ab.merge(&hh_of(&b));
        let mut ba = hh_of(&b);
        ba.merge(&hh_of(&a));
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn hh_partition_equals_whole_within_cap(values in arb_quantized(150), split in 0usize..150) {
        let split = split.min(values.len());
        let (lo, hi) = values.split_at(split);
        let mut merged = hh_of(lo);
        merged.merge(&hh_of(hi));
        prop_assert_eq!(merged, hh_of(&values));
    }

    #[test]
    fn hh_estimate_brackets_true_count(values in arb_quantized(150)) {
        let s = hh_of(&values);
        for target in [-40.0f64, -1.0, 0.0, 1.0, 39.0] {
            let true_count = values.iter().filter(|&&v| v == target).count() as u64;
            let est = s.estimate(target);
            prop_assert!(est >= true_count);
            prop_assert!(est <= true_count + s.error_bound());
        }
    }

    #[test]
    fn bundle_partition_equals_whole(values in arb_quantized(150), split in 0usize..150) {
        let split = split.min(values.len());
        let (lo, hi) = values.split_at(split);
        let mut merged = bundle_of(lo);
        merged.merge(&bundle_of(hi));
        prop_assert_eq!(merged, bundle_of(&values));
    }

    // ---- open-addressed candidate table vs. the BTreeSet oracle ----

    #[test]
    fn hh_table_matches_btreeset_oracle_on_fold(values in arb_values(200)) {
        // Continuous values + cap 8: eviction fires constantly, exercising
        // the trim path where the two implementations could diverge.
        let (new, old) = hh_pair(&values);
        assert_matches_oracle(&new, &old)?;
        for &v in values.iter().take(10) {
            prop_assert_eq!(new.estimate(v), old.estimate(v));
        }
    }

    #[test]
    fn hh_table_matches_btreeset_oracle_on_merge(
        values in arb_values(200),
        split in 0usize..200,
    ) {
        let split = split.min(values.len());
        let (lo, hi) = values.split_at(split);
        let (mut new, mut old) = hh_pair(lo);
        let (new_hi, old_hi) = hh_pair(hi);
        new.merge(&new_hi);
        old.merge(&old_hi);
        assert_matches_oracle(&new, &old)?;
    }

    #[test]
    fn hh_table_matches_btreeset_oracle_on_quantized_merge_tree(
        a in arb_quantized(80), b in arb_quantized(80), c in arb_quantized(80),
    ) {
        // Same shapes as the merge-law tests above, checked against the
        // oracle instead of against another fold of the new code.
        let (mut new, mut old) = hh_pair(&a);
        let (new_b, old_b) = hh_pair(&b);
        let (mut new_bc, mut old_bc) = hh_pair(&c);
        new_bc.merge(&new_b);
        old_bc.merge(&old_b);
        new.merge(&new_bc);
        old.merge(&old_bc);
        assert_matches_oracle(&new, &old)?;
    }

    // ---- prepared/batched folds are bit-identical to plain pushes ----

    #[test]
    fn prepared_fold_matches_push_fold(values in arb_values(150)) {
        let spec = SketchSpec::standard();
        let ctx = FoldCtx::new(&spec);
        let mut pushed = AttrSketches::new(&spec);
        let mut prepared = AttrSketches::new(&spec);
        let mut tally: Vec<(i64, u64)> = Vec::new();
        for &v in &values {
            pushed.push(v);
            let pv = ctx.prepare(v);
            prepared.push_prepared(&pv);
            match tally.iter_mut().find(|(k, _)| *k == pv.quantile_key()) {
                Some((_, c)) => *c += 1,
                None => tally.push((pv.quantile_key(), 1)),
            }
        }
        for (key, count) in tally {
            prepared.add_quantile_batch(key, count);
        }
        prop_assert_eq!(prepared, pushed);
    }

    // ---- wire-form corruption never panics ----

    #[test]
    fn corrupt_flat_bundles_never_panic(
        values in arb_values(60),
        cut in 0usize..4096,
        flip_word in 0usize..4096,
        flip_bit in 0u32..64,
    ) {
        let bundle = bundle_of(&values);
        let mut w = WordWriter::new();
        bundle.flat_encode(&mut w);
        let words = w.into_words();
        // Truncation at an arbitrary point: must error or succeed, never
        // panic.
        let cut = cut.min(words.len());
        let _ = AttrSketches::flat_decode(&mut WordReader::new(&words[..cut]));
        // A single bit flip anywhere in the payload: same contract. (A
        // flip can leave the words decodable — that's fine; the property
        // is panic-freedom, not detection.)
        let mut flipped = words.clone();
        let i = flip_word % flipped.len();
        flipped[i] ^= 1u64 << flip_bit;
        let _ = AttrSketches::flat_decode(&mut WordReader::new(&flipped));
        // The untouched buffer still roundtrips.
        let back = AttrSketches::flat_decode(&mut WordReader::new(&words)).unwrap();
        prop_assert_eq!(back, bundle);
    }
}
