//! Microbenchmarks of the hot data structures the macro results rest on:
//! geohash arithmetic, query planning, summary merging, the STASH
//! graph's lookup / insert / derive / clique paths, and the DFS columnar
//! scan kernel (old direct binning vs. frame kernel, cold vs. warm).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use stash_core::{CliqueFinder, LogicalClock, StashConfig, StashGraph};
use stash_data::{GeneratorConfig, NamGenerator};
use stash_dfs::{
    BlockFrame, BlockKey, BlockSource, DiskModel, FrameBuilder, NodeStore, Partitioner,
};
use stash_geo::time::epoch_seconds;
use stash_geo::{cover_bbox, BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{
    AggQuery, Cell, CellKey, CellSummary, Level, Observation, SketchFoldMode, SketchSpec,
    SummaryStats, UddSketch,
};
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

fn bench_geohash(c: &mut Criterion) {
    let mut group = c.benchmark_group("geohash");
    group.measurement_time(Duration::from_secs(2));
    let gh = Geohash::encode(40.018, -105.274, 6).unwrap();
    group.bench_function("encode_len6", |b| {
        b.iter(|| {
            Geohash::encode(
                std::hint::black_box(40.018),
                std::hint::black_box(-105.274),
                6,
            )
        })
    });
    group.bench_function("bbox_decode", |b| {
        b.iter(|| std::hint::black_box(gh).bbox())
    });
    group.bench_function("neighbors8", |b| {
        b.iter(|| std::hint::black_box(gh).neighbors())
    });
    group.bench_function("antipode", |b| {
        b.iter(|| std::hint::black_box(gh).antipode())
    });
    let q = BBox::from_corner_extent(30.0, -110.0, 4.0, 8.0);
    group.bench_function("cover_state_res4", |b| b.iter(|| cover_bbox(&q, 4)));
    group.finish();
}

fn bench_summary(c: &mut Criterion) {
    let mut group = c.benchmark_group("summary");
    group.measurement_time(Duration::from_secs(2));
    let values: Vec<f64> = (0..1024).map(|i| (i as f64).sin() * 30.0).collect();
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("push_1024", |b| {
        b.iter(|| {
            let mut s = SummaryStats::empty();
            for &v in &values {
                s.push(v);
            }
            s
        })
    });
    let parts: Vec<SummaryStats> = values.chunks(32).map(SummaryStats::from_values).collect();
    group.bench_function("merge_32_partials", |b| {
        b.iter(|| {
            let mut acc = SummaryStats::empty();
            for p in &parts {
                acc.merge(p);
            }
            acc
        })
    });
    group.finish();
}

fn keys_for_state() -> Vec<CellKey> {
    AggQuery::new(
        BBox::from_corner_extent(36.0, -104.0, 4.0, 8.0),
        TimeRange::whole_day(2015, 2, 2),
        4,
        TemporalRes::Day,
    )
    .target_keys(1_000_000)
    .unwrap()
}

fn filled_graph(keys: &[CellKey]) -> StashGraph {
    let g = StashGraph::new(StashConfig::default(), Arc::new(LogicalClock::new()));
    g.insert_many(keys.iter().map(|&k| {
        let mut c = Cell::empty(k, 4);
        c.summary.push_row(&[1.0, 2.0, 3.0, 4.0]);
        c
    }));
    g
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("stash_graph");
    group.measurement_time(Duration::from_secs(2));
    let keys = keys_for_state();
    let graph = filled_graph(&keys);

    group.throughput(Throughput::Elements(keys.len() as u64));
    group.bench_function(format!("get_many_{}keys", keys.len()), |b| {
        b.iter(|| graph.get_many(&keys))
    });
    group.bench_function(format!("touch_region_{}keys", keys.len()), |b| {
        b.iter(|| graph.touch_region(&keys))
    });

    let cells: Vec<Cell> = keys.iter().map(|&k| Cell::empty(k, 4)).collect();
    group.bench_function(format!("insert_many_{}cells", cells.len()), |b| {
        b.iter_batched(
            || {
                (
                    StashGraph::new(StashConfig::default(), Arc::new(LogicalClock::new())),
                    cells.clone(),
                )
            },
            |(g, cs)| g.insert_many(cs),
            BatchSize::LargeInput,
        )
    });

    // Derivation: one parent from 32 cached children.
    let parent = CellKey::new(
        Geohash::encode(40.0, -100.0, 3).unwrap(),
        TimeBin::containing(TemporalRes::Day, 1_422_835_200),
    );
    let g2 = StashGraph::new(StashConfig::default(), Arc::new(LogicalClock::new()));
    g2.insert_many(parent.spatial_children().unwrap().into_iter().map(|k| {
        let mut c = Cell::empty(k, 4);
        c.summary.push_row(&[1.0, 2.0, 3.0, 4.0]);
        c
    }));
    group.bench_function("try_derive_32_children", |b| {
        b.iter(|| {
            g2.remove_many(&[parent]);
            g2.try_derive(&parent)
        })
    });

    // Clique selection over the filled state-level graph.
    let finder = CliqueFinder::new(2);
    let level = Level::of(4, TemporalRes::Day).unwrap();
    group.bench_function("top_cliques_depth2", |b| {
        b.iter(|| finder.top_cliques(&graph, level, 4096, 8))
    });
    group.finish();
}

fn bench_planning(c: &mut Criterion) {
    let mut group = c.benchmark_group("planning");
    group.measurement_time(Duration::from_secs(2));
    for (label, extent) in [
        ("city", (0.2, 0.5)),
        ("state", (4.0, 8.0)),
        ("country", (16.0, 32.0)),
    ] {
        let q = AggQuery::new(
            BBox::from_corner_extent(30.0, -110.0, extent.0, extent.1),
            TimeRange::whole_day(2015, 2, 2),
            4,
            TemporalRes::Day,
        );
        group.bench_function(format!("target_keys/{label}"), |b| {
            b.iter(|| q.target_keys(1_000_000).unwrap())
        });
    }
    group.finish();
}

/// NamGenerator as a BlockSource for the scan-kernel benches. Keeps the
/// trait's default `read_frame` — materialize `Vec<Observation>`, then
/// decode — which is exactly the pre-flat row-struct route (the oracle).
struct GenSource(NamGenerator);

impl BlockSource for GenSource {
    fn read_block(&self, key: BlockKey) -> Vec<Observation> {
        self.0.block_for_day(key.geohash, key.day)
    }
    fn block_bytes(&self, geohash: Geohash) -> usize {
        self.0.block_bytes(geohash)
    }
    fn n_attrs(&self) -> usize {
        self.0.schema().len()
    }
}

/// Same generator, but `read_frame` streams rows straight into the flat
/// frame buffer — the production route (`stash-cluster` sources override
/// the same way).
struct FlatGenSource(NamGenerator);

impl BlockSource for FlatGenSource {
    fn read_block(&self, key: BlockKey) -> Vec<Observation> {
        self.0.block_for_day(key.geohash, key.day)
    }
    fn block_bytes(&self, geohash: Geohash) -> usize {
        self.0.block_bytes(geohash)
    }
    fn n_attrs(&self) -> usize {
        self.0.schema().len()
    }
    fn read_frame(&self, key: BlockKey, spatial_res: u8) -> BlockFrame {
        let n = self.0.obs_per_day(key.geohash);
        let mut b = FrameBuilder::new(key, n, self.0.schema().len(), spatial_res);
        self.0
            .scan_rows(key.geohash, key.day, |lat, lon, time, values| {
                b.push_row(lat, lon, time, values);
            });
        b.finish()
    }
}

fn bench_generator() -> NamGenerator {
    NamGenerator::new(GeneratorConfig {
        seed: 11,
        obs_per_deg2_per_day: 2_000.0,
        max_obs_per_block: 200_000,
        value_quantum: 0.0,
    })
}

fn scan_store_with(source: Arc<dyn BlockSource>) -> NodeStore {
    NodeStore::new(
        0,
        Partitioner::new(1, 2),
        3,
        BBox::new(20.0, 55.0, -130.0, -60.0).unwrap(),
        TimeRange::new(
            epoch_seconds(2015, 1, 1, 0, 0, 0),
            epoch_seconds(2016, 1, 1, 0, 0, 0),
        )
        .unwrap(),
        DiskModel::free(),
        source,
        10_000,
    )
    .with_scan_cost(Duration::ZERO)
}

/// Production configuration: streaming flat decode.
fn scan_store() -> NodeStore {
    scan_store_with(Arc::new(FlatGenSource(bench_generator())))
}

/// Pre-flat configuration: row-struct decode oracle.
fn scan_store_rowpath() -> NodeStore {
    scan_store_with(Arc::new(GenSource(bench_generator())))
}

/// A multi-level wanted set — the shape a zoom-out exploration produces:
/// the block's tile at Day and Year, all 32 res-4 children at Day and at
/// every Hour, and the res-2 parent at Month — five resolution groups
/// over one block. The direct path pays one geohash encode and one hash
/// probe per row × group; the frame kernel decodes once and derives.
fn multi_level_wanted(tile: Geohash, day: TimeBin) -> Vec<CellKey> {
    let mut wanted = vec![CellKey::new(tile, day)];
    for child in tile.children().unwrap() {
        wanted.push(CellKey::new(child, day));
        for h in 0..24 {
            wanted.push(CellKey::new(
                child,
                TimeBin {
                    res: TemporalRes::Hour,
                    idx: day.idx * 24 + h,
                },
            ));
        }
    }
    wanted.push(CellKey::new(
        tile.prefix(2).unwrap(),
        TimeBin::containing(TemporalRes::Month, day.start()),
    ));
    wanted.push(CellKey::new(
        tile,
        TimeBin::containing(TemporalRes::Year, day.start()),
    ));
    wanted
}

fn bench_scan_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_kernel");
    group.measurement_time(Duration::from_secs(3));
    let tile = Geohash::from_str("9xj").unwrap();
    let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
    let bk = BlockKey { geohash: tile, day };
    let wanted = multi_level_wanted(tile, day);
    let store = scan_store();
    let rows = store.scan_block(bk, &wanted).rows;
    group.throughput(Throughput::Elements(rows as u64));

    group.bench_function(format!("direct_old_{rows}rows"), |b| {
        b.iter(|| store.scan_block_direct(bk, std::hint::black_box(&wanted)))
    });
    // Cold: a fresh zero-budget cache forces decode + aggregate each iter.
    let cold = scan_store().with_frame_cache_bytes(0);
    group.bench_function(format!("frame_cold_{rows}rows"), |b| {
        b.iter(|| cold.scan_block(bk, std::hint::black_box(&wanted)))
    });
    // Cold through the row-struct oracle: same work, but decode goes
    // Vec<Observation> → frame instead of streaming into the flat buffer.
    // The gap between this and frame_cold is the flat-decode win.
    let cold_rows = scan_store_rowpath().with_frame_cache_bytes(0);
    group.bench_function(format!("frame_cold_rowpath_{rows}rows"), |b| {
        b.iter(|| cold_rows.scan_block(bk, std::hint::black_box(&wanted)))
    });
    // Warm: the frame decoded once above stays cached; iters only aggregate.
    group.bench_function(format!("frame_warm_{rows}rows"), |b| {
        b.iter(|| store.scan_block(bk, std::hint::black_box(&wanted)))
    });
    group.finish();
}

/// Cost of carrying sketch-valued Cells (ISSUE 6): the same warm-frame
/// aggregate with sketches off vs. on isolates the per-row sketch fold,
/// and the partial-merge pair isolates the per-merge cost the coordinator
/// gather and ingest patch paths pay.
fn bench_sketch_fold(c: &mut Criterion) {
    let mut group = c.benchmark_group("sketch_fold");
    group.measurement_time(Duration::from_secs(3));
    let tile = Geohash::from_str("9xj").unwrap();
    let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
    let bk = BlockKey { geohash: tile, day };
    let wanted = multi_level_wanted(tile, day);

    // Warm frame caches: iterations measure only the aggregate stage.
    let exact = scan_store();
    let rows = exact.scan_block(bk, &wanted).rows;
    group.throughput(Throughput::Elements(rows as u64));
    group.bench_function(format!("scan_exact_only_{rows}rows"), |b| {
        b.iter(|| exact.scan_block(bk, std::hint::black_box(&wanted)))
    });
    let sketched = scan_store().with_sketches(SketchSpec::standard());
    sketched.scan_block(bk, &wanted);
    group.bench_function(format!("scan_with_sketches_{rows}rows"), |b| {
        b.iter(|| sketched.scan_block(bk, std::hint::black_box(&wanted)))
    });
    // Fold only at the finest group, derive coarser cells by sketch merge.
    let mut ftm_spec = SketchSpec::standard();
    ftm_spec.fold_mode = SketchFoldMode::FinestThenMerge;
    let ftm = scan_store().with_sketches(ftm_spec);
    ftm.scan_block(bk, &wanted);
    group.bench_function(format!("scan_sketches_finest_then_merge_{rows}rows"), |b| {
        b.iter(|| ftm.scan_block(bk, std::hint::black_box(&wanted)))
    });

    // Merging 32 partials (4 attrs each), exact-only vs. sketch-carrying.
    let rows_per_part = 32;
    let values: Vec<[f64; 4]> = (0..32 * rows_per_part)
        .map(|i| {
            let x = (i as f64 * 0.7).sin();
            [x * 30.0, 50.0 + x * 40.0, x.abs() * 5.0, x.abs() * 60.0]
        })
        .collect();
    let build = |spec: Option<&SketchSpec>| -> Vec<CellSummary> {
        values
            .chunks(rows_per_part)
            .map(|chunk| {
                let mut s = match spec {
                    Some(spec) => CellSummary::empty_with(4, spec),
                    None => CellSummary::empty(4),
                };
                for row in chunk {
                    s.push_row(row);
                }
                s
            })
            .collect()
    };
    // Isolated quantile-push path: the open-addressed bucket table's cost
    // per `UddSketch::push`, free of the fold's HLL/heavy-hitter work
    // (which dominates `scan_with_sketches` on continuous data).
    let push_values: Vec<f64> = (0..4096).map(|i| (i as f64 * 0.7).sin() * 50.0).collect();
    group.throughput(Throughput::Elements(push_values.len() as u64));
    group.bench_function("quantile_push_4096", |b| {
        b.iter(|| {
            let mut s = UddSketch::new(0.01, 64);
            for &v in &push_values {
                s.push(std::hint::black_box(v));
            }
            s
        })
    });

    let spec = SketchSpec::standard();
    for (label, parts) in [
        ("merge_32_exact_partials", build(None)),
        ("merge_32_sketched_partials", build(Some(&spec))),
    ] {
        group.throughput(Throughput::Elements(32));
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut acc = parts[0].clone();
                for p in &parts[1..] {
                    acc.merge(p);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_geohash,
    bench_summary,
    bench_graph,
    bench_planning,
    bench_scan_kernel,
    bench_sketch_fold
);
criterion_main!(benches);
