//! Criterion wrapper for Fig. 7c: the 8-direction pan star at 10/20/25 %
//! on the basic system vs a STASH warmed by the starting view.

use criterion::{criterion_group, criterion_main, Criterion};
use stash_bench::Scale;
use stash_data::QuerySizeClass;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = Scale::small();
    let wl = scale.workload();
    let mut rng = scale.rng();
    let start = wl.random_bbox(&mut rng, QuerySizeClass::State);

    let mut group = c.benchmark_group("fig7_panning");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for frac in [0.10, 0.20, 0.25] {
        let stream = wl.pan_star(start, frac);

        let basic = scale.basic_cluster();
        let bc = basic.client();
        group.bench_function(format!("basic/pan{:.0}%", frac * 100.0), |b| {
            b.iter(|| {
                for q in &stream[1..] {
                    bc.query(q).run().expect("basic");
                }
            })
        });
        basic.shutdown();

        // STASH keeps the star's cells warm across iterations — this is the
        // steady state the figure's bars report (the start view has been
        // rendered already).
        let stash = scale.stash_cluster();
        let sc = stash.client();
        sc.query(&stream[0]).run().expect("warm start view");
        group.bench_function(format!("stash/pan{:.0}%", frac * 100.0), |b| {
            b.iter(|| {
                for q in &stream[1..] {
                    sc.query(q).run().expect("stash");
                }
            })
        });
        stash.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
