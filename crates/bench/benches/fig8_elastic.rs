//! Criterion wrapper for Fig. 8a–8c: the pan and dice streams on STASH vs
//! the ElasticSearch-like baseline. One iteration = one full stream from a
//! cold cache, so the measured time reflects each engine's reuse.

use criterion::{criterion_group, criterion_main, Criterion};
use stash_bench::Scale;
use stash_data::QuerySizeClass;
use stash_model::AggQuery;
use std::time::{Duration, Instant};

fn streams(scale: &Scale) -> Vec<(&'static str, Vec<AggQuery>)> {
    let wl = scale.workload();
    let mut rng = scale.rng();
    let state = wl.random_bbox(&mut rng, QuerySizeClass::State);
    let country = wl.random_bbox(&mut rng, QuerySizeClass::Country);
    vec![
        ("8a_panning", wl.pan_star(state, 0.20)),
        ("8b_dice_ascending", wl.dice_ascending(country, 5, 0.20)),
        ("8c_dice_descending", wl.dice_descending(country, 5, 0.20)),
    ]
}

fn bench(c: &mut Criterion) {
    let scale = Scale::small();

    let mut group = c.benchmark_group("fig8_vs_elasticsearch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for (label, stream) in streams(&scale) {
        let stash = scale.stash_cluster();
        let sc = stash.client();
        group.bench_function(format!("stash/{label}"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    stash.clear_cache();
                    let t0 = Instant::now();
                    for q in &stream {
                        sc.query(q).run().expect("stash");
                    }
                    total += t0.elapsed();
                }
                total
            })
        });
        stash.shutdown();

        let es = scale.es_cluster();
        let ec = es.client();
        group.bench_function(format!("elastic/{label}"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    es.clear_caches();
                    let t0 = Instant::now();
                    for q in &stream {
                        ec.query(q).expect("es");
                    }
                    total += t0.elapsed();
                }
                total
            })
        });
        es.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
