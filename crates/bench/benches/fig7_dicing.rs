//! Criterion wrapper for Fig. 7a/7b: the 5-step iterative dicing streams
//! on the basic system vs STASH. One iteration = one full stream against a
//! cold cache, so the measured time embodies the reuse the figure shows.

use criterion::{criterion_group, criterion_main, Criterion};
use stash_bench::Scale;
use stash_data::QuerySizeClass;
use std::time::{Duration, Instant};

fn bench(c: &mut Criterion) {
    let scale = Scale::small();
    let wl = scale.workload();
    let mut rng = scale.rng();
    let start = wl.random_bbox(&mut rng, QuerySizeClass::Country);

    let mut group = c.benchmark_group("fig7_dicing");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for (label, descending) in [("descending", true), ("ascending", false)] {
        let stream = if descending {
            wl.dice_descending(start, 5, 0.20)
        } else {
            wl.dice_ascending(start, 5, 0.20)
        };

        let basic = scale.basic_cluster();
        let bc = basic.client();
        group.bench_function(format!("basic/{label}"), |b| {
            b.iter(|| {
                for q in &stream {
                    bc.query(q).run().expect("basic");
                }
            })
        });
        basic.shutdown();

        let stash = scale.stash_cluster();
        let sc = stash.client();
        group.bench_function(format!("stash/{label}"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    stash.clear_cache();
                    let t0 = Instant::now();
                    for q in &stream {
                        sc.query(q).run().expect("stash");
                    }
                    total += t0.elapsed();
                }
                total
            })
        });
        stash.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
