//! Criterion wrapper for Fig. 6b: throughput of the panning mix on the
//! basic system vs STASH. Each iteration drives one full mix; Criterion's
//! per-iteration time is therefore inverse throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use stash_bench::harness::drive_concurrent;
use stash_bench::Scale;
use stash_data::QuerySizeClass;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench(c: &mut Criterion) {
    let scale = Scale::small();
    let wl = scale.workload();

    let mut group = c.benchmark_group("fig6b_throughput");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for class in [
        QuerySizeClass::State,
        QuerySizeClass::County,
        QuerySizeClass::City,
    ] {
        let mut rng = scale.rng();
        let queries = Arc::new(wl.throughput_mix(&mut rng, class, 8, 10, 0.10));

        let basic = scale.basic_cluster();
        group.bench_function(format!("basic/{class}/{}req", queries.len()), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let t0 = Instant::now();
                    drive_concurrent(&basic, Arc::clone(&queries), scale.clients);
                    total += t0.elapsed();
                }
                total
            })
        });
        basic.shutdown();

        let stash = scale.stash_cluster();
        group.bench_function(format!("stash/{class}/{}req", queries.len()), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    // Cold cache per iteration so every sample runs the same
                    // mix of misses and pan-overlap hits.
                    stash.clear_cache();
                    let t0 = Instant::now();
                    drive_concurrent(&stash, Arc::clone(&queries), scale.clients);
                    total += t0.elapsed();
                }
                total
            })
        });
        stash.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
