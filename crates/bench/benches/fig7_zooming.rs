//! Criterion wrapper for Fig. 7d/7e: drill-down and roll-up walks over a
//! state area with 50/75/100 % of relevant Cells pre-stacked.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::seq::SliceRandom;
use stash_bench::fig7::zooming::{FROM_RES, TO_RES};
use stash_bench::Scale;
use stash_data::QuerySizeClass;
use std::time::{Duration, Instant};

fn bench(c: &mut Criterion) {
    let scale = Scale::small();
    let wl = scale.workload();
    let mut rng = scale.rng();
    let area = wl.random_bbox(&mut rng, QuerySizeClass::State);

    let mut group = c.benchmark_group("fig7_zooming");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));

    for (label, walk) in [
        ("drill_down", wl.drill_down(area, FROM_RES, TO_RES)),
        ("roll_up", wl.roll_up(area, TO_RES, FROM_RES)),
    ] {
        let basic = scale.basic_cluster();
        let bc = basic.client();
        group.bench_function(format!("basic/{label}"), |b| {
            b.iter(|| {
                for q in &walk {
                    bc.query(q).run().expect("basic");
                }
            })
        });
        basic.shutdown();

        for frac in [0.50, 0.75, 1.00] {
            let stash = scale.stash_cluster();
            let sc = stash.client();
            group.bench_function(format!("stash/{label}/prepop{:.0}%", frac * 100.0), |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        for q in &walk {
                            stash.clear_cache();
                            let mut keys = q.target_keys(1_000_000).expect("plan");
                            keys.shuffle(&mut rng);
                            let take = ((keys.len() as f64) * frac).round() as usize;
                            stash
                                .warm_keys(&keys[..take.min(keys.len())])
                                .expect("warm");
                            let t0 = Instant::now();
                            sc.query(q).run().expect("stash");
                            total += t0.elapsed();
                        }
                    }
                    total
                })
            });
            stash.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
