//! Criterion wrapper for Fig. 6d: time to drain a single-region hotspot
//! burst with and without dynamic Clique replication.

use criterion::{criterion_group, criterion_main, Criterion};
use stash_bench::harness::drive_concurrent;
use stash_bench::Scale;
use stash_data::QuerySizeClass;
use stash_geo::BBox;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench(c: &mut Criterion) {
    let scale = Scale::small();
    let wl = scale.workload();
    let (dlat, dlon) = QuerySizeClass::County.extent();
    // Region pinned inside one DHT partition ('9x') — one node hotspots.
    let start = BBox::from_corner_extent(42.0, -107.0, dlat, dlon);

    let mut group = c.benchmark_group("fig6d_hotspot");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));

    for (label, enable) in [("without_replication", false), ("with_replication", true)] {
        group.bench_function(format!("{label}/{}req", scale.burst_requests), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let cluster = scale.hotspot_cluster(enable, |_| {});
                    let mut rng = scale.rng();
                    let queries =
                        Arc::new(wl.hotspot_burst_at(&mut rng, start, scale.burst_requests));
                    let t0 = Instant::now();
                    drive_concurrent(&cluster, queries, scale.clients.max(64));
                    total += t0.elapsed();
                    cluster.shutdown();
                }
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
