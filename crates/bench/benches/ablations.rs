//! Criterion wrappers for the DESIGN.md §8 ablations that fit a timed
//! harness: roll-up latency with/without child-merge derivation, and the
//! interleaved-region workload with/without freshness dispersion.

use criterion::{criterion_group, criterion_main, Criterion};
use stash_bench::Scale;
use stash_data::QuerySizeClass;
use stash_geo::Geohash;
use std::time::{Duration, Instant};

fn bench_derivation(c: &mut Criterion, scale: &Scale) {
    let wl = scale.workload();
    let coarse_res = wl.config().spatial_res - 1;
    let cell = Geohash::encode(40.0, -100.0, coarse_res).expect("domain point");
    let fine = wl.make_query(cell.bbox());
    let coarse = fine.rolled_up().expect("coarser level");

    let mut group = c.benchmark_group("ablation_derivation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (label, enabled) in [("on", true), ("off", false)] {
        let cluster = scale.stash_cluster_with(|cfg| cfg.stash.enable_derivation = enabled);
        let client = cluster.client();
        group.bench_function(format!("rollup/derivation_{label}"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    cluster.clear_cache();
                    client.query(&fine).run().expect("warm fine");
                    let t0 = Instant::now();
                    client.query(&coarse).run().expect("rollup");
                    total += t0.elapsed();
                }
                total
            })
        });
        cluster.shutdown();
    }
    group.finish();
}

fn bench_dispersion(c: &mut Criterion, scale: &Scale) {
    let wl = scale.workload();
    let mut rng = scale.rng();
    let a = wl.random_bbox(&mut rng, QuerySizeClass::State);
    let b_box = a.pan(6.0, 10.0);
    let wa = wl.pan_walk(&mut rng, a, 0.10, 12);
    let wb = wl.pan_walk(&mut rng, b_box, 0.10, 12);

    let mut group = c.benchmark_group("ablation_dispersion");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(5));
    for (label, frac) in [("off", 0.0), ("on", 0.4)] {
        let cluster = scale.stash_cluster_with(|cfg| {
            cfg.stash.neighbor_fraction = frac;
            cfg.stash.max_cells = 600;
            cfg.stash.safe_fraction = 0.7;
            cfg.stash.decay_tau = 16.0;
        });
        let client = cluster.client();
        group.bench_function(format!("interleaved_walks/dispersion_{label}"), |b| {
            b.iter_custom(|iters| {
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    cluster.clear_cache();
                    let t0 = Instant::now();
                    for (qa, qb) in wa.iter().zip(&wb) {
                        client.query(qa).run().expect("walk a");
                        client.query(qb).run().expect("walk b");
                    }
                    total += t0.elapsed();
                }
                total
            })
        });
        cluster.shutdown();
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    let scale = Scale::small();
    bench_derivation(c, &scale);
    bench_dispersion(c, &scale);
}

criterion_group!(benches, bench);
criterion_main!(benches);
