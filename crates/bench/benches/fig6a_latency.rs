//! Criterion wrapper for Fig. 6a: query latency vs size for the basic
//! system, a cold STASH, and a warm STASH.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use stash_bench::Scale;
use stash_data::QuerySizeClass;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = Scale::small();
    let basic = scale.basic_cluster();
    let stash = scale.stash_cluster();
    let wl = scale.workload();
    let mut rng = scale.rng();

    let mut group = c.benchmark_group("fig6a_latency");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for class in QuerySizeClass::ALL {
        let q = wl.random_query(&mut rng, class);

        let bc = basic.client();
        group.bench_function(format!("basic/{class}"), |b| {
            b.iter(|| bc.query(&q).run().expect("basic"))
        });

        let sc = stash.client();
        group.bench_function(format!("stash_cold/{class}"), |b| {
            b.iter_batched(
                || stash.clear_cache(),
                |_| sc.query(&q).run().expect("cold"),
                BatchSize::PerIteration,
            )
        });

        sc.query(&q).run().expect("warm-up");
        group.bench_function(format!("stash_warm/{class}"), |b| {
            b.iter(|| sc.query(&q).run().expect("warm"))
        });
    }
    group.finish();
    basic.shutdown();
    stash.shutdown();
}

criterion_group!(benches, bench);
criterion_main!(benches);
