//! Criterion wrapper for the fault sweep: one panning mix driven on a
//! healthy fabric vs under 5% uniform message loss. Per-iteration time is
//! inverse throughput; the gap between the two functions is the price of
//! the retry/failover machinery actually firing.

use criterion::{criterion_group, criterion_main, Criterion};
use stash_bench::harness::drive_concurrent;
use stash_bench::Scale;
use stash_data::QuerySizeClass;
use stash_net::FaultPlan;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn bench(c: &mut Criterion) {
    let scale = Scale::small();
    let wl = scale.workload();
    let mut rng = scale.rng();
    // A small mix: fault runs pay real timeout waits, so keep iterations
    // bounded while still scattering across every node.
    let queries = Arc::new(wl.throughput_mix(&mut rng, QuerySizeClass::County, 5, 10, 0.10));

    let mut group = c.benchmark_group("fault_sweep");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(10));

    for drop in [0.0, 0.05] {
        let cluster = scale.stash_cluster_with(|cfg| {
            cfg.sub_rpc_timeout = Duration::from_millis(500);
            cfg.retry_backoff = Duration::from_millis(2);
            cfg.client_timeout = Duration::from_secs(30);
            cfg.client_retries = 9;
        });
        if drop > 0.0 {
            cluster
                .router()
                .install_faults(FaultPlan::new(scale.seed ^ 0xFA17).drop_all(drop));
        }
        group.bench_function(
            format!("drop{:.0}pct/{}req", drop * 100.0, queries.len()),
            |b| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        cluster.clear_cache();
                        let t0 = Instant::now();
                        drive_concurrent(&cluster, Arc::clone(&queries), scale.clients);
                        total += t0.elapsed();
                    }
                    total
                })
            },
        );
        cluster.shutdown();
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
