//! Criterion wrapper for Fig. 6c: cold-start Cell population time per
//! query size class (STASH maintenance overhead).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::Rng;
use stash_bench::Scale;
use stash_core::{LogicalClock, StashConfig, StashGraph};
use stash_data::QuerySizeClass;
use stash_model::Cell;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let scale = Scale::small();
    let wl = scale.workload();
    let mut rng = scale.rng();

    let mut group = c.benchmark_group("fig6c_maintenance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));

    for class in QuerySizeClass::ALL {
        let q = wl.random_query(&mut rng, class);
        let keys = q.target_keys(1_000_000).expect("plan");
        let cells: Vec<Cell> = keys
            .iter()
            .map(|&k| {
                let mut cell = Cell::empty(k, 4);
                cell.summary.push_row(&[rng.gen(), rng.gen(), 0.0, 0.0]);
                cell
            })
            .collect();
        group.throughput(Throughput::Elements(cells.len() as u64));
        group.bench_function(format!("populate/{class}/{}cells", cells.len()), |b| {
            b.iter_batched(
                || {
                    (
                        StashGraph::new(StashConfig::default(), Arc::new(LogicalClock::new())),
                        cells.clone(),
                    )
                },
                |(graph, cells)| graph.insert_many(cells),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
