//! Sustained warm-path load: the "heavy traffic" half of the north star.
//!
//! A fixed set of viewports is warmed once, then a closed-loop multi-client
//! harness drives a large request stream (the acceptance run uses 10⁵)
//! round-robin over the warm set, measuring every request's latency. The
//! experiment is repeated per delivery-shard count, so the table shows
//! whether fabric throughput actually scales with cores — the question the
//! single-router-thread fabric answered "no" to (ROADMAP item 1).

use crate::harness::Scale;
use crate::report::Table;
use stash_cluster::SimCluster;
use stash_model::AggQuery;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One sustained-load leg: a shard count and what it delivered.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Delivery shards of the fabric for this leg.
    pub shards: usize,
    pub requests: usize,
    pub secs: f64,
    pub rps: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
}

/// Percentile of an unsorted latency sample (nearest-rank on the sorted
/// data; `p` in [0, 100]).
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// Drive `requests` queries round-robin over `queries` from `clients`
/// closed-loop clients, recording every request's latency. Returns total
/// seconds and the per-request latencies in milliseconds (unordered).
pub fn drive_sustained(
    cluster: &SimCluster,
    queries: Arc<Vec<AggQuery>>,
    requests: usize,
    clients: usize,
) -> (f64, Vec<f64>) {
    assert!(!queries.is_empty() && requests > 0 && clients > 0);
    let next = Arc::new(AtomicUsize::new(0));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let client = cluster.client();
            let queries = Arc::clone(&queries);
            let next = Arc::clone(&next);
            std::thread::spawn(move || {
                // Per-thread latency buffers: the measurement must not add
                // a shared lock to the very path it measures.
                let mut lats = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests {
                        return lats;
                    }
                    let q = &queries[i % queries.len()];
                    let t = Instant::now();
                    client.query(q).run().expect("sustained query");
                    lats.push(t.elapsed().as_secs_f64() * 1e3);
                }
            })
        })
        .collect();
    let mut lats = Vec::with_capacity(requests);
    for h in handles {
        lats.extend(h.join().expect("sustained client"));
    }
    (t0.elapsed().as_secs_f64(), lats)
}

/// Run one sustained leg at a given shard count: build a STASH cluster
/// whose fabric uses `shards` delivery shards, warm `distinct` viewports,
/// then drive `requests` closed-loop queries and report the distribution.
pub fn run_leg(scale: &Scale, shards: usize, requests: usize, distinct: usize) -> Row {
    let cluster = scale.stash_cluster_with(|c| c.net.delivery_shards = shards);
    let wl = scale.workload();
    let mut rng = scale.rng();
    let queries: Vec<AggQuery> = (0..distinct.max(1))
        .map(|_| wl.random_query(&mut rng, stash_data::QuerySizeClass::County))
        .collect();
    // Warm pass: every viewport's Cells become graph-resident, so the
    // measured phase is the warm path the paper's sustained dashboards hit.
    let warm = cluster.client();
    for q in &queries {
        warm.query(q).run().expect("warm-up");
    }
    let (secs, mut lats) = drive_sustained(&cluster, Arc::new(queries), requests, scale.clients);
    cluster.shutdown();
    lats.sort_by(|a, b| a.total_cmp(b));
    Row {
        shards,
        requests,
        secs,
        rps: requests as f64 / secs,
        p50_ms: percentile(&lats, 50.0),
        p95_ms: percentile(&lats, 95.0),
        p99_ms: percentile(&lats, 99.0),
    }
}

/// The shard legs the sustained/core-scaling experiments compare: 1 (the
/// old single-router-thread fabric), 2, and the host's parallelism (≤ 8),
/// deduplicated and ascending.
pub fn shard_legs() -> Vec<usize> {
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 8);
    let mut legs = vec![1, 2, n];
    legs.sort_unstable();
    legs.dedup();
    legs
}

/// Run the full sustained experiment: one leg per shard count.
pub fn run(scale: &Scale, requests: usize, distinct: usize) -> Vec<Row> {
    shard_legs()
        .into_iter()
        .map(|shards| run_leg(scale, shards, requests, distinct))
        .collect()
}

pub fn table(rows: &[Row]) -> Table {
    let base = rows.first().map(|r| r.rps).unwrap_or(1.0);
    let mut t = Table::new(
        "Sustained warm-path load — closed-loop clients vs delivery shards",
        &[
            "shards",
            "requests",
            "secs",
            "req/s",
            "vs 1 shard",
            "p50 (ms)",
            "p95 (ms)",
            "p99 (ms)",
        ],
    )
    .with_note(
        "same warm viewport set per leg; req/s should grow with shards on a \
         multi-core host (ROADMAP item 1: fabric no longer single-threaded)",
    );
    for r in rows {
        t.push(vec![
            r.shards.to_string(),
            r.requests.to_string(),
            format!("{:.2}", r.secs),
            format!("{:.0}", r.rps),
            format!("{:.2}x", r.rps / base.max(1e-9)),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p95_ms),
            format!("{:.2}", r.p99_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_are_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 50.0), 51.0);
        assert_eq!(percentile(&v, 99.0), 99.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 100.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn shard_legs_start_at_one_and_ascend() {
        let legs = shard_legs();
        assert_eq!(legs[0], 1);
        assert!(legs.windows(2).all(|w| w[0] < w[1]));
        assert!(*legs.last().unwrap() <= 8);
    }

    #[test]
    fn sustained_leg_reports_a_full_distribution() {
        let mut scale = Scale::small();
        scale.n_nodes = 2;
        scale.clients = 8;
        let row = run_leg(&scale, 1, 64, 4);
        assert_eq!(row.requests, 64);
        assert!(row.rps > 0.0);
        assert!(row.p50_ms <= row.p95_ms && row.p95_ms <= row.p99_ms);
        let t = table(&[row]);
        assert_eq!(t.rows.len(), 1);
    }
}
