//! Regenerate the paper's figures against the simulated cluster.
//!
//! ```sh
//! cargo run -p stash-bench --release --bin figures -- --all
//! cargo run -p stash-bench --release --bin figures -- --fig 6a --fig 8a
//! cargo run -p stash-bench --release --bin figures -- --all --scale small
//! cargo run -p stash-bench --release --bin figures -- --ablations
//! cargo run -p stash-bench --release --bin figures -- --fault-sweep --scale small
//! cargo run -p stash-bench --release --bin figures -- --ingest --scale small
//! cargo run -p stash-bench --release --bin figures -- --profile
//! cargo run -p stash-bench --release --bin figures -- --profile --smoke   # CI-sized
//! cargo run -p stash-bench --release --bin figures -- --rollup --smoke    # rollup gate
//! cargo run -p stash-bench --release --bin figures -- --all --markdown out.md
//! ```
//!
//! Each figure prints a console table; `--markdown FILE` additionally
//! appends GitHub-flavored tables (the format EXPERIMENTS.md embeds).
//! The `--rollup`, `--sustained`, and `--profile` runs also write
//! machine-readable `BENCH_<name>.json` reports (mean/p50/p95/p99 per
//! leg) into the working directory for CI and plotting scripts.

use stash_bench::{
    ablation, fault_sweep, fig6, fig7, fig8, ingest, profile,
    report::{BenchJson, LegStats, Table},
    rollup, sustained, Scale,
};
use std::io::Write;

/// Time both frame-producing routes on one dense block: the streaming flat
/// build (`GenBlockSource::read_frame`) vs. the row-struct
/// oracle the seed used (`read_block` → `BlockFrame::decode`). Returns
/// best-of-5 wall nanoseconds `(flat, oracle)` — an in-process calibration
/// of the pre-refactor decode cost on whatever machine CI lands on.
fn decode_shootout() -> (u64, u64) {
    use stash_cluster::GenBlockSource;
    use stash_data::{GeneratorConfig, NamGenerator};
    use stash_dfs::{BlockFrame, BlockKey, BlockSource};
    use stash_geo::{Geohash, TemporalRes, TimeBin};

    let src = GenBlockSource::new(NamGenerator::new(GeneratorConfig {
        seed: 11,
        obs_per_deg2_per_day: 2_000.0,
        max_obs_per_block: 200_000,
        value_quantum: 0.0,
    }));
    let bk = BlockKey {
        geohash: "9xj".parse::<Geohash>().expect("valid tile"),
        day: TimeBin::containing(
            TemporalRes::Day,
            stash_geo::time::epoch_seconds(2015, 2, 2, 0, 0, 0),
        ),
    };
    let best = |f: &dyn Fn() -> BlockFrame| -> u64 {
        (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_nanos() as u64
            })
            .min()
            .expect("five samples")
    };
    let flat = best(&|| src.read_frame(bk, 5));
    let oracle = best(&|| {
        let (rows, v) = src.read_block_versioned(bk);
        BlockFrame::decode(bk, &rows, src.n_attrs(), 5).with_version(v)
    });
    (flat, oracle)
}

/// Time the sketch fold over one dense block both ways: the batched scan
/// kernel (`BlockFrame::aggregate_with`, which hashes each value once and
/// applies quantile buckets per group in one pass) vs. the pre-refactor
/// per-row oracle that calls `AttrSketches::push` for every (row, cell)
/// incidence. Both fold the identical incidence multiset — every row into
/// the tile's day cell and its hour cell — so the gap is purely the fold
/// machinery. Returns best-of-5 wall nanoseconds `(batched, oracle)`,
/// an in-process calibration on whatever machine CI lands on.
fn sketch_fold_shootout() -> (u64, u64) {
    use stash_cluster::GenBlockSource;
    use stash_data::{GeneratorConfig, NamGenerator};
    use stash_dfs::{BlockKey, BlockSource};
    use stash_geo::{Geohash, TemporalRes, TimeBin};
    use stash_model::{AttrSketches, CellKey, SketchSpec};

    let src = GenBlockSource::new(NamGenerator::new(GeneratorConfig {
        seed: 11,
        obs_per_deg2_per_day: 500.0,
        max_obs_per_block: 50_000,
        value_quantum: 0.0,
    }));
    let tile = "9xj".parse::<Geohash>().expect("valid tile");
    let day = TimeBin::containing(
        TemporalRes::Day,
        stash_geo::time::epoch_seconds(2015, 2, 2, 0, 0, 0),
    );
    let bk = BlockKey { geohash: tile, day };
    let spec = SketchSpec::standard();
    let n_attrs = src.n_attrs();

    // Decode once, outside both timers.
    let frame = src.read_frame(bk, 5);
    let (rows, _) = src.read_block_versioned(bk);
    let day_start = day.range().start;
    let mut wanted = vec![CellKey::new(tile, day)];
    wanted.extend((0..24).map(|h| {
        CellKey::new(
            tile,
            TimeBin::containing(TemporalRes::Hour, day_start + h * 3600),
        )
    }));

    let best = |f: &mut dyn FnMut() -> u64| -> u64 {
        (0..5)
            .map(|_| {
                let t = std::time::Instant::now();
                std::hint::black_box(f());
                t.elapsed().as_nanos() as u64
            })
            .min()
            .expect("five samples")
    };
    let batched = best(&mut || frame.aggregate_with(&wanted, &spec).cells.len() as u64);
    let oracle = best(&mut || {
        let mut day_cell = vec![AttrSketches::new(&spec); n_attrs];
        let mut hour_cells = vec![vec![AttrSketches::new(&spec); n_attrs]; 24];
        for row in &rows {
            let h = ((row.time - day_start) / 3600).clamp(0, 23) as usize;
            for (a, &v) in row.values.iter().enumerate().take(n_attrs) {
                day_cell[a].push(v);
                hour_cells[h][a].push(v);
            }
        }
        (day_cell.len() + hour_cells.len()) as u64
    });
    (batched, oracle)
}

struct Args {
    figs: Vec<String>,
    all: bool,
    ablations: bool,
    fault_sweep: bool,
    ingest: bool,
    profile: bool,
    /// Sustained warm-path load per delivery-shard count (ROADMAP item 1):
    /// req/s plus p50/p95/p99 from a closed-loop multi-client harness.
    sustained: bool,
    /// Long-history coarse queries: rollup-served vs raw recompute
    /// (DESIGN.md §17). With `--smoke`, a regression gate: the
    /// rollup-served leg must undercut the raw ablation.
    rollup: bool,
    /// CI-sized run: shrink the workload so `--profile` and `--sustained`
    /// finish in seconds (no effect on the figure experiments), and turn
    /// `--sustained` into a sharded-vs-single-shard regression gate.
    smoke: bool,
    scale: Scale,
    markdown: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        figs: Vec::new(),
        all: false,
        ablations: false,
        fault_sweep: false,
        ingest: false,
        profile: false,
        sustained: false,
        rollup: false,
        smoke: false,
        scale: Scale::paper(),
        markdown: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--all" => args.all = true,
            "--ablations" => args.ablations = true,
            "--fault-sweep" => args.fault_sweep = true,
            "--ingest" => args.ingest = true,
            "--profile" => args.profile = true,
            "--sustained" => args.sustained = true,
            "--rollup" => args.rollup = true,
            "--smoke" => args.smoke = true,
            "--fig" => {
                let f = it.next().expect("--fig needs a value (e.g. 6a)");
                args.figs.push(f.to_lowercase());
            }
            "--scale" => {
                args.scale = match it.next().expect("--scale needs small|paper").as_str() {
                    "small" => Scale::small(),
                    "paper" => Scale::paper(),
                    other => panic!("unknown scale {other:?} (use small|paper)"),
                };
            }
            "--markdown" => args.markdown = Some(it.next().expect("--markdown needs a path")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--all] [--ablations] [--fault-sweep] [--ingest] [--profile] [--sustained] [--rollup] [--smoke] [--fig 6a]... [--scale small|paper] [--markdown FILE]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other:?} (try --help)"),
        }
    }
    if !args.all
        && args.figs.is_empty()
        && !args.ablations
        && !args.fault_sweep
        && !args.ingest
        && !args.profile
        && !args.sustained
        && !args.rollup
    {
        args.all = true;
    }
    if args.smoke {
        args.scale = Scale::small();
        args.scale.throughput_requests = 48;
        // Keep the paper scale's query resolution: finer-than-block
        // queries are what exercise frame-cache reuse and upward
        // derivation, so the smoke profile reports the same kernel
        // behavior as the full run (DESIGN.md §12).
        args.scale.spatial_res = Scale::paper().spatial_res;
    }
    args
}

fn main() {
    let args = parse_args();
    let wants = |f: &str| args.all || args.figs.iter().any(|x| x == f);
    let mut tables: Vec<Table> = Vec::new();
    let mut emit = |t: Table| {
        println!("{}", t.to_console());
        tables.push(t);
    };

    let scale = &args.scale;
    eprintln!(
        "running at scale: {} nodes, density {} obs/deg2/day, resolution {}",
        scale.n_nodes, scale.density, scale.spatial_res
    );

    if wants("6a") {
        emit(fig6::latency::table(&fig6::latency::run(scale)));
    }
    if wants("6b") {
        emit(fig6::throughput::table(&fig6::throughput::run(scale)));
        // PR 9 core-scaling legs: the same mix against STASH alone per
        // delivery-shard count — does req/s scale with cores?
        emit(fig6::core_scaling::table(&fig6::core_scaling::run(scale)));
    }
    if wants("6c") {
        emit(fig6::maintenance::table(&fig6::maintenance::run(scale)));
    }
    if wants("6d") {
        emit(fig6::hotspot::table(&fig6::hotspot::run(scale)));
    }
    if wants("7a") {
        emit(fig7::dicing::table(&fig7::dicing::run(scale, true), true));
    }
    if wants("7b") {
        emit(fig7::dicing::table(&fig7::dicing::run(scale, false), false));
    }
    if wants("7c") {
        emit(fig7::panning::table(&fig7::panning::run(scale)));
    }
    if wants("7d") {
        emit(fig7::zooming::table(&fig7::zooming::run(scale, true), true));
    }
    if wants("7e") {
        emit(fig7::zooming::table(
            &fig7::zooming::run(scale, false),
            false,
        ));
    }
    if wants("8a") {
        emit(fig8::table(&fig8::panning(scale), "8a"));
    }
    if wants("8b") {
        emit(fig8::table(&fig8::dicing_ascending(scale), "8b"));
    }
    if wants("8c") {
        emit(fig8::table(&fig8::dicing_descending(scale), "8c"));
    }
    if args.ablations || args.all {
        emit(ablation::dispersion::table(&ablation::dispersion::run(
            scale,
        )));
        emit(ablation::derivation::table(&ablation::derivation::run(
            scale,
        )));
        emit(ablation::hotspot::table(
            &ablation::hotspot::helper_selection(scale),
            "Ablation 3 — helper selection during Clique Handoff",
            "antipode helpers should be at least as good as random (isolation from the hot region)",
        ));
        emit(ablation::hotspot::table(
            &ablation::hotspot::reroute_sweep(scale),
            "Ablation 4 — reroute probability sweep (hotspot burst)",
            "p=0 never sheds; p=1 relocates the hotspot; intermediate p balances",
        ));
    }

    if args.fault_sweep {
        emit(fault_sweep::table(&fault_sweep::run(scale)));
    }

    if args.ingest {
        emit(ingest::table(&ingest::run(scale)));
    }

    if args.sustained {
        // Smoke: a self-calibrating sharded-vs-single shootout (best of 3
        // per leg irons out scheduler noise on small CI hosts); full run:
        // one 10⁵-request pass per shard leg.
        let (requests, distinct, tries) = if args.smoke {
            (2_000, 32, 3)
        } else {
            (100_000, 256, 1)
        };
        let legs = if args.smoke {
            let top = *sustained::shard_legs().last().expect("at least one leg");
            if top > 1 {
                vec![1, top]
            } else {
                vec![1]
            }
        } else {
            sustained::shard_legs()
        };
        let rows: Vec<sustained::Row> = legs
            .into_iter()
            .map(|shards| {
                (0..tries)
                    .map(|_| sustained::run_leg(scale, shards, requests, distinct))
                    .max_by(|a, b| a.rps.total_cmp(&b.rps))
                    .expect("at least one try")
            })
            .collect();
        if args.smoke {
            let single = rows.first().expect("single-shard leg");
            let sharded = rows.last().expect("sharded leg");
            if sharded.shards > single.shards {
                assert!(
                    sharded.rps >= single.rps,
                    "sharded fabric regressed: {} shards sustained {:.0} req/s, \
                     single shard {:.0} req/s on this host",
                    sharded.shards,
                    sharded.rps,
                    single.rps
                );
            }
            eprintln!(
                "sustained smoke gate: {} shards {:.0} req/s >= 1 shard {:.0} req/s \
                 (best of {tries}, {requests} requests/leg)",
                sharded.shards, sharded.rps, single.rps
            );
        }
        emit(sustained::table(&rows));
        let mut json = BenchJson::new("sustained");
        for r in &rows {
            json.push_stats(LegStats {
                leg: format!("{}_shards", r.shards),
                samples: r.requests,
                mean_ms: 1e3 * r.secs / r.requests.max(1) as f64,
                p50_ms: r.p50_ms,
                p95_ms: r.p95_ms,
                p99_ms: r.p99_ms,
            });
        }
        let path = json
            .write_to(std::path::Path::new("."))
            .expect("write BENCH_sustained.json");
        eprintln!("wrote {}", path.display());
    }

    if args.rollup {
        // Long enough that raw recompute pays per-day block scans across
        // real history; smoke keeps CI in seconds.
        let days = if args.smoke { 10 } else { 45 };
        let rows = rollup::run(scale, days);
        if args.smoke {
            let served = &rows[0].stats;
            let raw = &rows[1].stats;
            // Self-calibrating gate: both legs measured in-process on the
            // same host, so the comparison survives slow CI machines.
            assert!(
                served.mean_ms < raw.mean_ms,
                "rollup serving regressed: rollup-served long-history queries \
                 ({:.2} ms mean) no longer beat the raw-recompute ablation \
                 ({:.2} ms mean) over a {days}-day domain",
                served.mean_ms,
                raw.mean_ms
            );
            eprintln!(
                "rollup smoke gate: rollup-served {:.2} ms mean < raw recompute \
                 {:.2} ms mean ({} queries/leg, {days}-day domain)",
                served.mean_ms, raw.mean_ms, served.samples
            );
        }
        let mut json = BenchJson::new("rollup");
        for r in &rows {
            json.push_stats(r.stats.clone());
        }
        let path = json
            .write_to(std::path::Path::new("."))
            .expect("write BENCH_rollup.json");
        eprintln!("wrote {}", path.display());
        emit(rollup::table(&rows, days));
    }

    if args.profile {
        let p = profile::run(scale);
        if args.smoke {
            // CI regression gates for the flat-frame refactor (PR 7).
            // The pre-refactor pin is measured in-process — the row-struct
            // oracle route on a dense block — so the gate is calibrated to
            // whatever machine CI lands on; an absolute ns/row pin proved
            // flaky at smoke scale, where blocks are ~100 rows and fixed
            // per-block overhead dominates.
            let ns_per_row = p.decode_ns as f64 / p.rows_decoded.max(1) as f64;
            let (flat_ns, oracle_ns) = decode_shootout();
            assert!(
                flat_ns < oracle_ns,
                "flat decode regressed: streaming build ({flat_ns} ns/block) is no longer \
                 cheaper than the pre-refactor row-struct route ({oracle_ns} ns/block)"
            );
            // Frame-cache accounting is exact: the byte counter must equal
            // the audited sum of resident flat-buffer lengths.
            assert_eq!(
                p.frame_cache_bytes, p.frame_cache_buffer_bytes,
                "frame cache byte accounting diverged from buffer lengths"
            );
            // Same self-calibrating shape for the batched sketch fold
            // (ISSUE 8): the scan kernel's fold must beat the per-row
            // `AttrSketches::push` oracle over the identical incidence
            // multiset on continuous data.
            let (fold_ns, fold_oracle_ns) = sketch_fold_shootout();
            assert!(
                fold_ns < fold_oracle_ns,
                "batched sketch fold regressed: kernel fold ({fold_ns} ns/block) is no \
                 longer cheaper than the per-row push oracle ({fold_oracle_ns} ns/block)"
            );
            eprintln!(
                "smoke gates: profile decode {ns_per_row:.0} ns/row; shootout flat \
                 {flat_ns} ns vs row-oracle {oracle_ns} ns per dense block; \
                 sketch fold {fold_ns} ns vs push-oracle {fold_oracle_ns} ns; \
                 cache accounting exact ({} B)",
                p.frame_cache_bytes
            );
        }
        let mut json = BenchJson::new("profile");
        for (stage, snap) in p
            .stages
            .iter()
            .chain(std::iter::once(&("wall", p.wall.clone())))
        {
            let mean_ns = snap.sums.iter().sum::<u64>() as f64
                / snap.counts.iter().sum::<u64>().max(1) as f64;
            json.push_stats(LegStats {
                leg: stage.to_string(),
                samples: snap.count() as usize,
                mean_ms: mean_ns / 1e6,
                p50_ms: snap.percentile(50.0) as f64 / 1e6,
                p95_ms: snap.percentile(95.0) as f64 / 1e6,
                p99_ms: snap.percentile(99.0) as f64 / 1e6,
            });
        }
        let path = json
            .write_to(std::path::Path::new("."))
            .expect("write BENCH_profile.json");
        eprintln!("wrote {}", path.display());
        emit(profile::table(&p));
    }

    if let Some(path) = args.markdown {
        let mut out = String::new();
        for t in &tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        let mut f = std::fs::File::create(&path).expect("create markdown file");
        f.write_all(out.as_bytes()).expect("write markdown");
        eprintln!("wrote {} tables to {path}", tables.len());
    }
}
