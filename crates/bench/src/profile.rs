//! `figures --profile`: where does query latency go?
//!
//! Drives a mixed interactive session (pans at three viewport sizes plus a
//! dicing descent) against a STASH deployment, collects the [`QueryTrace`]
//! of every answer, and reports p50/p95/p99 per stage — route, PLM, merge,
//! DFS, wire, retry, wait — from the traces' cluster-wide aggregate view,
//! alongside the coordinator wall clock. The stage histograms are the
//! log₂-bucket [`stash_obs::Histogram`]s every node also keeps in its
//! registry (DESIGN.md §11).

use crate::harness::Scale;
use crate::report::Table;
use stash_data::QuerySizeClass;
use stash_model::SketchSpec;
use stash_obs::{Histogram, HistogramSnapshot, QueryTrace};

/// Collected stage distributions of one profiled run.
#[derive(Debug)]
pub struct Profile {
    pub requests: usize,
    /// `(stage, distribution)` in report order, nanosecond samples.
    pub stages: Vec<(&'static str, HistogramSnapshot)>,
    /// Coordinator wall clock per query.
    pub wall: HistogramSnapshot,
    pub subqueries: u64,
    pub retries: u64,
    pub failovers: u64,
    /// Scan-kernel counters summed over nodes (DESIGN.md §12).
    pub frame_hits: u64,
    pub frame_misses: u64,
    pub frame_evicted_bytes: u64,
    pub rows_decoded: u64,
    pub cells_derived: u64,
    /// Wall time spent producing flat frames on cache misses (`dfs.decode_ns`).
    pub decode_ns: u64,
    /// Frame-cache accounting at teardown: the incrementally maintained
    /// byte counter vs. the audited sum of resident flat-buffer lengths.
    /// Equal by construction (DESIGN.md §15); `--profile --smoke` asserts it.
    pub frame_cache_bytes: u64,
    pub frame_cache_buffer_bytes: u64,
    /// Sketch-pipeline counters summed over nodes (DESIGN.md §14).
    pub sketch_merges: u64,
    pub sketch_bytes: u64,
}

/// Fold one trace into the stage histograms.
fn observe(stages: &[(&'static str, Histogram)], wall: &Histogram, trace: &QueryTrace) {
    for ((_, hist), (_, ns)) in stages.iter().zip(trace.agg.stages()) {
        hist.record(ns);
    }
    wall.record(trace.wall_ns);
}

pub fn run(scale: &Scale) -> Profile {
    let wl = scale.workload();
    let mut rng = scale.rng();
    let mut queries = Vec::new();
    for class in [
        QuerySizeClass::State,
        QuerySizeClass::County,
        QuerySizeClass::City,
    ] {
        let pans = 10usize;
        let n_rects = (scale.throughput_requests / 3 / (pans + 1)).max(1);
        queries.extend(wl.throughput_mix(&mut rng, class, n_rects, pans, 0.10));
    }
    queries.extend(wl.dice_descending(wl.random_bbox(&mut rng, QuerySizeClass::State), 4, 0.5));
    // Zoom-out overviews at coarse resolution: each coarse Cell spans many
    // blocks (often on several nodes), so the fragment-merge and gather
    // paths — and their `sketch.merges` counter — run in the profile.
    for res in [2, 1] {
        let mut q = wl.make_query(wl.random_bbox(&mut rng, QuerySizeClass::State));
        q.spatial_res = res;
        queries.push(q);
    }

    let stages: Vec<(&'static str, Histogram)> = stash_obs::StageTimes::default()
        .stages()
        .iter()
        .map(|&(name, _)| (name, Histogram::new()))
        .collect();
    let wall = Histogram::new();
    let (mut subqueries, mut retries, mut failovers) = (0u64, 0u64, 0u64);

    // Profile runs carry sketch-valued Cells so the report shows what the
    // estimator pipeline costs and moves alongside the exact stages.
    let cluster = scale.stash_cluster_with(|c| c.stash.sketch = SketchSpec::standard());
    let client = cluster.client();
    for q in &queries {
        let (_, trace) = client.query(q).traced().run().expect("profile query");
        observe(&stages, &wall, &trace);
        subqueries += trace.subqueries as u64;
        retries += trace.retries as u64;
        failovers += trace.failovers as u64;
    }
    // Sum the scan-kernel counters across nodes before tearing down.
    let kernel = |name: &str| -> u64 {
        (0..cluster.n_nodes())
            .map(|i| cluster.node(i).obs.counter(name).get())
            .sum()
    };
    let frame_hits = kernel("dfs.frame_cache.hit");
    let frame_misses = kernel("dfs.frame_cache.miss");
    let frame_evicted_bytes = kernel("dfs.frame_cache.evicted_bytes");
    let rows_decoded = kernel("dfs.rows_decoded");
    let cells_derived = kernel("dfs.cells_derived");
    let decode_ns = kernel("dfs.decode_ns");
    let sketch_merges = kernel("sketch.merges");
    let sketch_bytes = kernel("sketch.bytes");
    let frame_cache_bytes = (0..cluster.n_nodes())
        .map(|i| cluster.node(i).store.frame_cache().bytes() as u64)
        .sum();
    let frame_cache_buffer_bytes = (0..cluster.n_nodes())
        .map(|i| cluster.node(i).store.frame_cache().buffer_bytes() as u64)
        .sum();
    cluster.shutdown();

    Profile {
        requests: queries.len(),
        stages: stages
            .into_iter()
            .map(|(name, h)| (name, h.snapshot()))
            .collect(),
        wall: wall.snapshot(),
        subqueries,
        retries,
        failovers,
        frame_hits,
        frame_misses,
        frame_evicted_bytes,
        rows_decoded,
        cells_derived,
        decode_ns,
        frame_cache_bytes,
        frame_cache_buffer_bytes,
        sketch_merges,
        sketch_bytes,
    }
}

fn col_ms(ns: u64) -> String {
    crate::report::ms(ns as f64 / 1e6)
}

pub fn table(p: &Profile) -> Table {
    let total: u64 = p
        .stages
        .iter()
        .map(|(_, s)| s.sums.iter().sum::<u64>())
        .sum();
    let mut t = Table::new(
        format!(
            "Profile — per-stage latency breakdown over {} queries (ms)",
            p.requests
        ),
        &["stage", "p50", "p95", "p99", "max", "share"],
    )
    .with_note(format!(
        "cluster-wide stage totals per query (fan-out may exceed wall); \
         {} subqueries, {} retries, {} failovers; \
         scan kernel: frame cache {} hits / {} misses / {} B evicted, \
         {} rows decoded in {:.0} ns/row, {} cells derived, \
         {} B resident ({} B buffers); \
         sketches: {} merges, {} B emitted",
        p.subqueries,
        p.retries,
        p.failovers,
        p.frame_hits,
        p.frame_misses,
        p.frame_evicted_bytes,
        p.rows_decoded,
        p.decode_ns as f64 / p.rows_decoded.max(1) as f64,
        p.cells_derived,
        p.frame_cache_bytes,
        p.frame_cache_buffer_bytes,
        p.sketch_merges,
        p.sketch_bytes
    ));
    for (stage, snap) in &p.stages {
        let sum: u64 = snap.sums.iter().sum();
        t.push(vec![
            stage.to_string(),
            col_ms(snap.percentile(50.0)),
            col_ms(snap.percentile(95.0)),
            col_ms(snap.percentile(99.0)),
            col_ms(snap.max),
            crate::report::pct(sum as f64 / total.max(1) as f64),
        ]);
    }
    t.push(vec![
        "wall".into(),
        col_ms(p.wall.percentile(50.0)),
        col_ms(p.wall.percentile(95.0)),
        col_ms(p.wall.percentile(99.0)),
        col_ms(p.wall.max),
        "-".into(),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_smoke_reports_every_stage() {
        let mut scale = Scale::small();
        scale.throughput_requests = 36;
        // Query finer than the block prefix (as the paper scale does) so
        // pan steps land in partially-scanned blocks — the frame-cache
        // geometry the counters below assert on.
        scale.spatial_res = 4;
        let p = run(&scale);
        assert!(p.requests > 0);
        assert_eq!(p.stages.len(), 7);
        assert_eq!(p.wall.count(), p.requests as u64);
        for (stage, snap) in &p.stages {
            assert_eq!(snap.count(), p.requests as u64, "stage {stage}");
        }
        // Cold pans must scan storage and talk over the wire.
        let dfs = &p.stages.iter().find(|(s, _)| *s == "dfs").unwrap().1;
        assert!(dfs.max > 0, "mixed workload must charge dfs time");
        // The scan kernel must have run: every cold block is one frame-cache
        // miss with decoded rows, and the multi-resolution mix (pans at Day,
        // the dice descent's coarser levels) exercises upward derivation.
        // Revisit pans re-touch blocks, so some hits must land too.
        assert!(p.frame_misses > 0, "cold scans must miss the frame cache");
        assert!(p.frame_hits > 0, "revisit pans must hit the frame cache");
        assert!(p.rows_decoded > 0, "misses must decode rows");
        assert!(p.decode_ns > 0, "misses must charge flat-decode time");
        // Exact accounting: the cache's byte counter is definitionally the
        // sum of its resident flat buffers' lengths.
        assert!(p.frame_cache_bytes > 0, "warm caches hold frames");
        assert_eq!(p.frame_cache_bytes, p.frame_cache_buffer_bytes);
        // The sketch pipeline runs in profile deployments: scans emit
        // sketch-carrying cells and cross-node gathers merge them.
        assert!(p.sketch_bytes > 0, "scans must emit sketch state");
        assert!(p.sketch_merges > 0, "gathers must merge sketch state");
        let rendered = table(&p).to_console();
        for stage in [
            "route", "plm", "merge", "dfs", "wire", "retry", "wait", "wall",
        ] {
            assert!(rendered.contains(stage), "missing {stage} in:\n{rendered}");
        }
        assert!(
            rendered.contains("frame cache"),
            "kernel counters missing in:\n{rendered}"
        );
        assert!(
            rendered.contains("sketches:"),
            "sketch counters missing in:\n{rendered}"
        );
    }
}
