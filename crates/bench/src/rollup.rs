//! Long-history rollups: serving coarse queries from the continuously
//! maintained rollup Cells vs recomputing them from raw blocks
//! (DESIGN.md §17).
//!
//! The workload is a historical exploration: one coarse (res-2, Day) query
//! per day of a multi-week domain plus one whole-domain overview at res 1
//! — the "how did this region evolve" pan a front-end issues over long
//! history. All bins are Day-granular so every query sits under the
//! all-sealed watermark regardless of where the domain ends (a Month cell
//! is only eligible once the whole month is inside the domain).
//! Each query is issued exactly once, so the raw leg pays a genuinely cold
//! recompute (block fetch + scan + upward derivation) for every day, while
//! the rollup leg answers every query from the watermarked rollup store
//! without touching a block. The gap is the tentpole's point: rollup
//! latency is per-*cell*, raw latency is per-*row* over ever-growing
//! history.

use crate::harness::Scale;
use crate::report::{ms, ratio, LegStats, Table};
use stash_cluster::{ClusterConfig, Mode, RollupPolicy, SimCluster};
use stash_data::GeneratorConfig;
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, TemporalRes, TimeRange};
use stash_model::{AggQuery, Level};
use std::time::Instant;

/// One measured leg of the comparison.
#[derive(Debug, Clone)]
pub struct Row {
    pub stats: LegStats,
    /// Total rollup hits reported across the leg's queries (0 for the raw
    /// ablation leg — nothing may be rollup-served there).
    pub rollup_hits: usize,
}

fn region() -> BBox {
    BBox::from_corner_extent(36.0, -124.5, 4.0, 4.5)
}

const DAY_SECS: i64 = 24 * 3600;

fn config(scale: &Scale, days: usize, policy: RollupPolicy) -> ClusterConfig {
    let start = epoch_seconds(2015, 2, 1, 0, 0, 0);
    ClusterConfig::builder()
        .n_nodes(scale.n_nodes)
        .mode(Mode::Stash)
        .data_bbox(region())
        .data_time(TimeRange::new(start, start + days as i64 * DAY_SECS).unwrap())
        .generator(GeneratorConfig {
            seed: scale.seed ^ 0xDA7A,
            obs_per_deg2_per_day: scale.density,
            max_obs_per_block: 100_000,
            value_quantum: 0.0,
        })
        .rollup(policy)
        .build()
        .expect("rollup bench config is valid")
}

/// The historical-exploration query stream: one res-2 Day query per day,
/// then one whole-domain res-1 overview spanning every day at once.
fn queries(days: usize) -> Vec<AggQuery> {
    let start = epoch_seconds(2015, 2, 1, 0, 0, 0);
    let mut qs: Vec<AggQuery> = (0..days)
        .map(|d| {
            let s = start + d as i64 * DAY_SECS;
            AggQuery::new(
                region(),
                TimeRange::new(s, s + DAY_SECS).unwrap(),
                2,
                TemporalRes::Day,
            )
        })
        .collect();
    qs.push(AggQuery::new(
        region(),
        TimeRange::new(start, start + days as i64 * DAY_SECS).unwrap(),
        1,
        TemporalRes::Day,
    ));
    qs
}

fn run_leg(scale: &Scale, days: usize, policy: RollupPolicy, leg: &str) -> Row {
    let cluster = SimCluster::new(config(scale, days, policy));
    let client = cluster.client();
    let mut samples_ms = Vec::new();
    let mut rollup_hits = 0usize;
    for q in queries(days) {
        let t = Instant::now();
        let r = client.query(&q).run().expect("rollup bench query");
        samples_ms.push(t.elapsed().as_secs_f64() * 1e3);
        rollup_hits += r.rollup_hits;
    }
    cluster.shutdown();
    Row {
        stats: LegStats::from_samples(leg, &samples_ms),
        rollup_hits,
    }
}

/// Run both legs over a `days`-long history. The rollup leg must actually
/// be rollup-served (the domain is static, so the watermark sits at the
/// horizon from boot) and the raw leg must never be.
pub fn run(scale: &Scale, days: usize) -> Vec<Row> {
    let policy = RollupPolicy::new(vec![
        Level::of(1, TemporalRes::Day).unwrap(),
        Level::of(2, TemporalRes::Day).unwrap(),
    ])
    .expect("bench rollup levels are coarse");
    let rollup = run_leg(scale, days, policy, "rollup_served");
    assert!(
        rollup.rollup_hits > 0,
        "rollup leg was never rollup-served — the bench would be comparing raw to raw"
    );
    let raw = run_leg(scale, days, RollupPolicy::disabled(), "raw_recompute");
    assert_eq!(raw.rollup_hits, 0, "raw ablation must not be rollup-served");
    vec![rollup, raw]
}

pub fn table(rows: &[Row], days: usize) -> Table {
    let mut t = Table::new(
        format!("Long-history rollups — {days}-day domain, per-day coarse queries"),
        &["leg", "queries", "mean ms", "p50 ms", "p95 ms", "p99 ms"],
    );
    for r in rows {
        t.push(vec![
            r.stats.leg.clone(),
            r.stats.samples.to_string(),
            ms(r.stats.mean_ms),
            ms(r.stats.p50_ms),
            ms(r.stats.p95_ms),
            ms(r.stats.p99_ms),
        ]);
    }
    if rows.len() == 2 && rows[1].stats.mean_ms > 0.0 {
        t = t.with_note(format!(
            "rollup-served mean is {} of the raw recompute ({} vs {} ms)",
            ratio(rows[1].stats.mean_ms / rows[0].stats.mean_ms.max(1e-9)),
            ms(rows[0].stats.mean_ms),
            ms(rows[1].stats.mean_ms),
        ));
    }
    t
}
