//! # stash-bench
//!
//! The experiment harness that regenerates **every figure of the paper's
//! evaluation** (§VIII) against the simulated cluster:
//!
//! | Module | Paper figure | What it measures |
//! |---|---|---|
//! | [`fig6::latency`] | Fig. 6a | query latency vs size: basic / cold STASH / warm STASH |
//! | [`fig6::throughput`] | Fig. 6b | throughput under a panning mix: basic vs STASH |
//! | [`fig6::maintenance`] | Fig. 6c | cold-start Cell population time vs query size |
//! | [`fig6::hotspot`] | Fig. 6d | responses/sec during a hotspot burst: replication on/off |
//! | [`fig7::dicing`] | Fig. 7a/7b | iterative dicing, descending/ascending |
//! | [`fig7::panning`] | Fig. 7c | pans of 10/20/25 % in 8 directions |
//! | [`fig7::zooming`] | Fig. 7d/7e | drill-down/roll-up with 50/75/100 % prepopulation |
//! | [`fig8`] | Fig. 8a–8c | the same pan/dice streams vs the ES-like baseline |
//! | [`ablation`] | DESIGN.md §8 | dispersion, derivation, helper selection, reroute sweep |
//! | [`fault_sweep`] | — (robustness) | throughput under uniform message loss, 100% success |
//! | [`ingest`] | — (DESIGN.md §13) | mid-stream query latency: delta-patch vs invalidate-all |
//! | [`sustained`] | — (DESIGN.md §16) | 10⁵-query closed-loop warm load: req/s + p50/p95/p99 vs delivery shards |
//! | [`rollup`] | — (DESIGN.md §17) | long-history coarse queries: rollup-served vs raw recompute |
//! | [`profile`] | — (observability) | per-stage p50/p95/p99 latency breakdown from query traces |
//!
//! Experiments run at a configurable [`Scale`]; `Scale::small()` keeps
//! `cargo bench` minutes-long while `Scale::paper()` is the configuration
//! EXPERIMENTS.md reports. Absolute times depend on the simulator's cost
//! models; the *shape* (orderings, ratios, crossovers) is what reproduces
//! the paper — see DESIGN.md §7.

pub mod ablation;
pub mod fault_sweep;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod harness;
pub mod ingest;
pub mod profile;
pub mod report;
pub mod rollup;
pub mod sustained;

pub use harness::Scale;
