//! Plain-text and markdown table rendering for experiment output, plus the
//! machine-readable `BENCH_<name>.json` emission CI and plotting scripts
//! consume (mean/p50/p95/p99 per leg).

use std::path::{Path, PathBuf};

/// A rendered experiment table: header + rows of equal arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form note comparing against the paper's reported numbers.
    pub note: String,
}

impl Table {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Fixed-width console rendering.
    pub fn to_console(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let render = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row, &widths));
            out.push('\n');
        }
        if !self.note.is_empty() {
            out.push_str(&format!("note: {}\n", self.note));
        }
        out
    }

    /// GitHub-flavored markdown rendering (EXPERIMENTS.md format).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.note.is_empty() {
            out.push_str(&format!("\n{}\n", self.note));
        }
        out
    }
}

/// Latency statistics of one benchmark leg, in milliseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LegStats {
    pub leg: String,
    pub samples: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
}

impl LegStats {
    /// Compute the stats of one leg from raw latency samples.
    pub fn from_samples(leg: impl Into<String>, samples_ms: &[f64]) -> Self {
        let mut sorted = samples_ms.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mean = if sorted.is_empty() {
            0.0
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        LegStats {
            leg: leg.into(),
            samples: sorted.len(),
            mean_ms: mean,
            p50_ms: percentile(&sorted, 0.50),
            p95_ms: percentile(&sorted, 0.95),
            p99_ms: percentile(&sorted, 0.99),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted sample set.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

/// A machine-readable benchmark report: one named bench, one entry per
/// leg. Serialized as `BENCH_<name>.json` next to the console tables so CI
/// and plotting scripts parse numbers instead of scraping table text.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchJson {
    pub name: String,
    pub legs: Vec<LegStats>,
}

impl BenchJson {
    pub fn new(name: impl Into<String>) -> Self {
        BenchJson {
            name: name.into(),
            legs: Vec::new(),
        }
    }

    /// Append a leg computed from raw latency samples (ms).
    pub fn push_leg(&mut self, leg: impl Into<String>, samples_ms: &[f64]) {
        self.legs.push(LegStats::from_samples(leg, samples_ms));
    }

    /// Append a leg whose stats were already computed elsewhere.
    pub fn push_stats(&mut self, stats: LegStats) {
        self.legs.push(stats);
    }

    /// The JSON document: `{"name": ..., "legs": [{"leg": ..., "samples":
    /// ..., "mean_ms": ..., "p50_ms": ..., "p95_ms": ..., "p99_ms": ...}]}`.
    pub fn to_json(&self) -> String {
        let legs: Vec<serde_json::Value> = self
            .legs
            .iter()
            .map(|l| {
                serde_json::json!({
                    "leg": l.leg,
                    "samples": l.samples,
                    "mean_ms": l.mean_ms,
                    "p50_ms": l.p50_ms,
                    "p95_ms": l.p95_ms,
                    "p99_ms": l.p99_ms,
                })
            })
            .collect();
        let doc = serde_json::json!({ "name": self.name, "legs": legs });
        serde_json::to_string_pretty(&doc).expect("bench report serializes")
    }

    /// Write `BENCH_<name>.json` into `dir` and return its path.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.name));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Format milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a ratio as `N.Nx`.
pub fn ratio(v: f64) -> String {
    format!("{v:.1}x")
}

/// Format a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["class", "ms"]);
        t.push(vec!["country".into(), "12.3".into()]);
        t.push(vec!["city".into(), "0.5".into()]);
        t.with_note("paper: 5x")
    }

    #[test]
    fn console_contains_all_cells() {
        let s = sample().to_console();
        for needle in [
            "demo",
            "class",
            "country",
            "12.3",
            "city",
            "0.5",
            "paper: 5x",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn markdown_is_table_shaped() {
        let s = sample().to_markdown();
        assert!(s.starts_with("### demo"));
        assert!(s.contains("| class | ms |"));
        assert!(s.contains("|---|---|"));
        assert!(s.contains("| country | 12.3 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn leg_stats_from_samples() {
        let samples: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        let s = LegStats::from_samples("warm", &samples);
        assert_eq!(s.samples, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_ms, 51.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        // Unsorted input is handled.
        let s = LegStats::from_samples("x", &[3.0, 1.0, 2.0]);
        assert_eq!(s.p50_ms, 2.0);
        // Empty input degrades to zeros instead of panicking.
        let s = LegStats::from_samples("empty", &[]);
        assert_eq!((s.samples, s.mean_ms, s.p99_ms), (0, 0.0, 0.0));
    }

    #[test]
    fn bench_json_shape_and_write() {
        let mut b = BenchJson::new("rollup");
        b.push_leg("rollup_served", &[1.0, 2.0, 3.0]);
        b.push_stats(LegStats {
            leg: "raw_recompute".into(),
            samples: 3,
            mean_ms: 10.0,
            p50_ms: 9.0,
            p95_ms: 12.0,
            p99_ms: 13.0,
        });
        let v: serde_json::Value = serde_json::from_str(&b.to_json()).expect("valid JSON");
        assert_eq!(v["name"], "rollup");
        let legs = v["legs"].as_array().expect("legs array");
        assert_eq!(legs.len(), 2);
        assert_eq!(legs[0]["leg"], "rollup_served");
        assert_eq!(legs[0]["samples"], 3);
        assert_eq!(legs[0]["p50_ms"], 2.0);
        assert_eq!(legs[1]["mean_ms"], 10.0);

        let dir = std::env::temp_dir().join("stash_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = b.write_to(&dir).expect("write json");
        assert_eq!(path.file_name().unwrap(), "BENCH_rollup.json");
        let back: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back["legs"].as_array().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(123.456), "123");
        assert_eq!(ms(12.34), "12.3");
        assert_eq!(ms(1.234), "1.23");
        assert_eq!(ratio(5.67), "5.7x");
        assert_eq!(pct(0.42), "42%");
    }
}
