//! Plain-text and markdown table rendering for experiment output.

/// A rendered experiment table: header + rows of equal arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    pub title: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// Free-form note comparing against the paper's reported numbers.
    pub note: String,
}

impl Table {
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Table {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            note: String::new(),
        }
    }

    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.note = note.into();
        self
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Fixed-width console rendering.
    pub fn to_console(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let render = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render(&self.columns, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row, &widths));
            out.push('\n');
        }
        if !self.note.is_empty() {
            out.push_str(&format!("note: {}\n", self.note));
        }
        out
    }

    /// GitHub-flavored markdown rendering (EXPERIMENTS.md format).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}\n\n", self.title);
        out.push_str(&format!("| {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.columns.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        if !self.note.is_empty() {
            out.push_str(&format!("\n{}\n", self.note));
        }
        out
    }
}

/// Format milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Format a ratio as `N.Nx`.
pub fn ratio(v: f64) -> String {
    format!("{v:.1}x")
}

/// Format a fraction as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("demo", &["class", "ms"]);
        t.push(vec!["country".into(), "12.3".into()]);
        t.push(vec!["city".into(), "0.5".into()]);
        t.with_note("paper: 5x")
    }

    #[test]
    fn console_contains_all_cells() {
        let s = sample().to_console();
        for needle in [
            "demo",
            "class",
            "country",
            "12.3",
            "city",
            "0.5",
            "paper: 5x",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn markdown_is_table_shaped() {
        let s = sample().to_markdown();
        assert!(s.starts_with("### demo"));
        assert!(s.contains("| class | ms |"));
        assert!(s.contains("|---|---|"));
        assert!(s.contains("| country | 12.3 |"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push(vec!["only-one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(ms(123.456), "123");
        assert_eq!(ms(12.34), "12.3");
        assert_eq!(ms(1.234), "1.23");
        assert_eq!(ratio(5.67), "5.7x");
        assert_eq!(pct(0.42), "42%");
    }
}
