//! Fig. 7 experiments: query optimization for visual exploration — the
//! OLAP navigation streams (dicing, panning, zooming).

use crate::harness::{time_ms, Scale};
use crate::report::{ms, pct, Table};
use rand::seq::SliceRandom;
use stash_data::QuerySizeClass;

/// Fig. 7a/7b — iterative dicing: 5 queries shrinking (descending) or
/// growing (ascending) the polygon by 20 % area per step.
pub mod dicing {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub step: usize,
        pub basic_ms: f64,
        pub stash_ms: f64,
        pub stash_hit_ratio: f64,
    }

    pub fn run(scale: &Scale, descending: bool) -> Vec<Row> {
        let wl = scale.workload();
        let mut rng = scale.rng();
        let start = wl.random_bbox(&mut rng, QuerySizeClass::Country);
        let stream = if descending {
            wl.dice_descending(start, 5, 0.20)
        } else {
            wl.dice_ascending(start, 5, 0.20)
        };

        let basic = scale.basic_cluster();
        let stash = scale.stash_cluster();
        let bc = basic.client();
        let sc = stash.client();
        let mut rows: Vec<Row> = (1..=stream.len())
            .map(|step| Row {
                step,
                basic_ms: 0.0,
                stash_ms: 0.0,
                stash_hit_ratio: 0.0,
            })
            .collect();
        for _ in 0..scale.repeats {
            stash.clear_cache();
            for (row, q) in rows.iter_mut().zip(&stream) {
                row.basic_ms += time_ms(|| bc.query(q).run().expect("basic")).0;
                let (stash_ms, result) = time_ms(|| sc.query(q).run().expect("stash"));
                row.stash_ms += stash_ms;
                row.stash_hit_ratio += result.hit_ratio();
            }
        }
        for row in &mut rows {
            row.basic_ms /= scale.repeats as f64;
            row.stash_ms /= scale.repeats as f64;
            row.stash_hit_ratio /= scale.repeats as f64;
        }
        basic.shutdown();
        stash.shutdown();
        rows
    }

    pub fn table(rows: &[Row], descending: bool) -> Table {
        let (fig, note) = if descending {
            (
                "Fig. 7a — descending iterative dicing (ms per step)",
                "paper: all Cells cached from step 2 on — large latency drop",
            )
        } else {
            (
                "Fig. 7b — ascending iterative dicing (ms per step)",
                "paper: partial reuse as extent grows — improvement, but smaller than descending",
            )
        };
        let mut t = Table::new(fig, &["step", "basic", "STASH", "STASH hit-ratio"]).with_note(note);
        for r in rows {
            t.push(vec![
                r.step.to_string(),
                ms(r.basic_ms),
                ms(r.stash_ms),
                pct(r.stash_hit_ratio),
            ]);
        }
        t
    }
}

/// Fig. 7c — panning: a state view panned by 10/20/25 % in each of the 8
/// compass directions.
pub mod panning {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub frac: f64,
        /// Mean over the 8 pan directions.
        pub basic_ms: f64,
        pub stash_ms: f64,
        /// Per-direction STASH latencies (the 8 bars of Fig. 7c).
        pub stash_by_dir: Vec<f64>,
    }

    pub fn run(scale: &Scale) -> Vec<Row> {
        let wl = scale.workload();
        let mut rng = scale.rng();
        let start = wl.random_bbox(&mut rng, QuerySizeClass::State);
        let mut rows = Vec::new();
        for frac in [0.10, 0.20, 0.25] {
            let stream = wl.pan_star(start, frac);
            let basic = scale.basic_cluster();
            let stash = scale.stash_cluster();
            let bc = basic.client();
            let sc = stash.client();
            let mut basic_total = 0.0;
            let mut stash_by_dir = vec![0.0f64; 8];
            for _ in 0..scale.repeats {
                stash.clear_cache();
                // First query warms STASH; it is not part of the pan bars.
                bc.query(&stream[0]).run().expect("basic warm");
                sc.query(&stream[0]).run().expect("stash warm");
                for (slot, q) in stash_by_dir.iter_mut().zip(&stream[1..]) {
                    basic_total += time_ms(|| bc.query(q).run().expect("basic")).0;
                    *slot += time_ms(|| sc.query(q).run().expect("stash")).0;
                }
            }
            let n = scale.repeats as f64;
            for slot in &mut stash_by_dir {
                *slot /= n;
            }
            rows.push(Row {
                frac,
                basic_ms: basic_total / (8.0 * n),
                stash_ms: stash_by_dir.iter().sum::<f64>() / 8.0,
                stash_by_dir,
            });
            basic.shutdown();
            stash.shutdown();
        }
        rows
    }

    pub fn table(rows: &[Row]) -> Table {
        let mut t = Table::new(
            "Fig. 7c — panning a state view (mean ms over 8 directions)",
            &["pan", "basic", "STASH", "reduction"],
        )
        .with_note("paper: 60–73% latency reduction vs basic; smaller pans benefit more");
        for r in rows {
            t.push(vec![
                format!("{:.0}%", r.frac * 100.0),
                ms(r.basic_ms),
                ms(r.stash_ms),
                pct(1.0 - r.stash_ms / r.basic_ms.max(1e-9)),
            ]);
        }
        t
    }
}

/// Fig. 7d/7e — zooming: drill-down (resolution 2→5) and roll-up (5→2)
/// over a state area, with 50/75/100 % of the relevant Cells pre-stacked.
pub mod zooming {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub res: u8,
        pub basic_ms: f64,
        /// STASH latency per prepopulation fraction (0.5, 0.75, 1.0).
        pub stash_ms: [f64; 3],
    }

    pub const FRACTIONS: [f64; 3] = [0.50, 0.75, 1.00];
    /// The paper drills 2→6; 1→4 is the laptop-scale analogue
    /// (DESIGN.md §7): the per-step ~32x cell growth is identical.
    pub const FROM_RES: u8 = 1;
    pub const TO_RES: u8 = 4;

    pub fn run(scale: &Scale, drill_down: bool) -> Vec<Row> {
        let wl = scale.workload();
        let mut rng = scale.rng();
        let area = wl.random_bbox(&mut rng, QuerySizeClass::State);
        let walk = if drill_down {
            wl.drill_down(area, FROM_RES, TO_RES)
        } else {
            wl.roll_up(area, TO_RES, FROM_RES)
        };

        let basic = scale.basic_cluster();
        let bc = basic.client();
        let mut rows: Vec<Row> = walk
            .iter()
            .map(|q| {
                let mut total = 0.0;
                for _ in 0..scale.repeats {
                    total += time_ms(|| bc.query(q).run().expect("basic")).0;
                }
                Row {
                    res: q.spatial_res,
                    basic_ms: total / scale.repeats as f64,
                    stash_ms: [0.0; 3],
                }
            })
            .collect();
        basic.shutdown();

        for (fi, frac) in FRACTIONS.iter().enumerate() {
            let stash = scale.stash_cluster();
            let sc = stash.client();
            for (row, q) in rows.iter_mut().zip(&walk) {
                // "Randomly stacked the STASH graph with regions covering
                // 50%, 75% and 100% of all the relevant Cells" (§VIII-D2).
                let mut total = 0.0;
                for _ in 0..scale.repeats {
                    stash.clear_cache();
                    let mut keys = q.target_keys(1_000_000).expect("plan");
                    keys.shuffle(&mut rng);
                    let take = ((keys.len() as f64) * frac).round() as usize;
                    stash
                        .warm_keys(&keys[..take.min(keys.len())])
                        .expect("warm");
                    total += time_ms(|| sc.query(q).run().expect("stash")).0;
                }
                row.stash_ms[fi] = total / scale.repeats as f64;
            }
            stash.shutdown();
        }
        rows
    }

    pub fn table(rows: &[Row], drill_down: bool) -> Table {
        let (fig, note) = if drill_down {
            (
                "Fig. 7d — drill-down latency (ms) by prepopulated fraction",
                "paper: >= 40% improvement over basic even at 50% prepopulation",
            )
        } else {
            (
                "Fig. 7e — roll-up latency (ms) by prepopulated fraction",
                "paper: same shape as drill-down; roll-up also reuses cached children",
            )
        };
        let mut t = Table::new(
            fig,
            &["res", "basic", "STASH 50%", "STASH 75%", "STASH 100%"],
        )
        .with_note(note);
        for r in rows {
            t.push(vec![
                r.res.to_string(),
                ms(r.basic_ms),
                ms(r.stash_ms[0]),
                ms(r.stash_ms[1]),
                ms(r.stash_ms[2]),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            n_nodes: 2,
            density: 48.0,
            spatial_res: 3,
            repeats: 1,
            clients: 8,
            throughput_requests: 40,
            burst_requests: 60,
            seed: 7,
        }
    }

    #[test]
    fn descending_dicing_hits_from_step_two() {
        let rows = dicing::run(&tiny(), true);
        assert_eq!(rows.len(), 5);
        for r in &rows[1..] {
            assert!(
                r.stash_hit_ratio > 0.99,
                "step {} should be fully cached, hit ratio {}",
                r.step,
                r.stash_hit_ratio
            );
            assert!(r.stash_ms < r.basic_ms, "cached step slower than basic");
        }
    }

    #[test]
    fn ascending_dicing_reuses_partially() {
        let rows = dicing::run(&tiny(), false);
        // Steps after the first should see *some* reuse but generally less
        // than the descending variant's total reuse.
        let mean_hit: f64 = rows[1..].iter().map(|r| r.stash_hit_ratio).sum::<f64>() / 4.0;
        assert!(mean_hit > 0.3, "ascending reuse too low: {mean_hit}");
    }

    #[test]
    fn panning_improves_over_basic() {
        let rows = panning::run(&tiny());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.stash_by_dir.len(), 8);
            assert!(
                r.stash_ms < r.basic_ms,
                "pan {}: stash {} !< basic {}",
                r.frac,
                r.stash_ms,
                r.basic_ms
            );
        }
        // Smaller pan => larger overlap => bigger relative gain.
        let red10 = 1.0 - rows[0].stash_ms / rows[0].basic_ms;
        let red25 = 1.0 - rows[2].stash_ms / rows[2].basic_ms;
        assert!(
            red10 >= red25 - 0.25,
            "10% pan should benefit at least as much"
        );
    }

    #[test]
    fn zooming_full_prepopulation_beats_basic() {
        let rows = zooming::run(&tiny(), true);
        assert_eq!(rows.len() as u8, zooming::TO_RES - zooming::FROM_RES + 1);
        for r in &rows {
            assert!(
                r.stash_ms[2] < r.basic_ms,
                "res {}: full prepop {} !< basic {}",
                r.res,
                r.stash_ms[2],
                r.basic_ms
            );
        }
    }
}
