//! Staleness experiment — query latency while a live stream patches and
//! invalidates the STASH graphs (DESIGN.md §13).
//!
//! A front-end keeps replaying a pan/dice workload over the live region
//! while the ingest pump streams the withheld tail of each live block into
//! the cluster. Two configurations are compared:
//!
//! * **patch** — the STASH path: the applying node merges each batch's
//!   per-level deltas into its resident Cells; only unpatchable or remote
//!   copies go stale.
//! * **invalidate-all** — the ablation: every Cell a batch touches is
//!   marked stale, so the next query recomputes it from DFS.
//!
//! The interesting columns are the mid-stream query percentiles (staleness
//! tax: how much recomputation the stream induces) and the patched /
//! invalidated counter totals that explain them.

use crate::report::Table;
use stash_cluster::{run_stream, IngestConfig, SimCluster};
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::AggQuery;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Instant;

use crate::harness::Scale;

/// One configuration's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub policy: &'static str,
    /// Mid-stream query latency percentiles (ms).
    pub p50_ms: f64,
    pub p95_ms: f64,
    /// Queries issued while the stream was in flight.
    pub queries: usize,
    /// Rows streamed to quiescence.
    pub rows: u64,
    pub cells_patched: u64,
    pub cells_invalidated: u64,
}

fn live_day() -> TimeBin {
    TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0))
}

/// Every length-3 child of tile `9q` (lat 33.75–39.375, lon −123.75–
/// −112.5) streams on the experiment day: a region-wide feed.
fn live_blocks() -> Vec<(Geohash, TimeBin)> {
    let day = live_day();
    "0123456789bcdefghjkmnpqrstuvwxyz"
        .chars()
        .map(|c| (Geohash::from_str(&format!("9q{c}")).unwrap(), day))
        .collect()
}

/// Pan/dice mix over the live region.
fn workload() -> Vec<AggQuery> {
    let day = TimeRange::whole_day(2015, 2, 2);
    let mut queries = Vec::new();
    for i in 0..4 {
        for j in 0..2 {
            queries.push(AggQuery::new(
                BBox::from_corner_extent(34.2 + 2.4 * j as f64, -123.3 + 2.6 * i as f64, 0.8, 1.4),
                day,
                4,
                TemporalRes::Day,
            ));
        }
    }
    queries.push(AggQuery::new(
        BBox::from_corner_extent(33.8, -123.7, 5.5, 11.0),
        day,
        3,
        TemporalRes::Day,
    ));
    queries.push(AggQuery::new(
        BBox::from_corner_extent(30.0, -125.0, 14.0, 20.0),
        day,
        2,
        TemporalRes::Day,
    ));
    queries
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn run_one(scale: &Scale, patch: bool) -> Row {
    let cluster: SimCluster = scale.stash_cluster_with(|c| {
        c.generator.value_quantum = 1.0 / 64.0;
        c.live_blocks = live_blocks();
        c.live_base_fraction = 0.5;
        c.ingest_patch = patch;
    });
    let client = cluster.client();
    let queries = workload();
    for q in &queries {
        client.query(q).run().expect("warm-up query");
    }

    let stream = cluster.live_stream(64);
    let rows = stream.total_rows() as u64;
    let sink = Arc::new(cluster.ingest_client());
    let producer = std::thread::spawn(move || run_stream(&stream, sink, IngestConfig::default()));

    let mut lat_ms = Vec::new();
    while !producer.is_finished() {
        for q in &queries {
            let t0 = Instant::now();
            client.query(q).run().expect("mid-stream query");
            lat_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
    }
    let stats = producer.join().expect("producer thread");
    assert_eq!(stats.rows_sent, rows, "stream must deliver every row");

    let counter = |name: &str| -> u64 {
        (0..cluster.n_nodes())
            .map(|i| cluster.node(i).obs.counter(name).get())
            .sum()
    };
    let cells_patched = counter("ingest.cells_patched");
    let cells_invalidated = counter("ingest.cells_invalidated");
    let queries_issued = lat_ms.len();
    cluster.shutdown();

    lat_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Row {
        policy: if patch { "patch" } else { "invalidate-all" },
        p50_ms: percentile(&lat_ms, 0.50),
        p95_ms: percentile(&lat_ms, 0.95),
        queries: queries_issued,
        rows,
        cells_patched,
        cells_invalidated,
    }
}

/// Run both policies on identical clusters and workloads.
pub fn run(scale: &Scale) -> Vec<Row> {
    vec![run_one(scale, true), run_one(scale, false)]
}

pub fn table(rows: &[Row]) -> Table {
    let mut t = Table::new(
        "Ingest staleness — mid-stream query latency: patch vs invalidate-all",
        &[
            "policy",
            "p50 (ms)",
            "p95 (ms)",
            "queries",
            "rows streamed",
            "cells patched",
            "cells invalidated",
        ],
    )
    .with_note(
        "Delta-patching keeps resident Cells fresh through appends, so \
         mid-stream queries stay on the cache path; the ablation stales \
         every affected Cell and pays DFS recomputation per touch. \
         Both policies converge to bit-identical answers (tests/ingest.rs).",
    );
    for r in rows {
        t.push(vec![
            r.policy.to_string(),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p95_ms),
            r.queries.to_string(),
            r.rows.to_string(),
            r.cells_patched.to_string(),
            r.cells_invalidated.to_string(),
        ]);
    }
    t
}
