//! Ablations for the design choices DESIGN.md §8 calls out:
//!
//! 1. freshness **dispersion** on/off under eviction pressure;
//! 2. **child-merge derivation** on/off for roll-up reuse;
//! 3. **antipode vs random** helper selection during Clique Handoff;
//! 4. a **reroute-probability sweep** for the hotspot burst.

use crate::harness::{drive_concurrent, time_ms, Scale};
use crate::report::{ms, pct, Table};
use stash_core::HelperSelection;
use stash_data::QuerySizeClass;
use stash_geo::BBox;
use std::sync::Arc;

/// 1 — freshness dispersion keeps contiguous hot regions resident under
/// eviction pressure. Alternate between two interleaved pan walks with a
/// Cell budget that cannot hold both; dispersion should protect the
/// region actively being explored.
pub mod dispersion {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub neighbor_fraction: f64,
        /// Hit ratio of the final pan sweep around the focus region.
        pub sweep_hit_ratio: f64,
        /// Mean latency of the final pan sweep (ms).
        pub sweep_ms: f64,
    }

    pub fn run(scale: &Scale) -> Vec<Row> {
        let wl = scale.workload();
        [0.0, 0.4]
            .into_iter()
            .map(|frac| {
                let cluster = scale.stash_cluster_with(|c| {
                    c.stash.neighbor_fraction = frac;
                    // Tight budget: replacement runs continuously.
                    c.stash.max_cells = 400;
                    c.stash.safe_fraction = 0.7;
                    c.stash.decay_tau = 24.0;
                });
                let client = cluster.client();
                let mut rng = scale.rng();

                // Phase 1: cache a state-sized region around the focus.
                let state = wl.random_bbox(&mut rng, QuerySizeClass::State);
                client.query(&wl.make_query(state)).run().expect("phase 1");

                // Phase 2: the user dices down to the center and keeps
                // interacting there while background queries elsewhere
                // pressure the cache. Dispersion keeps the *ring* around
                // the focus fresh even though only the focus is accessed.
                let focus = state.scale(0.25);
                for _ in 0..6 {
                    client.query(&wl.make_query(focus)).run().expect("focus");
                    let elsewhere = wl.random_bbox(&mut rng, QuerySizeClass::State);
                    client
                        .query(&wl.make_query(elsewhere))
                        .run()
                        .expect("pressure");
                }

                // Phase 3: pan outward from the focus — exactly into the
                // dispersed ring. Hits here are what dispersion buys.
                let (mut hits, mut lookups, mut total_ms) = (0usize, 0usize, 0.0);
                for q in wl.pan_star(focus, 0.5).iter().skip(1) {
                    let (t, r) = time_ms(|| client.query(q).run().expect("sweep"));
                    total_ms += t;
                    hits += r.cache_hits + r.derived_hits;
                    lookups += r.cache_hits + r.derived_hits + r.misses;
                }
                cluster.shutdown();
                Row {
                    neighbor_fraction: frac,
                    sweep_hit_ratio: hits as f64 / lookups.max(1) as f64,
                    sweep_ms: total_ms / 8.0,
                }
            })
            .collect()
    }

    pub fn table(rows: &[Row]) -> Table {
        let mut t = Table::new(
            "Ablation 1 — freshness dispersion under eviction pressure",
            &[
                "neighbor fraction",
                "pan-sweep hit ratio",
                "pan-sweep mean (ms)",
            ],
        )
        .with_note(
            "dispersion (0.4) keeps the ring around the focused region resident, \
             so panning back out stays cached; without it the ring is evicted",
        );
        for r in rows {
            t.push(vec![
                format!("{:.1}", r.neighbor_fraction),
                pct(r.sweep_hit_ratio),
                ms(r.sweep_ms),
            ]);
        }
        t
    }
}

/// 2 — child-merge derivation answers roll-ups from cache.
pub mod derivation {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub enabled: bool,
        pub rollup_ms: f64,
        pub derived: u64,
        pub disk_reads: u64,
    }

    pub fn run(scale: &Scale) -> Vec<Row> {
        let wl = scale.workload();
        [true, false]
            .into_iter()
            .map(|enabled| {
                let cluster = scale.stash_cluster_with(|c| {
                    c.stash.enable_derivation = enabled;
                    // The measured signal is re-reads of already-scanned
                    // blocks — the exact cost the decoded-frame cache
                    // absorbs. Pin it off so the ablation isolates
                    // derivation (§V-B), not the cache (DESIGN.md §12).
                    c.stash.frame_cache_bytes = 0;
                });
                let client = cluster.client();
                // Align the region to one coarse Cell so its 32 children are
                // exactly the fine query's cover — the clean derivation case.
                let coarse_res = wl.config().spatial_res - 1;
                let coarse_cell = stash_geo::Geohash::encode(40.0, -100.0, coarse_res)
                    .expect("domain-interior point");
                let area = coarse_cell.bbox();
                // Warm the fine level, then roll up one step: with
                // derivation the coarse Cells merge from cache; without it
                // they go to disk.
                let fine = wl.make_query(area);
                client.query(&fine).run().expect("warm fine level");
                let disk_before: u64 = cluster.node_stats().iter().map(|s| s.disk_reads).sum();
                let coarse = fine.rolled_up().expect("coarser level exists");
                let (rollup_ms, _) = time_ms(|| client.query(&coarse).run().expect("rollup"));
                let stats = cluster.node_stats();
                let row = Row {
                    enabled,
                    rollup_ms,
                    derived: stats.iter().map(|s| s.derived).sum(),
                    disk_reads: stats.iter().map(|s| s.disk_reads).sum::<u64>() - disk_before,
                };
                cluster.shutdown();
                row
            })
            .collect()
    }

    pub fn table(rows: &[Row]) -> Table {
        let mut t = Table::new(
            "Ablation 2 — child-merge derivation for roll-up",
            &[
                "derivation",
                "roll-up latency (ms)",
                "derived cells",
                "extra disk reads",
            ],
        )
        .with_note("with derivation the roll-up is served from cached children, zero disk");
        for r in rows {
            t.push(vec![
                if r.enabled { "on" } else { "off" }.into(),
                ms(r.rollup_ms),
                r.derived.to_string(),
                r.disk_reads.to_string(),
            ]);
        }
        t
    }
}

/// 3 — antipode vs random helper selection; 4 — reroute probability sweep.
pub mod hotspot {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub label: String,
        pub total_secs: f64,
        pub reroutes: u64,
    }

    fn burst(scale: &Scale, f: impl FnOnce(&mut stash_core::StashConfig)) -> Row {
        let cluster = scale.hotspot_cluster(true, f);
        let wl = scale.workload();
        let mut rng = scale.rng();
        let (dlat, dlon) = QuerySizeClass::County.extent();
        let start = BBox::from_corner_extent(42.0, -107.0, dlat, dlon);
        let queries = Arc::new(wl.hotspot_burst_at(&mut rng, start, scale.burst_requests));
        let (secs, _) = drive_concurrent(&cluster, queries, scale.clients.max(64));
        let reroutes = cluster.node_stats().iter().map(|s| s.reroutes).sum();
        cluster.shutdown();
        Row {
            label: String::new(),
            total_secs: secs,
            reroutes,
        }
    }

    /// Antipode vs random helper choice.
    pub fn helper_selection(scale: &Scale) -> Vec<Row> {
        [HelperSelection::Antipode, HelperSelection::Random]
            .into_iter()
            .map(|sel| {
                let mut row = burst(scale, |s| s.helper_selection = sel);
                row.label = format!("{sel:?}");
                row
            })
            .collect()
    }

    /// Sweep the rerouting probability.
    pub fn reroute_sweep(scale: &Scale) -> Vec<Row> {
        [0.0, 0.25, 0.5, 0.75, 1.0]
            .into_iter()
            .map(|p| {
                let mut row = burst(scale, |s| s.reroute_probability = p);
                row.label = format!("p={p:.2}");
                row
            })
            .collect()
    }

    pub fn table(rows: &[Row], title: &str, note: &str) -> Table {
        let mut t = Table::new(title, &["variant", "burst total (s)", "reroutes"]).with_note(note);
        for r in rows {
            t.push(vec![
                r.label.clone(),
                format!("{:.2}", r.total_secs),
                r.reroutes.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            n_nodes: 2,
            density: 48.0,
            spatial_res: 3,
            repeats: 1,
            clients: 8,
            throughput_requests: 40,
            burst_requests: 60,
            seed: 7,
        }
    }

    #[test]
    fn derivation_ablation_shows_disk_difference() {
        let rows = derivation::run(&tiny());
        assert_eq!(rows.len(), 2);
        let on = &rows[0];
        let off = &rows[1];
        assert!(on.enabled && !off.enabled);
        assert!(on.derived > 0, "derivation on must derive cells");
        // Boundary coarse cells whose children straddle the query edge
        // still fetch; the interior derives, so disk drops sharply.
        assert!(
            on.disk_reads < off.disk_reads,
            "derivation must reduce disk: {} !< {}",
            on.disk_reads,
            off.disk_reads
        );
        assert!(off.disk_reads > 0, "derivation off must hit disk");
    }

    #[test]
    fn dispersion_rows_complete() {
        let rows = dispersion::run(&tiny());
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.sweep_hit_ratio >= 0.0 && r.sweep_hit_ratio <= 1.0);
            assert!(r.sweep_ms > 0.0);
        }
    }
}
