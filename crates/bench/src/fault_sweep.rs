//! Fault sweep — the robustness experiment the paper doesn't have.
//!
//! §VIII evaluates STASH on a failure-free fabric. This harness hook
//! replays Fig. 6b's panning throughput mix while a seeded
//! [`FaultPlan`] drops a growing fraction of all
//! messages, and reports what the retry/failover machinery costs: success
//! stays at 100 % by construction (the driver panics on any client error),
//! so the interesting columns are throughput decay and how much repair
//! traffic (timeouts → retries → DFS replica failover) the loss induced.

use crate::harness::{drive_concurrent, Scale};
use crate::report::Table;
use stash_data::QuerySizeClass;
use stash_net::FaultPlan;
use std::sync::Arc;
use std::time::Duration;

/// One sweep point: uniform drop probability and what the cluster did
/// under it.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Uniform per-message drop probability, in percent.
    pub drop_pct: f64,
    pub rps: f64,
    /// Messages the fabric lost (fault plan + crashed/stopped endpoints).
    pub dropped: u64,
    /// Sends the fabric refused, summed over nodes (each one triggered a
    /// failover upstream).
    pub send_failures: u64,
}

/// Drive the panning mix at each drop rate on a fresh STASH cluster with
/// chaos-tuned deadlines (the defaults assume a healthy fabric and would
/// stall for 30 s per lost sub-RPC).
pub fn run(scale: &Scale) -> Vec<Row> {
    let wl = scale.workload();
    let mut rows = Vec::new();
    for &drop in &[0.0, 0.01, 0.02, 0.05] {
        let mut rng = scale.rng();
        let pans = 20usize;
        let n_rects = (scale.throughput_requests / (pans + 1)).max(1);
        let queries =
            Arc::new(wl.throughput_mix(&mut rng, QuerySizeClass::County, n_rects, pans, 0.10));

        let cluster = scale.stash_cluster_with(|c| {
            c.sub_rpc_timeout = Duration::from_millis(500);
            c.retry_backoff = Duration::from_millis(2);
            c.client_timeout = Duration::from_secs(30);
            c.client_retries = 9;
        });
        if drop > 0.0 {
            cluster
                .router()
                .install_faults(FaultPlan::new(scale.seed ^ 0xFA17).drop_all(drop));
        }
        let (secs, _) = drive_concurrent(&cluster, Arc::clone(&queries), scale.clients);
        let dropped = cluster.router().stats().messages_dropped();
        let send_failures = cluster.node_stats().iter().map(|s| s.send_failures).sum();
        cluster.shutdown();

        rows.push(Row {
            drop_pct: drop * 100.0,
            rps: queries.len() as f64 / secs,
            dropped,
            send_failures,
        });
    }
    rows
}

pub fn table(rows: &[Row]) -> Table {
    let baseline = rows.first().map_or(0.0, |r| r.rps);
    let mut t = Table::new(
        "Fault sweep — STASH throughput under uniform message loss (100% success)",
        &[
            "drop %",
            "req/s",
            "% of healthy",
            "msgs dropped",
            "send failures",
        ],
    )
    .with_note(
        "every request still answers exactly (retries + DFS replica failover); \
         the drop rate buys only latency, never wrong or missing cells",
    );
    for r in rows {
        t.push(vec![
            format!("{:.0}%", r.drop_pct),
            format!("{:.1}", r.rps),
            format!("{:.2}%", 100.0 * r.rps / baseline.max(1e-9)),
            r.dropped.to_string(),
            r.send_failures.to_string(),
        ]);
    }
    t
}
