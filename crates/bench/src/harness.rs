//! Shared experiment plumbing: scales, cluster builders, timing, and a
//! small concurrent load driver.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use stash_cluster::{ClusterConfig, Mode, SimCluster};
use stash_core::StashConfig;
use stash_data::{GeneratorConfig, WorkloadConfig, WorkloadGen};
use stash_elastic::{EsClusterConfig, EsSimCluster};
use stash_model::AggQuery;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Experiment scale: how big the simulated deployment and workloads are.
#[derive(Debug, Clone)]
pub struct Scale {
    pub n_nodes: usize,
    /// Synthetic observation density (obs / deg² / day). Must be high
    /// enough that observations far outnumber render cells — the paper's
    /// NAM regime (DESIGN.md §7).
    pub density: f64,
    /// Requested spatial resolution of workload queries (geohash length).
    pub spatial_res: u8,
    /// Repeats for latency-style experiments.
    pub repeats: usize,
    /// Concurrent clients for throughput-style experiments.
    pub clients: usize,
    /// Requests per throughput run (Fig. 6b; the paper used 10 000).
    pub throughput_requests: usize,
    /// Requests in the hotspot burst (Fig. 6d; the paper used 1 000).
    pub burst_requests: usize,
    pub seed: u64,
}

impl Scale {
    /// Minutes-long `cargo bench` scale.
    pub fn small() -> Self {
        Scale {
            n_nodes: 4,
            density: 48.0,
            spatial_res: 3,
            repeats: 2,
            clients: 32,
            throughput_requests: 400,
            burst_requests: 800,
            seed: 0x5EED,
        }
    }

    /// The scale EXPERIMENTS.md reports (laptop-feasible analogue of the
    /// paper's 120-node testbed).
    pub fn paper() -> Self {
        Scale {
            n_nodes: 8,
            density: 96.0,
            spatial_res: 4,
            repeats: 3,
            clients: 96,
            throughput_requests: 2_000,
            burst_requests: 4_000,
            seed: 0x5EED,
        }
    }

    /// A seeded RNG for reproducible workloads.
    pub fn rng(&self) -> SmallRng {
        SmallRng::seed_from_u64(self.seed)
    }

    /// The workload generator all experiments share (resolution scaled per
    /// DESIGN.md §7).
    pub fn workload(&self) -> WorkloadGen {
        WorkloadGen::new(WorkloadConfig {
            spatial_res: self.spatial_res,
            ..WorkloadConfig::default()
        })
    }

    fn base_cluster_config(&self, mode: Mode) -> ClusterConfig {
        ClusterConfig::builder()
            .n_nodes(self.n_nodes)
            .mode(mode)
            .generator(GeneratorConfig {
                seed: self.seed ^ 0xDA7A,
                obs_per_deg2_per_day: self.density,
                max_obs_per_block: 100_000,
                value_quantum: 0.0,
            })
            .build()
            .expect("bench scale config is valid")
    }

    /// A STASH-enabled deployment.
    pub fn stash_cluster(&self) -> SimCluster {
        SimCluster::new(self.base_cluster_config(Mode::Stash))
    }

    /// A STASH deployment with custom STASH knobs.
    pub fn stash_cluster_with(&self, f: impl FnOnce(&mut ClusterConfig)) -> SimCluster {
        let mut config = self.base_cluster_config(Mode::Stash);
        f(&mut config);
        SimCluster::new(config)
    }

    /// The bare storage system (no STASH).
    pub fn basic_cluster(&self) -> SimCluster {
        let mut config = self.base_cluster_config(Mode::Basic);
        // The baseline models the paper's plain Galileo, where every
        // repeated block scan pays the disk again; keep the decoded-frame
        // cache out of it so the figures compare against that system
        // (DESIGN.md §12).
        config.stash.frame_cache_bytes = 0;
        SimCluster::new(config)
    }

    /// The ElasticSearch-like baseline over the same dataset and cost
    /// models.
    pub fn es_cluster(&self) -> EsSimCluster {
        EsSimCluster::new(EsClusterConfig {
            n_nodes: self.n_nodes,
            n_shards: self.n_nodes * 5, // the paper's 600-over-120 ratio
            generator: GeneratorConfig {
                seed: self.seed ^ 0xDA7A,
                obs_per_deg2_per_day: self.density,
                max_obs_per_block: 100_000,
                value_quantum: 0.0,
            },
            ..EsClusterConfig::default()
        })
    }

    /// The hotspot-regime STASH config (virtual serve cost dominates; see
    /// DESIGN.md §2 on single-core hosting).
    pub fn hotspot_cluster(
        &self,
        enable_replication: bool,
        stash_overrides: impl FnOnce(&mut StashConfig),
    ) -> SimCluster {
        let mut config = self.base_cluster_config(Mode::Stash);
        config.enable_replication = enable_replication;
        config.coord_workers = 24;
        config.cell_service_cost = Duration::from_micros(100);
        config.stash.hotspot_threshold = 24;
        config.stash.cooldown_ticks = 400;
        config.stash.clique_depth = 3;
        config.stash.max_replicable_cells = 16_384;
        config.stash.reroute_probability = 0.5;
        config.stash.routing_ttl_ticks = 1_000_000;
        config.stash.guest_ttl_ticks = 1_000_000;
        stash_overrides(&mut config.stash);
        SimCluster::new(config)
    }
}

/// Wall-clock milliseconds of one call.
pub fn time_ms<R>(f: impl FnOnce() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64() * 1e3, r)
}

/// Mean of per-query latencies over a stream, sequentially.
pub fn mean_latency_ms(queries: &[AggQuery], mut run: impl FnMut(&AggQuery)) -> f64 {
    assert!(!queries.is_empty());
    let t0 = Instant::now();
    for q in queries {
        run(q);
    }
    t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64
}

/// Drive a query stream with `clients` concurrent closed-loop clients.
/// Returns total seconds and per-request completion offsets (seconds since
/// start, one per request, unordered).
pub fn drive_concurrent(
    cluster: &SimCluster,
    queries: Arc<Vec<AggQuery>>,
    clients: usize,
) -> (f64, Vec<f64>) {
    let next = Arc::new(AtomicUsize::new(0));
    let completions = Arc::new(Mutex::new(Vec::with_capacity(queries.len())));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let client = cluster.client();
            let queries = Arc::clone(&queries);
            let next = Arc::clone(&next);
            let completions = Arc::clone(&completions);
            std::thread::spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= queries.len() {
                    return;
                }
                client.query(&queries[i]).run().expect("driver query");
                completions
                    .lock()
                    .expect("completions mutex")
                    .push(t0.elapsed().as_secs_f64());
            })
        })
        .collect();
    for h in handles {
        h.join().expect("driver thread");
    }
    let total = t0.elapsed().as_secs_f64();
    let offsets = Arc::try_unwrap(completions)
        .expect("drivers joined")
        .into_inner()
        .expect("completions mutex");
    (total, offsets)
}

/// Bucket completion offsets into fixed-width bins (responses per bucket) —
/// the y-axis of Fig. 6d.
pub fn bucketize(offsets: &[f64], bucket_secs: f64) -> Vec<usize> {
    let max = offsets.iter().cloned().fold(0.0f64, f64::max);
    let n = (max / bucket_secs).ceil() as usize + 1;
    let mut buckets = vec![0usize; n];
    for &t in offsets {
        buckets[(t / bucket_secs) as usize] += 1;
    }
    buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        let s = Scale::small();
        let p = Scale::paper();
        assert!(s.n_nodes <= p.n_nodes);
        assert!(s.throughput_requests < p.throughput_requests);
    }

    #[test]
    fn bucketize_counts_everything() {
        let offsets = [0.05, 0.15, 0.17, 0.31, 0.99];
        let buckets = bucketize(&offsets, 0.1);
        assert_eq!(buckets.iter().sum::<usize>(), offsets.len());
        assert_eq!(buckets[0], 1);
        assert_eq!(buckets[1], 2);
        assert_eq!(buckets[3], 1);
        assert_eq!(buckets[9], 1);
    }

    #[test]
    fn time_ms_measures() {
        let (ms, v) = time_ms(|| {
            std::thread::sleep(Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert!(ms >= 9.0);
    }
}
