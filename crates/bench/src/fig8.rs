//! Fig. 8 experiments: STASH vs the ElasticSearch-like baseline on the
//! same overlapping-request streams (§VIII-F).
//!
//! The comparison holds dataset, disk model, and network fixed and varies
//! only the middleware: STASH reuses partial results Cell-by-Cell, while
//! the ES request cache only fires on byte-identical queries.

use crate::harness::{time_ms, Scale};
use crate::report::{ms, pct, Table};
use stash_data::QuerySizeClass;
use stash_model::AggQuery;

#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub step: usize,
    pub stash_ms: f64,
    pub es_ms: f64,
}

/// Run one query stream on both engines, timing each step; averaged over
/// `scale.repeats` cold-cache passes (single-core scheduling is noisy).
fn run_stream(scale: &Scale, stream: &[AggQuery]) -> Vec<Row> {
    let stash = scale.stash_cluster();
    let es = scale.es_cluster();
    let sc = stash.client();
    let ec = es.client();
    let mut rows: Vec<Row> = (1..=stream.len())
        .map(|step| Row {
            step,
            stash_ms: 0.0,
            es_ms: 0.0,
        })
        .collect();
    for _ in 0..scale.repeats {
        stash.clear_cache();
        es.clear_caches();
        for (row, q) in rows.iter_mut().zip(stream) {
            row.stash_ms += time_ms(|| sc.query(q).run().expect("stash")).0;
            row.es_ms += time_ms(|| ec.query(q).expect("es")).0;
        }
    }
    for row in &mut rows {
        row.stash_ms /= scale.repeats as f64;
        row.es_ms /= scale.repeats as f64;
    }
    stash.shutdown();
    es.shutdown();
    rows
}

/// Fig. 8a — the state-view panning stream (start + 8 pans of 20 %).
pub fn panning(scale: &Scale) -> Vec<Row> {
    let wl = scale.workload();
    let mut rng = scale.rng();
    let start = wl.random_bbox(&mut rng, QuerySizeClass::State);
    run_stream(scale, &wl.pan_star(start, 0.20))
}

/// Fig. 8b — ascending iterative dicing.
pub fn dicing_ascending(scale: &Scale) -> Vec<Row> {
    let wl = scale.workload();
    let mut rng = scale.rng();
    let start = wl.random_bbox(&mut rng, QuerySizeClass::Country);
    run_stream(scale, &wl.dice_ascending(start, 5, 0.20))
}

/// Fig. 8c — descending iterative dicing.
pub fn dicing_descending(scale: &Scale) -> Vec<Row> {
    let wl = scale.workload();
    let mut rng = scale.rng();
    let start = wl.random_bbox(&mut rng, QuerySizeClass::Country);
    run_stream(scale, &wl.dice_descending(start, 5, 0.20))
}

/// Latency reduction of the best post-first step relative to the first
/// query — the percentage the paper quotes for Fig. 8a.
pub fn best_reduction(rows: &[Row], pick: impl Fn(&Row) -> f64) -> f64 {
    let first = pick(&rows[0]);
    let best = rows[1..].iter().map(&pick).fold(f64::INFINITY, f64::min);
    1.0 - best / first.max(1e-9)
}

pub fn table(rows: &[Row], which: &str) -> Table {
    let (title, note) = match which {
        "8a" => (
            "Fig. 8a — panning: STASH vs ES-like baseline (ms per step)",
            "paper: from step 2 on, STASH reduces latency 49.7–70% vs its first query; ES only 0.6–2%",
        ),
        "8b" => (
            "Fig. 8b — ascending dicing: STASH vs ES-like baseline (ms per step)",
            "paper: STASH reuses nested Cells as the extent grows; ES recomputes every step",
        ),
        _ => (
            "Fig. 8c — descending dicing: STASH vs ES-like baseline (ms per step)",
            "paper: STASH drops steeply from step 2 (all Cells cached); ES stays flat",
        ),
    };
    let mut t = Table::new(title, &["step", "STASH", "ES-like"]).with_note(format!(
        "{note}; measured best reduction vs first query: STASH {}, ES {}",
        pct(best_reduction(rows, |r| r.stash_ms)),
        pct(best_reduction(rows, |r| r.es_ms)),
    ));
    for r in rows {
        t.push(vec![r.step.to_string(), ms(r.stash_ms), ms(r.es_ms)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            n_nodes: 2,
            density: 48.0,
            spatial_res: 3,
            repeats: 1,
            clients: 8,
            throughput_requests: 40,
            burst_requests: 60,
            seed: 7,
        }
    }

    #[test]
    fn stash_dominates_es_at_steady_state_panning() {
        let rows = panning(&tiny());
        assert_eq!(rows.len(), 9);
        // The robust Fig. 8a claim: "the second query onwards, STASH's
        // latency is significantly lower" than the ES baseline's.
        let stash_ss: f64 = rows[2..].iter().map(|r| r.stash_ms).sum::<f64>() / 7.0;
        let es_ss: f64 = rows[2..].iter().map(|r| r.es_ms).sum::<f64>() / 7.0;
        assert!(
            stash_ss < es_ss,
            "steady-state STASH {stash_ss} must beat ES {es_ss}"
        );
        let stash_red = best_reduction(&rows, |r| r.stash_ms);
        assert!(
            stash_red > 0.3,
            "STASH should improve markedly: {stash_red}"
        );
    }

    #[test]
    fn descending_dicing_stash_is_fast_after_first() {
        let rows = dicing_descending(&tiny());
        assert_eq!(rows.len(), 5);
        // Mean over steps 2..5: STASH (all Cells cached) must beat the
        // recompute-bound baseline.
        let stash_ss: f64 = rows[1..].iter().map(|r| r.stash_ms).sum::<f64>() / 4.0;
        let es_ss: f64 = rows[1..].iter().map(|r| r.es_ms).sum::<f64>() / 4.0;
        assert!(stash_ss < es_ss, "stash {stash_ss} !< es {es_ss}");
    }

    #[test]
    fn best_reduction_math() {
        let rows = vec![
            Row {
                step: 1,
                stash_ms: 100.0,
                es_ms: 100.0,
            },
            Row {
                step: 2,
                stash_ms: 30.0,
                es_ms: 98.0,
            },
            Row {
                step: 3,
                stash_ms: 50.0,
                es_ms: 99.0,
            },
        ];
        assert!((best_reduction(&rows, |r| r.stash_ms) - 0.7).abs() < 1e-9);
        assert!((best_reduction(&rows, |r| r.es_ms) - 0.02).abs() < 1e-9);
    }
}
