//! Fig. 6 experiments: core latency/throughput/maintenance/hotspot results.

use crate::harness::{bucketize, drive_concurrent, mean_latency_ms, time_ms, Scale};
use crate::report::{ms, ratio, Table};
use rand::Rng;
use stash_data::QuerySizeClass;
use std::sync::Arc;

/// Fig. 6a — "effects of query size on latency": the basic system vs an
/// empty (cold, worst-case) STASH vs a fully-populated (warm, best-case)
/// STASH, for the four query size classes.
pub mod latency {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub class: QuerySizeClass,
        pub basic_ms: f64,
        pub cold_ms: f64,
        pub warm_ms: f64,
    }

    pub fn run(scale: &Scale) -> Vec<Row> {
        let basic = scale.basic_cluster();
        let stash = scale.stash_cluster();
        let wl = scale.workload();
        let mut rng = scale.rng();
        let mut rows = Vec::new();
        for class in QuerySizeClass::ALL {
            let (mut basic_ms, mut cold_ms, mut warm_ms) = (0.0, 0.0, 0.0);
            for _ in 0..scale.repeats {
                let q = wl.random_query(&mut rng, class);
                let bc = basic.client();
                basic_ms += time_ms(|| bc.query(&q).run().expect("basic")).0;
                stash.clear_cache();
                let sc = stash.client();
                cold_ms += time_ms(|| sc.query(&q).run().expect("cold")).0;
                warm_ms += time_ms(|| sc.query(&q).run().expect("warm")).0;
            }
            let n = scale.repeats as f64;
            rows.push(Row {
                class,
                basic_ms: basic_ms / n,
                cold_ms: cold_ms / n,
                warm_ms: warm_ms / n,
            });
        }
        basic.shutdown();
        stash.shutdown();
        rows
    }

    pub fn table(rows: &[Row]) -> Table {
        let mut t = Table::new(
            "Fig. 6a — query latency vs size (ms)",
            &["class", "basic", "STASH cold", "STASH warm", "basic/warm"],
        )
        .with_note(
            "paper: warm STASH ~5x faster than basic for country/state; \
             cold STASH slightly worse than basic (lookup overhead)",
        );
        for r in rows {
            t.push(vec![
                r.class.to_string(),
                ms(r.basic_ms),
                ms(r.cold_ms),
                ms(r.warm_ms),
                ratio(r.basic_ms / r.warm_ms.max(1e-9)),
            ]);
        }
        t
    }
}

/// Fig. 6b — throughput of a panning mix (the paper's "10,000 requests from
/// 100 random rectangles panned 100 times"): basic vs STASH.
pub mod throughput {
    use super::*;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub class: QuerySizeClass,
        pub basic_rps: f64,
        pub stash_rps: f64,
    }

    pub fn run(scale: &Scale) -> Vec<Row> {
        let wl = scale.workload();
        let mut rows = Vec::new();
        for class in [
            QuerySizeClass::State,
            QuerySizeClass::County,
            QuerySizeClass::City,
        ] {
            let mut rng = scale.rng();
            let pans = 20usize;
            let n_rects = (scale.throughput_requests / (pans + 1)).max(1);
            let queries = Arc::new(wl.throughput_mix(&mut rng, class, n_rects, pans, 0.10));

            let basic = scale.basic_cluster();
            let (basic_secs, _) = drive_concurrent(&basic, Arc::clone(&queries), scale.clients);
            basic.shutdown();

            let stash = scale.stash_cluster();
            let (stash_secs, _) = drive_concurrent(&stash, Arc::clone(&queries), scale.clients);
            stash.shutdown();

            rows.push(Row {
                class,
                basic_rps: queries.len() as f64 / basic_secs,
                stash_rps: queries.len() as f64 / stash_secs,
            });
        }
        rows
    }

    pub fn table(rows: &[Row]) -> Table {
        let mut t = Table::new(
            "Fig. 6b — throughput under panning mix (requests/s)",
            &["class", "basic", "STASH", "speedup"],
        )
        .with_note("paper: 5.7x / 4x / 3.7x for state / county / city");
        for r in rows {
            t.push(vec![
                r.class.to_string(),
                format!("{:.0}", r.basic_rps),
                format!("{:.0}", r.stash_rps),
                ratio(r.stash_rps / r.basic_rps.max(1e-9)),
            ]);
        }
        t
    }
}

/// Fig. 6b core-scaling legs (PR 9): the same panning mix against STASH
/// alone, repeated per delivery-shard count of the fabric. On the old
/// single-router-thread fabric every leg is the same number; on the
/// sharded fabric req/s should grow toward the host's core count.
pub mod core_scaling {
    use super::*;
    use crate::sustained::shard_legs;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub shards: usize,
        pub stash_rps: f64,
    }

    pub fn run(scale: &Scale) -> Vec<Row> {
        let wl = scale.workload();
        let mut rng = scale.rng();
        let pans = 20usize;
        let n_rects = (scale.throughput_requests / (pans + 1)).max(1);
        let queries =
            Arc::new(wl.throughput_mix(&mut rng, QuerySizeClass::State, n_rects, pans, 0.10));
        shard_legs()
            .into_iter()
            .map(|shards| {
                let stash = scale.stash_cluster_with(|c| c.net.delivery_shards = shards);
                // Warm pass: the cold first touch of every viewport is
                // virtual-disk-bound (modeled sleeps), which would mask the
                // fabric entirely. The measured pass is the warm path — the
                // part whose throughput the shards are supposed to scale.
                let warm = stash.client();
                for q in queries.iter() {
                    warm.query(q).run().expect("core-scaling warm-up");
                }
                let (secs, _) = drive_concurrent(&stash, Arc::clone(&queries), scale.clients);
                stash.shutdown();
                Row {
                    shards,
                    stash_rps: queries.len() as f64 / secs,
                }
            })
            .collect()
    }

    pub fn table(rows: &[Row]) -> Table {
        let base = rows.first().map(|r| r.stash_rps).unwrap_or(1.0);
        let mut t = Table::new(
            "Fig. 6b core-scaling legs — warm STASH req/s vs delivery shards (state class)",
            &["shards", "STASH req/s", "vs 1 shard"],
        )
        .with_note(
            "same panning mix per leg, warmed before measuring; the 1-shard leg is the \
             old single-router-thread fabric — scaling is bounded by the host's real core count",
        );
        for r in rows {
            t.push(vec![
                r.shards.to_string(),
                format!("{:.0}", r.stash_rps),
                ratio(r.stash_rps / base.max(1e-9)),
            ]);
        }
        t
    }
}

/// Fig. 6c — STASH maintenance: time to populate the graph with a cold
/// query's Cells, per query size class.
pub mod maintenance {
    use super::*;
    use stash_core::{LogicalClock, StashConfig, StashGraph};
    use stash_model::Cell;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub class: QuerySizeClass,
        pub n_cells: usize,
        pub populate_ms: f64,
    }

    pub fn run(scale: &Scale) -> Vec<Row> {
        let wl = scale.workload();
        let mut rng = scale.rng();
        let mut rows = Vec::new();
        for class in QuerySizeClass::ALL {
            let q = wl.random_query(&mut rng, class);
            let keys = q.target_keys(1_000_000).expect("plan");
            let cells: Vec<Cell> = keys
                .iter()
                .map(|&k| {
                    let mut c = Cell::empty(k, 4);
                    c.summary.push_row(&[rng.gen(), rng.gen(), 0.0, 0.0]);
                    c
                })
                .collect();
            let mut total = 0.0;
            for _ in 0..scale.repeats {
                let graph = StashGraph::new(
                    StashConfig::default(),
                    std::sync::Arc::new(LogicalClock::new()),
                );
                total += time_ms(|| graph.insert_many(cells.iter().cloned())).0;
            }
            rows.push(Row {
                class,
                n_cells: keys.len(),
                populate_ms: total / scale.repeats as f64,
            });
        }
        rows
    }

    pub fn table(rows: &[Row]) -> Table {
        let mut t = Table::new(
            "Fig. 6c — cold-start Cell population time",
            &["class", "cells", "populate (ms)"],
        )
        .with_note("paper: population time falls with query size (fewer Cells to insert)");
        for r in rows {
            t.push(vec![
                r.class.to_string(),
                r.n_cells.to_string(),
                ms(r.populate_ms),
            ]);
        }
        t
    }
}

/// Fig. 6d — hotspot: responses per second over time during a single-region
/// burst, with and without dynamic Clique replication.
pub mod hotspot {
    use super::*;
    use stash_geo::BBox;

    #[derive(Debug, Clone, PartialEq)]
    pub struct Series {
        pub bucket_secs: f64,
        pub without: Vec<usize>,
        pub with_repl: Vec<usize>,
        pub without_total_secs: f64,
        pub with_total_secs: f64,
        pub handoffs: u64,
        pub reroutes: u64,
    }

    pub fn run(scale: &Scale) -> Series {
        // Pin the region inside one 2-char geohash partition ('9x') so a
        // single node hotspots, like the paper's single-region burst.
        let wl = scale.workload();
        let (dlat, dlon) = QuerySizeClass::County.extent();
        let start = BBox::from_corner_extent(42.0, -107.0, dlat, dlon);

        let run_one = |enable: bool| {
            let cluster = scale.hotspot_cluster(enable, |_| {});
            let mut rng = scale.rng();
            let queries = Arc::new(wl.hotspot_burst_at(&mut rng, start, scale.burst_requests));
            let (secs, offsets) = drive_concurrent(&cluster, queries, scale.clients.max(64));
            let stats = cluster.node_stats();
            let handoffs: u64 = stats.iter().map(|s| s.handoffs).sum();
            let reroutes: u64 = stats.iter().map(|s| s.reroutes).sum();
            cluster.shutdown();
            (secs, offsets, handoffs, reroutes)
        };

        let (without_secs, without_off, _, _) = run_one(false);
        let (with_secs, with_off, handoffs, reroutes) = run_one(true);
        let bucket = (without_secs.max(with_secs) / 20.0).max(0.05);
        Series {
            bucket_secs: bucket,
            without: bucketize(&without_off, bucket),
            with_repl: bucketize(&with_off, bucket),
            without_total_secs: without_secs,
            with_total_secs: with_secs,
            handoffs,
            reroutes,
        }
    }

    pub fn table(s: &Series) -> Table {
        let mut t = Table::new(
            "Fig. 6d — hotspot burst: responses per time bucket",
            &["t (s)", "no replication", "with replication"],
        )
        .with_note(format!(
            "totals: {:.2}s without vs {:.2}s with replication ({:+.0}% throughput, \
             {} handoffs, {} rerouted subqueries); paper: ~40% improvement, finishes ~20s earlier",
            s.without_total_secs,
            s.with_total_secs,
            (s.without_total_secs / s.with_total_secs - 1.0) * 100.0,
            s.handoffs,
            s.reroutes,
        ));
        let n = s.without.len().max(s.with_repl.len());
        for i in 0..n {
            t.push(vec![
                format!("{:.2}", i as f64 * s.bucket_secs),
                s.without.get(i).copied().unwrap_or(0).to_string(),
                s.with_repl.get(i).copied().unwrap_or(0).to_string(),
            ]);
        }
        t
    }
}

/// Sequential-latency helper shared by the criterion wrappers.
pub fn warm_latency_ms(scale: &Scale, class: QuerySizeClass) -> f64 {
    let stash = scale.stash_cluster();
    let wl = scale.workload();
    let mut rng = scale.rng();
    let q = wl.random_query(&mut rng, class);
    let client = stash.client();
    client.query(&q).run().expect("warm-up");
    let lat = mean_latency_ms(std::slice::from_ref(&q), |q| {
        client.query(q).run().expect("timed");
    });
    stash.shutdown();
    lat
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            n_nodes: 2,
            density: 48.0,
            spatial_res: 3,
            repeats: 1,
            clients: 8,
            throughput_requests: 40,
            burst_requests: 60,
            seed: 7,
        }
    }

    #[test]
    fn fig6a_shape_holds_at_tiny_scale() {
        let rows = latency::run(&tiny());
        assert_eq!(rows.len(), 4);
        // Warm must beat basic for the large classes (the headline claim).
        let country = &rows[0];
        assert!(
            country.warm_ms < country.basic_ms,
            "warm {} !< basic {}",
            country.warm_ms,
            country.basic_ms
        );
        let t = latency::table(&rows);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn fig6c_population_falls_with_size() {
        let rows = maintenance::run(&tiny());
        assert_eq!(rows.len(), 4);
        assert!(
            rows[0].n_cells > rows[3].n_cells,
            "country must have more cells than city"
        );
        assert!(
            rows[0].populate_ms >= rows[3].populate_ms,
            "population time should fall with query size"
        );
    }

    #[test]
    fn fig6b_runs_and_speeds_up() {
        let rows = throughput::run(&tiny());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.stash_rps > 0.0 && r.basic_rps > 0.0);
        }
        // State-class speedup should be the largest of the three. The wide
        // margin keeps this stable when the full workspace suite runs in
        // parallel on a small host (timing ratios get noisy under load).
        assert!(
            rows[0].stash_rps / rows[0].basic_rps >= rows[2].stash_rps / rows[2].basic_rps * 0.3,
            "state speedup should not be far below city speedup"
        );
    }
}
