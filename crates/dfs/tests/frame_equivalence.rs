//! Equivalence of the columnar frame kernel against the seed's direct
//! per-level binning (ISSUE 4 satellite): `NodeStore::scan_block` (decode
//! once → aggregate flat → derive upward, DESIGN.md §12) must produce
//! bit-for-bit the same summaries as `NodeStore::scan_block_direct` (one
//! geohash encode per observation × resolution group) across random
//! blocks, resolution mixes, and wanted-cell subsets.
//!
//! Attribute values are dyadic (multiples of 0.25, |v| ≤ 1024) so every
//! intermediate sum and sum-of-squares is exactly representable in f64:
//! the two kernels merge in different orders, and with exact arithmetic
//! any bitwise difference is a real binning bug, not float reassociation.
//! The finest-resolution group needs no such care — the frame kernel
//! pushes those rows in block order, the same sequence the direct path
//! executes — but coarser derived groups merge finest partials, so the
//! dyadic restriction is what makes `==` a sound oracle for them.

use proptest::prelude::*;
use stash_dfs::{BlockKey, BlockSource, DiskModel, NodeStore, Partitioner};
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{CellKey, CellSummary, Observation, SketchFoldMode, SketchSpec};
use std::str::FromStr;
use std::sync::Arc;

/// A literal in-memory block: every read yields these exact rows.
struct VecSource {
    rows: Vec<Observation>,
    n_attrs: usize,
}

impl BlockSource for VecSource {
    fn read_block(&self, _key: BlockKey) -> Vec<Observation> {
        self.rows.clone()
    }
    fn block_bytes(&self, _geohash: Geohash) -> usize {
        self.rows.len() * 64 + 1
    }
    fn n_attrs(&self) -> usize {
        self.n_attrs
    }
}

const TILES: [&str; 4] = ["9", "9x", "9xj", "dr5r"];
const DAY_SECS: i64 = 86_400;

/// The (spatial delta from tile, temporal res) mix a `level_mask` bit
/// enables. Deltas reach below the tile (coarser) and two levels above
/// (finer); every temporal resolution appears.
const COMBOS: [(i8, TemporalRes); 6] = [
    (-1, TemporalRes::Month),
    (0, TemporalRes::Year),
    (0, TemporalRes::Day),
    (1, TemporalRes::Day),
    (1, TemporalRes::Hour),
    (2, TemporalRes::Hour),
];

fn store_for(tile: Geohash, rows: Vec<Observation>, cache_bytes: usize) -> NodeStore {
    let bbox = BBox::new(-90.0, 90.0, -180.0, 180.0).unwrap();
    let time = TimeRange::new(
        epoch_seconds(2015, 1, 1, 0, 0, 0),
        epoch_seconds(2016, 1, 1, 0, 0, 0),
    )
    .unwrap();
    NodeStore::new(
        0,
        Partitioner::new(1, 1),
        tile.len(),
        bbox,
        time,
        DiskModel::free(),
        Arc::new(VecSource { rows, n_attrs: 2 }),
        10_000,
    )
    .with_scan_cost(std::time::Duration::ZERO)
    .with_frame_cache_bytes(cache_bytes)
}

fn sorted(mut cells: Vec<(CellKey, CellSummary)>) -> Vec<(CellKey, CellSummary)> {
    cells.sort_unstable_by_key(|&(k, _)| k);
    cells
}

proptest! {
    #[test]
    fn frame_kernel_matches_direct_binning(
        tile_idx in 0usize..TILES.len(),
        raw_rows in proptest::collection::vec(
            // (lat u, lon u, second of day, two dyadic attribute quarters)
            (0.0f64..1.0, 0.0f64..1.0, 0u32..86_400, -4096i32..=4096, -4096i32..=4096),
            1..120,
        ),
        level_mask in 1u8..64,
        subset_stride in 1usize..4,
        cache_bytes in prop_oneof![Just(0usize), Just(64usize << 20)],
    ) {
        let tile = Geohash::from_str(TILES[tile_idx]).unwrap();
        let tb = tile.bbox();
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let day_start = day.start();
        let rows: Vec<Observation> = raw_rows
            .iter()
            .map(|&(u, v, sec, q0, q1)| {
                Observation::new(
                    tb.min_lat + u * (tb.max_lat - tb.min_lat),
                    tb.min_lon + v * (tb.max_lon - tb.min_lon),
                    day_start + sec as i64 % DAY_SECS,
                    vec![q0 as f64 * 0.25, q1 as f64 * 0.25],
                )
            })
            .collect();
        let store = store_for(tile, rows.clone(), cache_bytes);
        let bk = BlockKey { geohash: tile, day };

        // Wanted cells: for each enabled resolution combo, the cells of a
        // strided subset of the rows (so most combos cover only part of
        // the block) — duplicates left in to exercise dedup.
        let mut wanted: Vec<CellKey> = Vec::new();
        for (bit, &(delta, t_res)) in COMBOS.iter().enumerate() {
            if level_mask & (1 << bit) == 0 {
                continue;
            }
            let s_res = (tile.len() as i8 + delta).clamp(1, 12) as u8;
            for obs in rows.iter().step_by(subset_stride) {
                if let Some(key) = obs.cell_key(s_res, t_res) {
                    wanted.push(key);
                }
            }
        }
        prop_assert!(!wanted.is_empty(), "mask {level_mask} selected no cells");

        let new = sorted(store.scan_block(bk, &wanted).cells);
        let old = store.scan_block_direct(bk, &wanted);
        prop_assert_eq!(&new, &old, "frame kernel diverged from direct binning");

        // A second scan — a cache hit when the budget allows — must be
        // byte-identical to the cold one.
        let warm = store.scan_block(bk, &wanted);
        prop_assert_eq!(warm.cache_hit, cache_bytes > 0);
        prop_assert_eq!(sorted(warm.cells), new, "warm scan diverged from cold");
    }

    /// Sketch-enabled scans must match a direct per-cell raw-row fold
    /// bit-for-bit at *every* level. The kernel derives exact stats for
    /// coarse groups by merging finest partials, but sketch state is fed
    /// raw rows per cell in ascending `(finest slot, row)` order — row
    /// order itself for finest cells, and a reordering that every sketch
    /// state except an over-cap heavy-hitter candidate list is invariant
    /// to. At ≤ 100 rows the candidate cap (256) is never approached, so
    /// `==` is sound for the sketch halves here; the dyadic attribute
    /// restriction keeps it sound for the exact halves too.
    #[test]
    fn frame_kernel_sketches_match_direct_fold(
        tile_idx in 0usize..TILES.len(),
        raw_rows in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u32..86_400, -4096i32..=4096, -4096i32..=4096),
            1..100,
        ),
        level_mask in 1u8..64,
        subset_stride in 1usize..4,
    ) {
        let tile = Geohash::from_str(TILES[tile_idx]).unwrap();
        let tb = tile.bbox();
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let day_start = day.start();
        let rows: Vec<Observation> = raw_rows
            .iter()
            .map(|&(u, v, sec, q0, q1)| {
                Observation::new(
                    tb.min_lat + u * (tb.max_lat - tb.min_lat),
                    tb.min_lon + v * (tb.max_lon - tb.min_lon),
                    day_start + sec as i64 % DAY_SECS,
                    vec![q0 as f64 * 0.25, q1 as f64 * 0.25],
                )
            })
            .collect();
        let spec = SketchSpec::standard();
        let store = store_for(tile, rows.clone(), 0).with_sketches(spec.clone());
        let bk = BlockKey { geohash: tile, day };

        let mut wanted: Vec<CellKey> = Vec::new();
        for (bit, &(delta, t_res)) in COMBOS.iter().enumerate() {
            if level_mask & (1 << bit) == 0 {
                continue;
            }
            let s_res = (tile.len() as i8 + delta).clamp(1, 12) as u8;
            for obs in rows.iter().step_by(subset_stride) {
                if let Some(key) = obs.cell_key(s_res, t_res) {
                    wanted.push(key);
                }
            }
        }
        prop_assert!(!wanted.is_empty(), "mask {level_mask} selected no cells");

        let scanned = sorted(store.scan_block(bk, &wanted).cells);
        prop_assert!(
            scanned.iter().all(|(_, s)| s.has_sketches()),
            "sketch-enabled scan emitted exact-only cells"
        );

        // Reference: fold each wanted cell's raw rows directly.
        let mut keys: Vec<CellKey> = wanted.clone();
        keys.sort_unstable();
        keys.dedup();
        let reference: Vec<(CellKey, CellSummary)> = keys
            .iter()
            .map(|&key| {
                let level = key.level();
                let mut s = CellSummary::empty_with(2, &spec);
                for obs in &rows {
                    if obs.cell_key(level.spatial_res(), level.temporal_res()) == Some(key) {
                        s.push_row(&obs.values);
                    }
                }
                (key, s)
            })
            .collect();
        prop_assert_eq!(&scanned, &reference, "sketched scan diverged from direct fold");

        // Error-bound spot checks against the exact per-cell row sets.
        for (key, summary) in &scanned {
            let level = key.level();
            let mut exact: Vec<f64> = rows
                .iter()
                .filter(|o| o.cell_key(level.spatial_res(), level.temporal_res()) == Some(*key))
                .map(|o| o.values[0])
                .collect();
            if exact.is_empty() {
                continue;
            }
            exact.sort_by(f64::total_cmp);
            let sk = summary.attr_sketches(0).unwrap();
            let est = sk.quantile.quantile(0.5).unwrap();
            let true_median = exact[(exact.len() - 1) / 2];
            let tol = est.relative_error * true_median.abs() + 1e-9;
            prop_assert!(
                (est.value - true_median).abs() <= tol
                    || exact.iter().any(|&v| (est.value - v).abs() <= est.relative_error * v.abs() + 1e-9),
                "median estimate {} too far from exact {true_median}",
                est.value
            );
            let distinct: std::collections::HashSet<u64> =
                exact.iter().map(|v| v.to_bits()).collect();
            let d = sk.distinct.estimate();
            prop_assert!(
                (d.count - distinct.len() as f64).abs()
                    <= 6.0 * d.standard_error * distinct.len() as f64 + 3.0,
                "distinct estimate {} vs true {}",
                d.count,
                distinct.len()
            );
            // Count-min never undercounts and a single counter never
            // exceeds the total pushed; the tighter `+ error_bound`
            // overcount cap is probabilistic (1 − 2^−depth per lookup) and
            // is exercised statistically in the sketch crate's own tests.
            for entry in sk.heavy.top_k(4) {
                let true_count = exact.iter().filter(|&&v| v == entry.value).count() as u64;
                prop_assert!(
                    entry.count >= true_count && entry.count <= exact.len() as u64,
                    "heavy-hitter count {} outside [{true_count}, {}]",
                    entry.count,
                    exact.len()
                );
            }
        }
    }

    /// `FinestThenMerge` folds rows only at the finest group and derives
    /// coarser bundles by sketch merge. On data whose distinct values stay
    /// within the heavy-hitter candidate cap (this generator: ≤ 100 rows,
    /// cap 256) no candidate eviction ever fires, so the merge laws make
    /// the *entire* output — exact stats and all three sketches — bit-for-
    /// bit identical to the default per-group row fold.
    #[test]
    fn finest_then_merge_matches_per_group_within_cap(
        tile_idx in 0usize..TILES.len(),
        raw_rows in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u32..86_400, -4096i32..=4096, -4096i32..=4096),
            1..100,
        ),
        level_mask in 1u8..64,
        subset_stride in 1usize..4,
    ) {
        let tile = Geohash::from_str(TILES[tile_idx]).unwrap();
        let tb = tile.bbox();
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let day_start = day.start();
        let rows: Vec<Observation> = raw_rows
            .iter()
            .map(|&(u, v, sec, q0, q1)| {
                Observation::new(
                    tb.min_lat + u * (tb.max_lat - tb.min_lat),
                    tb.min_lon + v * (tb.max_lon - tb.min_lon),
                    day_start + sec as i64 % DAY_SECS,
                    vec![q0 as f64 * 0.25, q1 as f64 * 0.25],
                )
            })
            .collect();
        let mut wanted: Vec<CellKey> = Vec::new();
        for (bit, &(delta, t_res)) in COMBOS.iter().enumerate() {
            if level_mask & (1 << bit) == 0 {
                continue;
            }
            let s_res = (tile.len() as i8 + delta).clamp(1, 12) as u8;
            for obs in rows.iter().step_by(subset_stride) {
                if let Some(key) = obs.cell_key(s_res, t_res) {
                    wanted.push(key);
                }
            }
        }
        prop_assert!(!wanted.is_empty(), "mask {level_mask} selected no cells");
        let bk = BlockKey { geohash: tile, day };

        let per_group = store_for(tile, rows.clone(), 0)
            .with_sketches(SketchSpec::standard());
        let mut ftm_spec = SketchSpec::standard();
        ftm_spec.fold_mode = SketchFoldMode::FinestThenMerge;
        let finest = store_for(tile, rows.clone(), 0).with_sketches(ftm_spec);

        let base = sorted(per_group.scan_block(bk, &wanted).cells);
        let merged = sorted(finest.scan_block(bk, &wanted).cells);
        prop_assert_eq!(&merged, &base, "FinestThenMerge diverged within the cap");
    }

    /// On continuous data — where candidate eviction does fire — the
    /// documented `FinestThenMerge` contract is weaker: quantile and
    /// distinct state stay bit-identical (exact merge laws), the count-min
    /// matrix and totals stay bit-identical (entrywise adds commute), and
    /// only the heavy-hitter *candidate set* may differ. Pin exactly that.
    #[test]
    fn finest_then_merge_contract_on_continuous_data(
        tile_idx in 0usize..TILES.len(),
        raw_rows in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u32..86_400, -1000.0f64..1000.0, -1000.0f64..1000.0),
            1..100,
        ),
        level_mask in 1u8..64,
    ) {
        let tile = Geohash::from_str(TILES[tile_idx]).unwrap();
        let tb = tile.bbox();
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let day_start = day.start();
        let rows: Vec<Observation> = raw_rows
            .iter()
            .map(|&(u, v, sec, a0, a1)| {
                Observation::new(
                    tb.min_lat + u * (tb.max_lat - tb.min_lat),
                    tb.min_lon + v * (tb.max_lon - tb.min_lon),
                    day_start + sec as i64 % DAY_SECS,
                    vec![a0, a1],
                )
            })
            .collect();
        let mut wanted: Vec<CellKey> = Vec::new();
        for (bit, &(delta, t_res)) in COMBOS.iter().enumerate() {
            if level_mask & (1 << bit) == 0 {
                continue;
            }
            let s_res = (tile.len() as i8 + delta).clamp(1, 12) as u8;
            for obs in &rows {
                if let Some(key) = obs.cell_key(s_res, t_res) {
                    wanted.push(key);
                }
            }
        }
        prop_assert!(!wanted.is_empty(), "mask {level_mask} selected no cells");
        let bk = BlockKey { geohash: tile, day };

        // A tiny candidate cap forces eviction on nearly every cell.
        let mut pg_spec = SketchSpec::standard();
        pg_spec.hh_candidates = 4;
        let mut ftm_spec = pg_spec.clone();
        ftm_spec.fold_mode = SketchFoldMode::FinestThenMerge;
        let per_group = store_for(tile, rows.clone(), 0).with_sketches(pg_spec);
        let finest = store_for(tile, rows.clone(), 0).with_sketches(ftm_spec);

        let base = sorted(per_group.scan_block(bk, &wanted).cells);
        let merged = sorted(finest.scan_block(bk, &wanted).cells);
        prop_assert_eq!(base.len(), merged.len());
        for ((bk_, bs), (mk, ms)) in base.iter().zip(&merged) {
            prop_assert_eq!(bk_, mk);
            for a in 0..2 {
                let b = bs.attr_sketches(a).unwrap();
                let m = ms.attr_sketches(a).unwrap();
                prop_assert_eq!(&b.quantile, &m.quantile, "quantile state must be exact");
                prop_assert_eq!(&b.distinct, &m.distinct, "distinct state must be exact");
                prop_assert_eq!(b.heavy.count(), m.heavy.count(), "matrix totals must match");
                prop_assert_eq!(b.heavy.error_bound(), m.heavy.error_bound());
                // The count-min matrix is merge-exact, so point estimates
                // agree even where the candidate sets have diverged.
                for obs in rows.iter().take(8) {
                    let v = obs.values[a];
                    prop_assert_eq!(b.heavy.estimate(v), m.heavy.estimate(v));
                }
            }
        }
    }
}
