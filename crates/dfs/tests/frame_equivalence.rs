//! Equivalence of the columnar frame kernel against the seed's direct
//! per-level binning (ISSUE 4 satellite): `NodeStore::scan_block` (decode
//! once → aggregate flat → derive upward, DESIGN.md §12) must produce
//! bit-for-bit the same summaries as `NodeStore::scan_block_direct` (one
//! geohash encode per observation × resolution group) across random
//! blocks, resolution mixes, and wanted-cell subsets.
//!
//! Attribute values are dyadic (multiples of 0.25, |v| ≤ 1024) so every
//! intermediate sum and sum-of-squares is exactly representable in f64:
//! the two kernels merge in different orders, and with exact arithmetic
//! any bitwise difference is a real binning bug, not float reassociation.
//! The finest-resolution group needs no such care — the frame kernel
//! pushes those rows in block order, the same sequence the direct path
//! executes — but coarser derived groups merge finest partials, so the
//! dyadic restriction is what makes `==` a sound oracle for them.

use proptest::prelude::*;
use stash_dfs::{BlockKey, BlockSource, DiskModel, NodeStore, Partitioner};
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{CellKey, CellSummary, Observation};
use std::str::FromStr;
use std::sync::Arc;

/// A literal in-memory block: every read yields these exact rows.
struct VecSource {
    rows: Vec<Observation>,
    n_attrs: usize,
}

impl BlockSource for VecSource {
    fn read_block(&self, _key: BlockKey) -> Vec<Observation> {
        self.rows.clone()
    }
    fn block_bytes(&self, _geohash: Geohash) -> usize {
        self.rows.len() * 64 + 1
    }
    fn n_attrs(&self) -> usize {
        self.n_attrs
    }
}

const TILES: [&str; 4] = ["9", "9x", "9xj", "dr5r"];
const DAY_SECS: i64 = 86_400;

/// The (spatial delta from tile, temporal res) mix a `level_mask` bit
/// enables. Deltas reach below the tile (coarser) and two levels above
/// (finer); every temporal resolution appears.
const COMBOS: [(i8, TemporalRes); 6] = [
    (-1, TemporalRes::Month),
    (0, TemporalRes::Year),
    (0, TemporalRes::Day),
    (1, TemporalRes::Day),
    (1, TemporalRes::Hour),
    (2, TemporalRes::Hour),
];

fn store_for(tile: Geohash, rows: Vec<Observation>, cache_bytes: usize) -> NodeStore {
    let bbox = BBox::new(-90.0, 90.0, -180.0, 180.0).unwrap();
    let time = TimeRange::new(
        epoch_seconds(2015, 1, 1, 0, 0, 0),
        epoch_seconds(2016, 1, 1, 0, 0, 0),
    )
    .unwrap();
    NodeStore::new(
        0,
        Partitioner::new(1, 1),
        tile.len(),
        bbox,
        time,
        DiskModel::free(),
        Arc::new(VecSource { rows, n_attrs: 2 }),
        10_000,
    )
    .with_scan_cost(std::time::Duration::ZERO)
    .with_frame_cache_bytes(cache_bytes)
}

fn sorted(mut cells: Vec<(CellKey, CellSummary)>) -> Vec<(CellKey, CellSummary)> {
    cells.sort_unstable_by_key(|&(k, _)| k);
    cells
}

proptest! {
    #[test]
    fn frame_kernel_matches_direct_binning(
        tile_idx in 0usize..TILES.len(),
        raw_rows in proptest::collection::vec(
            // (lat u, lon u, second of day, two dyadic attribute quarters)
            (0.0f64..1.0, 0.0f64..1.0, 0u32..86_400, -4096i32..=4096, -4096i32..=4096),
            1..120,
        ),
        level_mask in 1u8..64,
        subset_stride in 1usize..4,
        cache_bytes in prop_oneof![Just(0usize), Just(64usize << 20)],
    ) {
        let tile = Geohash::from_str(TILES[tile_idx]).unwrap();
        let tb = tile.bbox();
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let day_start = day.start();
        let rows: Vec<Observation> = raw_rows
            .iter()
            .map(|&(u, v, sec, q0, q1)| {
                Observation::new(
                    tb.min_lat + u * (tb.max_lat - tb.min_lat),
                    tb.min_lon + v * (tb.max_lon - tb.min_lon),
                    day_start + sec as i64 % DAY_SECS,
                    vec![q0 as f64 * 0.25, q1 as f64 * 0.25],
                )
            })
            .collect();
        let store = store_for(tile, rows.clone(), cache_bytes);
        let bk = BlockKey { geohash: tile, day };

        // Wanted cells: for each enabled resolution combo, the cells of a
        // strided subset of the rows (so most combos cover only part of
        // the block) — duplicates left in to exercise dedup.
        let mut wanted: Vec<CellKey> = Vec::new();
        for (bit, &(delta, t_res)) in COMBOS.iter().enumerate() {
            if level_mask & (1 << bit) == 0 {
                continue;
            }
            let s_res = (tile.len() as i8 + delta).clamp(1, 12) as u8;
            for obs in rows.iter().step_by(subset_stride) {
                if let Some(key) = obs.cell_key(s_res, t_res) {
                    wanted.push(key);
                }
            }
        }
        prop_assert!(!wanted.is_empty(), "mask {level_mask} selected no cells");

        let new = sorted(store.scan_block(bk, &wanted).cells);
        let old = store.scan_block_direct(bk, &wanted);
        prop_assert_eq!(&new, &old, "frame kernel diverged from direct binning");

        // A second scan — a cache hit when the budget allows — must be
        // byte-identical to the cold one.
        let warm = store.scan_block(bk, &wanted);
        prop_assert_eq!(warm.cache_hit, cache_bytes > 0);
        prop_assert_eq!(sorted(warm.cells), new, "warm scan diverged from cold");
    }
}
