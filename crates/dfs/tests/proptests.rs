//! Property tests for the storage substrate: block planning must cover
//! exactly the data a Cell needs, and the partitioner must give every
//! block exactly one home.

use proptest::prelude::*;
use stash_dfs::{plan_blocks, Partitioner};
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::CellKey;

fn domain() -> (BBox, TimeRange) {
    (
        BBox::new(20.0, 55.0, -130.0, -60.0).unwrap(),
        TimeRange::new(
            epoch_seconds(2015, 1, 1, 0, 0, 0),
            epoch_seconds(2016, 1, 1, 0, 0, 0),
        )
        .unwrap(),
    )
}

proptest! {
    /// Every planned block nests the cell spatially (or vice versa) and
    /// overlaps it temporally; and every in-domain portion of the cell is
    /// covered by some block.
    #[test]
    fn plan_blocks_covers_exactly(
        lat in 25.0f64..50.0,
        lon in -125.0f64..-65.0,
        s_res in 1u8..=5,
        month in 1u32..=12,
        day in 1u32..=28,
        t_idx in 1u8..4, // Month / Day / Hour
    ) {
        let (bbox, time) = domain();
        let t_res = TemporalRes::from_index(t_idx).unwrap();
        let cell = CellKey::new(
            Geohash::encode(lat, lon, s_res).unwrap(),
            TimeBin::containing(t_res, epoch_seconds(2015, month, day, 12, 0, 0)),
        );
        let plan = plan_blocks(&[cell], 3, &bbox, &time, 100_000).unwrap();
        for (bk, cells) in &plan {
            prop_assert_eq!(cells.as_slice(), &[cell]);
            // Spatial nesting one way or the other.
            prop_assert!(
                bk.geohash.is_within(&cell.geohash) || cell.geohash.is_within(&bk.geohash),
                "block {} unrelated to cell {}", bk.geohash, cell.geohash
            );
            // Temporal overlap with both the cell and the domain.
            prop_assert!(bk.day.range().intersects(&cell.time.range()));
            prop_assert!(bk.day.range().intersects(&time));
        }
        // Coverage: the cell's in-domain days are all planned.
        let clipped = TimeRange::new(
            cell.time.range().start.max(time.start),
            cell.time.range().end.min(time.end),
        );
        if let Some(r) = clipped {
            if r.duration_secs() > 0 && cell.geohash.bbox().intersects(&bbox) {
                let want_days = TimeBin::cover_range(TemporalRes::Day, r);
                for d in want_days {
                    prop_assert!(
                        plan.keys().any(|bk| bk.day == d),
                        "day {} of {} unplanned", d, cell
                    );
                }
            }
        }
    }

    /// A block has exactly one owner, and ownership is stable under
    /// repeated evaluation and consistent across equal partitioners.
    #[test]
    fn partitioner_is_a_function(
        lat in -85.0f64..85.0,
        lon in -179.0f64..179.0,
        len in 2u8..=6,
        n_nodes in 1usize..32,
    ) {
        let gh = Geohash::encode(lat, lon, len).unwrap();
        let p1 = Partitioner::new(n_nodes, 2);
        let p2 = Partitioner::new(n_nodes, 2);
        let o = p1.owner(gh);
        prop_assert!(o < n_nodes);
        prop_assert_eq!(o, p1.owner(gh));
        prop_assert_eq!(o, p2.owner(gh));
        // All descendants stay on the same node (colocation).
        if len < 6 {
            for child in gh.children().unwrap() {
                prop_assert_eq!(p1.owner(child), o);
            }
        }
    }

    /// The union of all nodes' owned blocks is the whole plan: no block is
    /// orphaned or double-owned.
    #[test]
    fn every_block_has_one_home(
        lat in 25.0f64..50.0,
        lon in -125.0f64..-70.0,
        n_nodes in 1usize..12,
    ) {
        let (bbox, time) = domain();
        let cell = CellKey::new(
            Geohash::encode(lat, lon, 2).unwrap(), // coarse: many blocks
            TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        );
        let plan = plan_blocks(&[cell], 3, &bbox, &time, 100_000).unwrap();
        let p = Partitioner::new(n_nodes, 2);
        for bk in plan.keys() {
            let owners: Vec<usize> = (0..n_nodes).filter(|&n| p.owner(bk.geohash) == n).collect();
            prop_assert_eq!(owners.len(), 1, "block {} owners: {:?}", bk, owners);
        }
    }
}
