//! Flat-encoding proptests for block frames (ISSUE 7 satellite): a frame
//! serialized to its contiguous byte buffer and validated back must be
//! bit-identical — same buffer, same aggregation as the seed's direct
//! per-level binning — and corrupt or truncated buffers must error,
//! never panic.
//!
//! Attribute values are dyadic (multiples of 0.25) so the aggregation
//! comparison against the direct oracle is sound (see
//! `frame_equivalence.rs` for the full argument).

use proptest::prelude::*;
use stash_dfs::{BlockFrame, BlockKey, BlockSource, DiskModel, NodeStore, Partitioner};
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::{CellKey, CellSummary, Observation};
use std::str::FromStr;
use std::sync::Arc;

struct VecSource {
    rows: Vec<Observation>,
    n_attrs: usize,
}

impl BlockSource for VecSource {
    fn read_block(&self, _key: BlockKey) -> Vec<Observation> {
        self.rows.clone()
    }
    fn block_bytes(&self, _geohash: Geohash) -> usize {
        self.rows.len() * 64 + 1
    }
    fn n_attrs(&self) -> usize {
        self.n_attrs
    }
}

const TILES: [&str; 4] = ["9", "9x", "9xj", "dr5r"];

fn store_for(tile: Geohash, rows: Vec<Observation>) -> NodeStore {
    let bbox = BBox::new(-90.0, 90.0, -180.0, 180.0).unwrap();
    let time = TimeRange::new(
        epoch_seconds(2015, 1, 1, 0, 0, 0),
        epoch_seconds(2016, 1, 1, 0, 0, 0),
    )
    .unwrap();
    NodeStore::new(
        0,
        Partitioner::new(1, 1),
        tile.len(),
        bbox,
        time,
        DiskModel::free(),
        Arc::new(VecSource { rows, n_attrs: 2 }),
        10_000,
    )
    .with_scan_cost(std::time::Duration::ZERO)
    .with_frame_cache_bytes(0)
}

fn sorted(mut cells: Vec<(CellKey, CellSummary)>) -> Vec<(CellKey, CellSummary)> {
    cells.sort_unstable_by_key(|&(k, _)| k);
    cells
}

proptest! {
    /// encode → decode → scan == direct scan, and the byte buffer is
    /// exactly reproduced by a second encode.
    #[test]
    fn flat_frame_roundtrips_and_scans_like_direct(
        tile_idx in 0usize..TILES.len(),
        raw_rows in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u32..86_400, -4096i32..=4096, -4096i32..=4096),
            1..120,
        ),
        delta in 0u8..3,
        version in prop_oneof![Just(0u64), 1u64..1_000],
    ) {
        let tile = Geohash::from_str(TILES[tile_idx]).unwrap();
        let tb = tile.bbox();
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let day_start = day.start();
        let rows: Vec<Observation> = raw_rows
            .iter()
            .map(|&(u, v, sec, q0, q1)| {
                Observation::new(
                    tb.min_lat + u * (tb.max_lat - tb.min_lat),
                    tb.min_lon + v * (tb.max_lon - tb.min_lon),
                    day_start + sec as i64,
                    vec![q0 as f64 * 0.25, q1 as f64 * 0.25],
                )
            })
            .collect();
        let bk = BlockKey { geohash: tile, day };
        let spatial_res = (tile.len() + delta).min(12);
        let frame = BlockFrame::decode(bk, &rows, 2, spatial_res).with_version(version);

        // Byte roundtrip is exact and self-describing.
        let bytes = frame.to_bytes();
        prop_assert_eq!(bytes.len(), frame.buffer_bytes());
        let back = BlockFrame::from_bytes(&bytes).expect("valid buffer");
        prop_assert_eq!(back.block(), bk);
        prop_assert_eq!(back.n_rows(), rows.len());
        prop_assert_eq!(back.n_attrs(), 2);
        prop_assert_eq!(back.spatial_res(), spatial_res);
        prop_assert_eq!(back.version(), version);
        prop_assert_eq!(back.to_bytes(), bytes.clone());

        // The revalidated frame aggregates exactly like the seed's direct
        // per-observation binning.
        let wanted: Vec<CellKey> = rows
            .iter()
            .filter_map(|o| o.cell_key(spatial_res, TemporalRes::Day))
            .chain(rows.iter().filter_map(|o| o.cell_key(1, TemporalRes::Hour)))
            .collect();
        prop_assert!(!wanted.is_empty());
        let store = store_for(tile, rows.clone());
        let direct = store.scan_block_direct(bk, &wanted);
        let flat = sorted(back.aggregate(&wanted).cells);
        prop_assert_eq!(flat, direct, "roundtripped frame diverged from direct binning");
    }

    /// Truncations always error; arbitrary word corruption may error or
    /// decode to a (different) valid frame, but must never panic.
    #[test]
    fn corrupt_frame_buffers_never_panic(
        raw_rows in proptest::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u32..86_400, -64i32..=64, -64i32..=64),
            1..40,
        ),
        word_idx in 0usize..64,
        flip in 1u64..=u64::MAX,
    ) {
        let tile = Geohash::from_str("9xj").unwrap();
        let tb = tile.bbox();
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let day_start = day.start();
        let rows: Vec<Observation> = raw_rows
            .iter()
            .map(|&(u, v, sec, q0, q1)| {
                Observation::new(
                    tb.min_lat + u * (tb.max_lat - tb.min_lat),
                    tb.min_lon + v * (tb.max_lon - tb.min_lon),
                    day_start + sec as i64,
                    vec![q0 as f64 * 0.25, q1 as f64 * 0.25],
                )
            })
            .collect();
        let bk = BlockKey { geohash: tile, day };
        let frame = BlockFrame::decode(bk, &rows, 2, 5);
        let bytes = frame.to_bytes();

        // Every strictly shorter 8-aligned prefix must be rejected.
        for cut in (0..bytes.len()).step_by(8) {
            prop_assert!(BlockFrame::from_bytes(&bytes[..cut]).is_err());
        }
        // Unaligned lengths are rejected outright.
        prop_assert!(BlockFrame::from_bytes(&bytes[..bytes.len() - 3]).is_err());
        // Flip one word anywhere: decode must return, not panic.
        let mut corrupt = bytes.clone();
        let at = (word_idx % (bytes.len() / 8)) * 8;
        let word = u64::from_le_bytes(corrupt[at..at + 8].try_into().unwrap()) ^ flip;
        corrupt[at..at + 8].copy_from_slice(&word.to_le_bytes());
        let _ = BlockFrame::from_bytes(&corrupt);
    }
}
