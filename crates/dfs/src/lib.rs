//! # stash-dfs
//!
//! A from-scratch stand-in for **Galileo** (Malensek et al., UCC 2011) —
//! the zero-hop-DHT distributed storage and analytics substrate the paper
//! deploys STASH on top of (§VI-C).
//!
//! The properties STASH depends on, all reproduced here:
//!
//! * **Geohash partitioning** — observations are grouped into blocks by a
//!   geohash prefix and a UTC day; blocks are assigned to nodes by hashing
//!   the first (configurable) geohash characters
//!   (paper §VIII-A: "partitioned uniformly over the cluster based on the
//!   first 2 characters of their Geohash"), so geospatially proximate data
//!   is colocated.
//! * **Zero-hop lookup** — [`Partitioner`] is a pure function every node
//!   can evaluate locally; finding any block's owner costs no network hops.
//! * **Expensive cold reads** — every block read is charged through a
//!   [`DiskModel`] (seek + transfer time) before its observations are
//!   scanned. This is the cost STASH exists to avoid.
//! * **Local aggregation** — [`NodeStore::fetch_partials`] scans owned
//!   blocks (in parallel with rayon) and returns per-Cell partial
//!   summaries, which a coordinator merges (the monoid property of
//!   [`stash_model::SummaryStats`] makes partial merging exact).
//!
//! The "disk" is the deterministic `stash-data`-style generator supplied
//! by the embedder: any block expands to the same observations on every
//! read, so the simulated store behaves like a (very large) immutable
//! dataset without storing terabytes. See DESIGN.md §2 for the substitution
//! argument.

pub mod block;
pub mod disk;
pub mod frame;
pub mod partitioner;
pub mod rollup;
pub mod store;

pub use block::{plan_blocks, BlockKey, BlockPlanError};
pub use disk::{DiskModel, DiskStats};
pub use frame::{
    frame_spatial_res, BlockFrame, FrameAggregation, FrameBuilder, FrameCache,
    DEFAULT_FRAME_CACHE_BYTES,
};
pub use partitioner::Partitioner;
pub use rollup::RollupStore;
pub use store::{AppendOutcome, BlockScan, BlockSource, NodeStore, PartialCell};
