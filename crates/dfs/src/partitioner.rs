//! The zero-hop DHT partitioner.
//!
//! Both Galileo's block placement and STASH's per-level Cell dispersion use
//! the same pure function: hash the leading characters of a geohash and map
//! onto the node ring. Because every node evaluates the function locally,
//! locating any block or Cell owner costs **zero** network hops and the
//! per-lookup complexity is O(1) (paper §IV-D).

use stash_geo::Geohash;
use stash_model::CellKey;

/// Maps geohash prefixes to node indexes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioner {
    n_nodes: usize,
    /// Geohash characters that determine placement (paper §VIII-A: 2).
    prefix_len: u8,
}

impl Partitioner {
    pub fn new(n_nodes: usize, prefix_len: u8) -> Self {
        assert!(n_nodes > 0, "partitioner needs at least one node");
        assert!(prefix_len >= 1, "prefix length must be at least 1");
        Partitioner {
            n_nodes,
            prefix_len,
        }
    }

    pub fn n_nodes(&self) -> usize {
        self.n_nodes
    }

    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// Owner of a geohash: hash of its placement prefix, mod ring size.
    /// Geohashes *shorter* than the prefix use their full (coarse) hash —
    /// such coarse cells aggregate data spanning several partitions, and
    /// their summaries are merged from per-partition partials at the
    /// coordinator (see `stash-dfs::store`).
    pub fn owner(&self, gh: Geohash) -> usize {
        let prefix = gh
            .prefix(self.prefix_len.min(gh.len()))
            .expect("min() keeps length valid");
        self.hash_prefix(prefix)
    }

    /// Owner of a STASH Cell (by its spatial label).
    pub fn owner_of_cell(&self, key: &CellKey) -> usize {
        self.owner(key.geohash)
    }

    /// Effective owner when some nodes are down: the first node of the
    /// replica chain — the primary, then its ring successors — that is not
    /// in `exclude`. This models DFS block replication (Galileo keeps each
    /// block on `r` successive ring nodes): when the primary is crashed or
    /// partitioned away, the next replica in the chain serves its blocks.
    /// Every live node evaluates the same pure function, so failover needs
    /// no coordination and each block still has exactly one effective
    /// owner. Falls back to the primary if every node is excluded.
    pub fn owner_excluding(&self, gh: Geohash, exclude: &[usize]) -> usize {
        let primary = self.owner(gh);
        for i in 0..self.n_nodes {
            let candidate = (primary + i) % self.n_nodes;
            if !exclude.contains(&candidate) {
                return candidate;
            }
        }
        primary
    }

    /// [`Partitioner::owner_excluding`] by a Cell's spatial label.
    pub fn owner_of_cell_excluding(&self, key: &CellKey, exclude: &[usize]) -> usize {
        self.owner_excluding(key.geohash, exclude)
    }

    /// Does placement of `gh` depend on more partitions than its own?
    /// True exactly when the geohash is coarser than the placement prefix.
    pub fn spans_partitions(&self, gh: Geohash) -> bool {
        gh.len() < self.prefix_len
    }

    fn hash_prefix(&self, prefix: Geohash) -> usize {
        // Fibonacci-mix the packed bits together with the length so "9"
        // (len 1) and "90" (len 2) land independently.
        let mut x = prefix
            .bits()
            .wrapping_add((prefix.len() as u64) << 56)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 32;
        (x % self.n_nodes as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::{TemporalRes, TimeBin};
    use std::str::FromStr;

    fn p() -> Partitioner {
        Partitioner::new(8, 2)
    }

    #[test]
    fn deterministic_and_in_range() {
        let part = p();
        for s in ["9q", "9q8y7", "dr5ru", "zzz", "0", "gcpvj"] {
            let gh = Geohash::from_str(s).unwrap();
            let o = part.owner(gh);
            assert!(o < 8);
            assert_eq!(o, part.owner(gh), "non-deterministic for {s}");
        }
    }

    #[test]
    fn placement_follows_prefix() {
        let part = p();
        // All geohashes sharing a 2-char prefix land on the same node —
        // that is the data-colocation property STASH relies on.
        let base = Geohash::from_str("9q").unwrap();
        let owner = part.owner(base);
        for child in base.children().unwrap() {
            assert_eq!(part.owner(child), owner, "{child} strayed from {base}");
            for grand in child.children().unwrap() {
                assert_eq!(part.owner(grand), owner);
            }
        }
    }

    #[test]
    fn different_prefixes_spread() {
        let part = Partitioner::new(16, 2);
        // Count distinct owners across all 1024 two-char prefixes: a
        // reasonable hash must use most of the ring.
        let mut used = std::collections::HashSet::new();
        let g0 = Geohash::from_str("0").unwrap();
        let parents: Vec<Geohash> = stash_geo::cover_bbox(&stash_geo::BBox::GLOBE, 1);
        assert_eq!(parents.len(), 32);
        for p1 in &parents {
            for p2 in p1.children().unwrap() {
                used.insert(part.owner(p2));
            }
        }
        assert!(used.len() >= 14, "only {} of 16 nodes used", used.len());
        let _ = g0;
    }

    #[test]
    fn coarse_geohash_uses_own_hash() {
        let part = p();
        let coarse = Geohash::from_str("9").unwrap();
        assert!(part.spans_partitions(coarse));
        assert!(!part.spans_partitions(Geohash::from_str("9q").unwrap()));
        assert!(part.owner(coarse) < 8);
        // Its placement must differ from at least one of its children's —
        // coarse cells genuinely span partitions.
        let owners: std::collections::HashSet<usize> =
            coarse.children().unwrap().map(|c| part.owner(c)).collect();
        assert!(owners.len() > 1, "children of a coarse hash should spread");
    }

    #[test]
    fn owner_of_cell_matches_geohash_owner() {
        let part = p();
        let gh = Geohash::from_str("9q8y").unwrap();
        let key = CellKey::new(gh, TimeBin::containing(TemporalRes::Day, 0));
        assert_eq!(part.owner_of_cell(&key), part.owner(gh));
        // Time does not affect placement.
        let key2 = CellKey::new(gh, TimeBin::containing(TemporalRes::Day, 86_400_000));
        assert_eq!(part.owner_of_cell(&key2), part.owner_of_cell(&key));
    }

    #[test]
    fn single_node_ring() {
        let part = Partitioner::new(1, 2);
        assert_eq!(part.owner(Geohash::from_str("zz").unwrap()), 0);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        Partitioner::new(0, 2);
    }

    #[test]
    fn exclusion_walks_the_replica_chain() {
        let part = p();
        let gh = Geohash::from_str("9q8").unwrap();
        let primary = part.owner(gh);
        assert_eq!(part.owner_excluding(gh, &[]), primary);
        // Excluding the primary hands the block to its ring successor…
        assert_eq!(part.owner_excluding(gh, &[primary]), (primary + 1) % 8);
        // …and chains through consecutive failures.
        let two_down = [primary, (primary + 1) % 8];
        assert_eq!(part.owner_excluding(gh, &two_down), (primary + 2) % 8);
        // Excluding an unrelated node changes nothing.
        assert_eq!(part.owner_excluding(gh, &[(primary + 3) % 8]), primary);
    }

    #[test]
    fn exclusion_of_everyone_falls_back_to_primary() {
        let part = p();
        let gh = Geohash::from_str("9q8").unwrap();
        let all: Vec<usize> = (0..8).collect();
        assert_eq!(part.owner_excluding(gh, &all), part.owner(gh));
    }

    #[test]
    fn cell_exclusion_matches_geohash_exclusion() {
        let part = p();
        let gh = Geohash::from_str("9q8y").unwrap();
        let key = CellKey::new(gh, TimeBin::containing(TemporalRes::Day, 0));
        let primary = part.owner(gh);
        assert_eq!(
            part.owner_of_cell_excluding(&key, &[primary]),
            part.owner_excluding(gh, &[primary]),
        );
    }
}
