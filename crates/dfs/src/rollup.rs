//! Continuous rollups: materialized coarse aggregates maintained by ingest
//! (DESIGN.md §17; ROADMAP item 4).
//!
//! A [`RollupStore`] holds per-Cell summaries at a configured set of coarse
//! [`Level`]s. Unlike the STASH graph — a *cache* whose entries appear on
//! access and leave under replacement — rollup Cells are *always fresh*:
//! every applied append folds the batch's deltas into them (timescale-style
//! continuous aggregates), so a query at a rollup level can be answered
//! without touching the graph or the raw blocks.
//!
//! The store carries a **watermark**: the time below which its contents are
//! complete. A block contributes everything it will ever contribute once it
//! is *sealed* (its final streamed batch applied) or *static* (never
//! streamed — backfilled at boot), so the watermark is the earliest start of
//! any still-unsealed block's day, or the end of the data domain once all
//! live blocks have sealed. Sealing only removes blocks from the unsealed
//! set, so the watermark is monotonically non-decreasing. A query key is
//! answerable from the rollup iff its level is a rollup level *and* its
//! whole time bin ends at or before the watermark — which correctly
//! excludes, say, a Month cell spanning a still-streaming day.
//!
//! Exactness: summaries use the same dyadic value quantum and
//! order-invariant sketch merge laws as the rest of the system, so a
//! rollup folded incrementally in stream order is **bit-for-bit identical**
//! to a cold recompute over the final blocks (pinned by the rollup
//! equivalence proptests).

use crate::block::{plan_blocks, BlockKey};
use crate::frame::frame_spatial_res;
use crate::store::BlockSource;
use parking_lot::RwLock;
use rayon::prelude::*;
use stash_geo::{BBox, TimeRange};
use stash_model::fx::FxHashMap;
use stash_model::{AggQuery, CellKey, CellSummary, Level, SketchSpec};
use std::collections::HashSet;

/// Materialized rollup Cells at configured coarse levels, with the
/// watermark bookkeeping that makes them safely servable.
///
/// Shared (behind an `Arc`) by every node thread of an owner — the store
/// models the owner's durable rollup state, so it survives a simulated
/// crash/restart the same way the replicated block store does.
pub struct RollupStore {
    /// Rollup levels, sorted and deduplicated.
    levels: Vec<Level>,
    /// Bit `i` set iff level index `i` is a rollup level (48 levels fit).
    level_mask: u64,
    /// Watermark value once every live block has sealed: the end of the
    /// data time domain.
    horizon_end: i64,
    inner: RwLock<Inner>,
}

#[derive(Default)]
struct Inner {
    /// The rollup Cells. Empty summaries are not stored (matching the
    /// evaluator, which only returns non-empty cells).
    cells: FxHashMap<CellKey, CellSummary>,
    /// Next expected fold seq per streamed block — belt-and-suspenders
    /// idempotency on top of the block source's own version check.
    applied: FxHashMap<BlockKey, u64>,
    /// Live blocks whose final batch has not been applied yet.
    unsealed: HashSet<BlockKey>,
    /// Blocks whose base (pre-stream) rows have been folded.
    based: HashSet<BlockKey>,
    /// Cached watermark (recomputed on seal).
    watermark: i64,
}

impl RollupStore {
    /// A store rolling up at `levels`, with `live_blocks` initially
    /// unsealed and `horizon_end` (the data time domain's end) as the
    /// all-sealed watermark.
    pub fn new(
        levels: impl IntoIterator<Item = Level>,
        live_blocks: impl IntoIterator<Item = BlockKey>,
        horizon_end: i64,
    ) -> Self {
        let mut levels: Vec<Level> = levels.into_iter().collect();
        levels.sort_unstable();
        levels.dedup();
        let mut level_mask = 0u64;
        for l in &levels {
            level_mask |= 1 << l.index();
        }
        let unsealed: HashSet<BlockKey> = live_blocks.into_iter().collect();
        let watermark = Self::watermark_of(&unsealed, horizon_end);
        RollupStore {
            levels,
            level_mask,
            horizon_end,
            inner: RwLock::new(Inner {
                unsealed,
                watermark,
                ..Inner::default()
            }),
        }
    }

    fn watermark_of(unsealed: &HashSet<BlockKey>, horizon_end: i64) -> i64 {
        unsealed
            .iter()
            .map(|b| b.day.range().start)
            .min()
            .unwrap_or(horizon_end)
    }

    /// The configured rollup levels (sorted, deduplicated).
    pub fn levels(&self) -> &[Level] {
        &self.levels
    }

    /// Is this a level the store maintains?
    #[inline]
    pub fn is_rollup_level(&self, level: Level) -> bool {
        self.level_mask >> level.index() & 1 == 1
    }

    /// The time below which the rollup is complete: queries whose bins end
    /// at or before this answer identically to a cold recompute.
    pub fn watermark(&self) -> i64 {
        self.inner.read().watermark
    }

    /// Live blocks still awaiting their final batch.
    pub fn unsealed_blocks(&self) -> usize {
        self.inner.read().unsealed.len()
    }

    /// Can this single key be served from the rollup right now?
    pub fn covers(&self, key: &CellKey) -> bool {
        self.is_rollup_level(key.level()) && key.time.range().end <= self.watermark()
    }

    /// Fold one streamed batch's rollup-level deltas. Returns `true` iff
    /// the batch was applied; a seq at or below the last applied one is a
    /// retried duplicate and a gap is out of order — both are skipped, so
    /// folding is idempotent under retries.
    pub fn fold(&self, block: BlockKey, seq: u64, cells: &[(CellKey, CellSummary)]) -> bool {
        let mut inner = self.inner.write();
        let next = inner.applied.entry(block).or_insert(0);
        if seq != *next {
            return false;
        }
        *next += 1;
        self.merge_in(&mut inner, cells);
        true
    }

    /// Fold a block's base (pre-stream) rows, at boot or backfill. Guarded
    /// per block so a block's base contributes exactly once. Returns `true`
    /// iff this call folded it.
    pub fn fold_base(&self, block: BlockKey, cells: &[(CellKey, CellSummary)]) -> bool {
        let mut inner = self.inner.write();
        if !inner.based.insert(block) {
            return false;
        }
        self.merge_in(&mut inner, cells);
        true
    }

    fn merge_in(&self, inner: &mut Inner, cells: &[(CellKey, CellSummary)]) {
        for (key, summary) in cells {
            if !self.is_rollup_level(key.level()) || summary.is_empty() {
                continue;
            }
            match inner.cells.entry(*key) {
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(summary.clone());
                }
                std::collections::hash_map::Entry::Occupied(mut o) => o.get_mut().merge(summary),
            }
        }
    }

    /// Mark a block's stream complete (its final batch applied) and return
    /// the new watermark. Idempotent; never moves the watermark backwards.
    pub fn seal(&self, block: BlockKey) -> i64 {
        let mut inner = self.inner.write();
        if inner.unsealed.remove(&block) {
            let advanced = Self::watermark_of(&inner.unsealed, self.horizon_end);
            // Monotone by construction (seal only shrinks the unsealed
            // set); the max is a defensive floor.
            inner.watermark = inner.watermark.max(advanced);
        }
        inner.watermark
    }

    /// Serve a whole key set from the rollup, or decline. Returns `None`
    /// unless *every* key is at a rollup level with its bin fully under the
    /// watermark (partial eligibility falls back to the normal path so the
    /// caller never mixes authorities within one sub-query). The returned
    /// cells are the non-empty ones, sorted by key — the same shape the
    /// evaluator produces.
    pub fn serve(&self, keys: &[CellKey]) -> Option<Vec<(CellKey, CellSummary)>> {
        let inner = self.inner.read();
        if !keys
            .iter()
            .all(|k| self.is_rollup_level(k.level()) && k.time.range().end <= inner.watermark)
        {
            return None;
        }
        let mut out: Vec<(CellKey, CellSummary)> = keys
            .iter()
            .filter_map(|k| inner.cells.get(k).map(|s| (*k, s.clone())))
            .collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        Some(out)
    }

    /// May this raw block be dropped under a retention horizon? True iff
    /// its whole day ends at or before both the horizon and the watermark —
    /// the watermark bound guarantees the rollup already holds everything
    /// the block would ever contribute.
    pub fn retirable(&self, block: &BlockKey, horizon: i64) -> bool {
        block.day.range().end <= horizon.min(self.watermark())
    }

    /// Every block the store has folded (base or streamed) or is still
    /// waiting on — the retention pass's candidate set, sorted for
    /// deterministic retirement order.
    pub fn known_blocks(&self) -> Vec<BlockKey> {
        let inner = self.inner.read();
        let mut blocks: Vec<BlockKey> = inner
            .based
            .iter()
            .chain(inner.unsealed.iter())
            .copied()
            .chain(inner.applied.keys().copied())
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }

    /// Number of materialized rollup Cells.
    pub fn len(&self) -> usize {
        self.inner.read().cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated resident bytes of the rollup state — the bounded-memory
    /// measurement the retention benches report.
    pub fn estimated_bytes(&self) -> usize {
        let inner = self.inner.read();
        inner
            .cells
            .values()
            .map(|s| std::mem::size_of::<CellKey>() + s.estimated_bytes())
            .sum::<usize>()
            + (inner.applied.len() + inner.unsealed.len() + inner.based.len())
                * std::mem::size_of::<BlockKey>()
    }

    /// Backfill rollup Cells for every block of the domain from the block
    /// source — the boot path, run before any stream starts, so live
    /// blocks contribute exactly their base rows (appends then fold deltas
    /// on top). Returns the number of blocks folded.
    #[allow(clippy::too_many_arguments)] // the boot path threads every domain knob through once
    pub fn backfill(
        &self,
        source: &dyn BlockSource,
        block_len: u8,
        data_bbox: &BBox,
        data_time: &TimeRange,
        sketch: &SketchSpec,
        max_cells_per_level: usize,
        max_blocks: usize,
    ) -> Result<usize, String> {
        let mut keys: Vec<CellKey> = Vec::new();
        for level in &self.levels {
            let q = AggQuery::new(
                *data_bbox,
                *data_time,
                level.spatial_res(),
                level.temporal_res(),
            );
            keys.extend(
                q.target_keys(max_cells_per_level)
                    .map_err(|e| format!("rollup backfill targets at {level}: {e}"))?,
            );
        }
        keys.sort_unstable();
        keys.dedup();
        let plan = plan_blocks(&keys, block_len, data_bbox, data_time, max_blocks)
            .map_err(|e| format!("rollup backfill plan: {e}"))?;
        let entries: Vec<(BlockKey, Vec<CellKey>)> = plan.into_iter().collect();
        let scans: Vec<(BlockKey, Vec<(CellKey, CellSummary)>)> = entries
            .par_iter()
            .map(|(bk, wanted)| {
                let frame = source.read_frame(*bk, frame_spatial_res(block_len, wanted));
                (*bk, frame.aggregate_with(wanted, sketch).cells)
            })
            .collect();
        let mut folded = 0;
        for (bk, cells) in scans {
            if self.fold_base(bk, &cells) {
                folded += 1;
            }
        }
        Ok(folded)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use stash_geo::{Geohash, TemporalRes, TimeBin};
    use std::str::FromStr;

    fn day_bin(y: i64, m: u32, d: u32) -> TimeBin {
        TimeBin::containing(TemporalRes::Day, epoch_seconds(y, m, d, 0, 0, 0))
    }

    fn block(gh: &str, y: i64, m: u32, d: u32) -> BlockKey {
        BlockKey {
            geohash: Geohash::from_str(gh).unwrap(),
            day: day_bin(y, m, d),
        }
    }

    fn key(gh: &str, res: TemporalRes, y: i64, m: u32, d: u32) -> CellKey {
        CellKey::new(
            Geohash::from_str(gh).unwrap(),
            TimeBin::containing(res, epoch_seconds(y, m, d, 0, 0, 0)),
        )
    }

    fn summary(vals: &[f64]) -> CellSummary {
        let mut s = CellSummary::empty(vals.len());
        s.push_row(vals);
        s
    }

    fn levels() -> Vec<Level> {
        vec![
            Level::of(2, TemporalRes::Day).unwrap(),
            Level::of(1, TemporalRes::Month).unwrap(),
        ]
    }

    #[test]
    fn watermark_starts_at_earliest_unsealed_day_and_advances_on_seal() {
        let horizon = epoch_seconds(2016, 1, 1, 0, 0, 0);
        let b1 = block("9q8", 2015, 2, 2);
        let b2 = block("9q9", 2015, 3, 5);
        let store = RollupStore::new(levels(), [b1, b2], horizon);
        assert_eq!(store.watermark(), day_bin(2015, 2, 2).range().start);
        assert_eq!(store.unsealed_blocks(), 2);

        let after_b1 = store.seal(b1);
        assert_eq!(after_b1, day_bin(2015, 3, 5).range().start);
        // Idempotent, never regresses.
        assert_eq!(store.seal(b1), after_b1);
        assert_eq!(store.seal(b2), horizon);
        assert_eq!(store.unsealed_blocks(), 0);
    }

    #[test]
    fn no_live_blocks_means_watermark_at_horizon() {
        let horizon = epoch_seconds(2016, 1, 1, 0, 0, 0);
        let store = RollupStore::new(levels(), [], horizon);
        assert_eq!(store.watermark(), horizon);
    }

    #[test]
    fn fold_is_seq_idempotent_and_filters_levels() {
        let store = RollupStore::new(levels(), [], epoch_seconds(2016, 1, 1, 0, 0, 0));
        let b = block("9q8", 2015, 2, 2);
        let rollup_key = key("9q", TemporalRes::Day, 2015, 2, 2);
        let fine_key = key("9q8y", TemporalRes::Day, 2015, 2, 2);
        let cells = vec![
            (rollup_key, summary(&[1.0])),
            (fine_key, summary(&[9.0])), // not a rollup level — ignored
        ];
        assert!(store.fold(b, 0, &cells));
        assert!(!store.fold(b, 0, &cells), "duplicate seq skipped");
        assert!(!store.fold(b, 2, &cells), "gap skipped");
        assert!(store.fold(b, 1, &cells));
        assert_eq!(store.len(), 1, "only the rollup-level key materializes");

        let served = store.serve(&[rollup_key]).unwrap();
        assert_eq!(served.len(), 1);
        assert_eq!(served[0].1.count(), 2, "two applied folds of one row");
    }

    #[test]
    fn fold_base_applies_once_per_block() {
        let store = RollupStore::new(levels(), [], epoch_seconds(2016, 1, 1, 0, 0, 0));
        let b = block("9q8", 2015, 2, 2);
        let k = key("9q", TemporalRes::Day, 2015, 2, 2);
        assert!(store.fold_base(b, &[(k, summary(&[1.0]))]));
        assert!(!store.fold_base(b, &[(k, summary(&[1.0]))]));
        assert_eq!(store.serve(&[k]).unwrap()[0].1.count(), 1);
    }

    #[test]
    fn serve_declines_unless_every_key_is_under_the_watermark() {
        let b = block("9q8", 2015, 2, 2);
        let store = RollupStore::new(levels(), [b], epoch_seconds(2016, 1, 1, 0, 0, 0));
        let under = key("9q", TemporalRes::Day, 2015, 2, 1); // ends before 2015-02-02
        let month = key("9", TemporalRes::Month, 2015, 2, 1); // spans the live day
        assert!(store.covers(&under));
        assert!(!store.covers(&month));
        assert!(store.serve(&[under]).is_some());
        assert!(store.serve(&[under, month]).is_none(), "all-or-nothing");

        store.seal(b);
        assert!(store.serve(&[under, month]).is_some());
    }

    #[test]
    fn serve_drops_empty_cells_and_sorts() {
        let store = RollupStore::new(levels(), [], epoch_seconds(2016, 1, 1, 0, 0, 0));
        let k1 = key("9q", TemporalRes::Day, 2015, 2, 2);
        let k2 = key("9r", TemporalRes::Day, 2015, 2, 2);
        let empty = key("9m", TemporalRes::Day, 2015, 2, 2);
        store.fold_base(
            block("9q8", 2015, 2, 2),
            &[
                (k2, summary(&[2.0])),
                (empty, CellSummary::empty(1)),
                (k1, summary(&[1.0])),
            ],
        );
        let served = store.serve(&[k2, empty, k1]).unwrap();
        assert_eq!(
            served.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![k1, k2]
        );
    }

    #[test]
    fn retirable_is_bounded_by_watermark_and_horizon() {
        let live = block("9q8", 2015, 3, 1);
        let store = RollupStore::new(levels(), [live], epoch_seconds(2016, 1, 1, 0, 0, 0));
        let old = block("9q9", 2015, 2, 2);
        let horizon = epoch_seconds(2015, 6, 1, 0, 0, 0);
        assert!(store.retirable(&old, horizon));
        assert!(
            !store.retirable(&live, horizon),
            "live block is above the watermark"
        );
        assert!(
            !store.retirable(&old, day_bin(2015, 2, 2).range().start),
            "horizon below the block's day end"
        );
    }

    #[test]
    fn estimated_bytes_grow_with_cells() {
        let store = RollupStore::new(levels(), [], epoch_seconds(2016, 1, 1, 0, 0, 0));
        let before = store.estimated_bytes();
        store.fold_base(
            block("9q8", 2015, 2, 2),
            &[(key("9q", TemporalRes::Day, 2015, 2, 2), summary(&[1.0]))],
        );
        assert!(store.estimated_bytes() > before);
    }
}
