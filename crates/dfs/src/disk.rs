//! The disk cost model: what makes cold reads expensive.
//!
//! Block reads in the real Galileo hit spinning disks (1 TB drives in the
//! paper's testbed, §VIII-A). Here every read charges `seek + bytes /
//! bandwidth` of real wall-clock time in the *reading node's* thread — disk
//! time occupies the node, unlike wire time, which matches reality: a node
//! mid-read cannot serve other work on that thread.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Seek/transfer cost model for one simulated drive.
#[derive(Debug, Clone)]
pub struct DiskModel {
    /// Per-read positioning cost.
    pub seek: Duration,
    /// Sequential transfer rate in bytes per second.
    pub bytes_per_sec: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        DiskModel {
            // Scaled-down disk (see DESIGN.md §2): experiments compare
            // systems under identical cost models, so only the disk:network
            // cost ratio matters, not absolute magnitudes.
            seek: Duration::from_micros(800),
            bytes_per_sec: 150.0e6,
        }
    }
}

impl DiskModel {
    /// A zero-cost model, for tests that need to isolate CPU work.
    pub fn free() -> Self {
        DiskModel {
            seek: Duration::ZERO,
            bytes_per_sec: f64::INFINITY,
        }
    }

    /// Wall-clock cost of reading one block of `bytes`.
    pub fn read_cost(&self, bytes: usize) -> Duration {
        self.seek + Duration::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Charge a read: sleeps the calling thread for the modeled duration
    /// and records it in `stats`.
    pub fn charge_read(&self, bytes: usize, stats: &DiskStats) {
        stats.record_read(bytes);
        let cost = self.read_cost(bytes);
        if cost > Duration::ZERO {
            std::thread::sleep(cost);
        }
    }
}

/// Per-store disk counters (relaxed atomics; monitoring only).
#[derive(Debug, Default)]
pub struct DiskStats {
    reads: AtomicU64,
    bytes: AtomicU64,
}

impl DiskStats {
    pub fn record_read(&self, bytes: usize) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Number of block reads charged.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Total bytes charged.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn read_cost_combines_seek_and_transfer() {
        let m = DiskModel {
            seek: Duration::from_millis(2),
            bytes_per_sec: 1e6,
        };
        // 1 MB at 1 MB/s = 1 s + 2 ms seek.
        let c = m.read_cost(1_000_000);
        assert!(c >= Duration::from_millis(1001) && c <= Duration::from_millis(1005));
        assert_eq!(m.read_cost(0), Duration::from_millis(2));
    }

    #[test]
    fn free_model_costs_nothing() {
        let m = DiskModel::free();
        assert_eq!(m.read_cost(usize::MAX / 2), Duration::ZERO);
        let stats = DiskStats::default();
        let t0 = Instant::now();
        m.charge_read(1 << 30, &stats);
        assert!(t0.elapsed() < Duration::from_millis(50));
        assert_eq!(stats.reads(), 1);
        assert_eq!(stats.bytes(), 1 << 30);
    }

    #[test]
    fn charge_read_sleeps() {
        let m = DiskModel {
            seek: Duration::from_millis(15),
            bytes_per_sec: f64::INFINITY,
        };
        let stats = DiskStats::default();
        let t0 = Instant::now();
        m.charge_read(100, &stats);
        assert!(t0.elapsed() >= Duration::from_millis(14));
        assert_eq!(stats.reads(), 1);
    }

    #[test]
    fn stats_accumulate_across_threads() {
        let m = DiskModel::free();
        let stats = std::sync::Arc::new(DiskStats::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (m, s) = (m.clone(), std::sync::Arc::clone(&stats));
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        m.charge_read(10, &s);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(stats.reads(), 400);
        assert_eq!(stats.bytes(), 4000);
    }
}
