//! Block identity and fetch planning.
//!
//! Galileo stores observations in blocks whose "granularity of coverage is
//! determined by the length of geohash code" (§VI-C); we key a block by a
//! geohash of fixed block length plus a UTC day. Planning maps the Cells a
//! query is missing onto the minimal set of blocks that contain their
//! observations, clipped to the dataset's domain so nothing is fetched for
//! regions/times where no data exists.

use stash_geo::{BBox, Geohash, TemporalRes, TimeBin, TimeRange};
use stash_model::CellKey;
use std::collections::BTreeMap;

/// Identity of one stored block: a geohash tile × a UTC day.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockKey {
    pub geohash: Geohash,
    /// Always a [`TemporalRes::Day`] bin.
    pub day: TimeBin,
}

impl std::fmt::Display for BlockKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.geohash, self.day)
    }
}

/// Why a fetch plan could not be produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockPlanError {
    /// The plan would touch more blocks than the budget allows.
    TooManyBlocks { needed: usize, budget: usize },
}

impl std::fmt::Display for BlockPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BlockPlanError::TooManyBlocks { needed, budget } => {
                write!(f, "fetch plan needs {needed} blocks, budget is {budget}")
            }
        }
    }
}

impl std::error::Error for BlockPlanError {}

/// Map missing Cells onto the blocks containing their observations.
///
/// Returns `block → cells needing it`, sorted by block for deterministic
/// iteration. A Cell coarser than the block tiling expands to all nested
/// blocks intersecting the data domain; a finer Cell maps to the single
/// enclosing block. Each block appears once no matter how many cells need
/// it — that dedup is the whole point of planning before fetching.
pub fn plan_blocks(
    cells: &[CellKey],
    block_len: u8,
    data_bbox: &BBox,
    data_time: &TimeRange,
    max_blocks: usize,
) -> Result<BTreeMap<BlockKey, Vec<CellKey>>, BlockPlanError> {
    let mut plan: BTreeMap<BlockKey, Vec<CellKey>> = BTreeMap::new();
    let mut total = 0usize;
    for &cell in cells {
        // Temporal expansion: day bins of the cell clipped to the domain.
        let cr = cell.time.range();
        let clipped = TimeRange::new(cr.start.max(data_time.start), cr.end.min(data_time.end));
        let days = match clipped {
            Some(r) if r.duration_secs() > 0 => TimeBin::cover_range(TemporalRes::Day, r),
            _ => continue, // cell entirely outside the dataset's time domain
        };
        // Spatial expansion.
        let tiles: Vec<Geohash> = if cell.geohash.len() >= block_len {
            let tile = cell.geohash.prefix(block_len).expect("len checked");
            if tile.bbox().intersects(data_bbox) {
                vec![tile]
            } else {
                Vec::new()
            }
        } else {
            descend_to(cell.geohash, block_len)
                .into_iter()
                .filter(|g| g.bbox().intersects(data_bbox))
                .collect()
        };
        for tile in tiles {
            for &day in &days {
                let key = BlockKey { geohash: tile, day };
                let entry = plan.entry(key).or_insert_with(|| {
                    total += 1;
                    Vec::new()
                });
                entry.push(cell);
                if total > max_blocks {
                    return Err(BlockPlanError::TooManyBlocks {
                        needed: total,
                        budget: max_blocks,
                    });
                }
            }
        }
    }
    Ok(plan)
}

/// All descendants of `gh` at exactly `target_len`.
fn descend_to(gh: Geohash, target_len: u8) -> Vec<Geohash> {
    debug_assert!(target_len >= gh.len());
    let mut cur = vec![gh];
    while cur[0].len() < target_len {
        cur = cur
            .iter()
            .flat_map(|g| g.children().expect("below max length"))
            .collect();
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use std::str::FromStr;

    fn domain() -> (BBox, TimeRange) {
        (
            BBox::new(20.0, 55.0, -130.0, -60.0).unwrap(),
            TimeRange::new(
                epoch_seconds(2015, 1, 1, 0, 0, 0),
                epoch_seconds(2016, 1, 1, 0, 0, 0),
            )
            .unwrap(),
        )
    }

    fn day_key(gh: &str, y: i64, m: u32, d: u32) -> CellKey {
        CellKey::new(
            Geohash::from_str(gh).unwrap(),
            TimeBin::containing(TemporalRes::Day, epoch_seconds(y, m, d, 0, 0, 0)),
        )
    }

    #[test]
    fn fine_cell_maps_to_single_enclosing_block() {
        let (bbox, time) = domain();
        let cell = day_key("9xj64", 2015, 2, 2); // Colorado-ish, inside domain
        let plan = plan_blocks(&[cell], 3, &bbox, &time, 100).unwrap();
        assert_eq!(plan.len(), 1);
        let (bk, cells) = plan.iter().next().unwrap();
        assert_eq!(bk.geohash.to_string(), "9xj");
        assert_eq!(bk.day, cell.time);
        assert_eq!(cells, &vec![cell]);
    }

    #[test]
    fn coarse_cell_expands_to_nested_blocks() {
        let (bbox, time) = domain();
        let cell = day_key("9x", 2015, 2, 2); // coarser than block_len 3
        let plan = plan_blocks(&[cell], 3, &bbox, &time, 100).unwrap();
        // 9x has 32 children at length 3; all or most intersect the domain.
        assert!(plan.len() > 16 && plan.len() <= 32, "{} blocks", plan.len());
        for bk in plan.keys() {
            assert!(bk.geohash.is_within(&cell.geohash));
        }
    }

    #[test]
    fn month_cell_expands_to_days() {
        let (bbox, time) = domain();
        let cell = CellKey::new(
            Geohash::from_str("9xj").unwrap(),
            TimeBin::containing(TemporalRes::Month, epoch_seconds(2015, 2, 1, 0, 0, 0)),
        );
        let plan = plan_blocks(&[cell], 3, &bbox, &time, 100).unwrap();
        assert_eq!(plan.len(), 28, "Feb 2015 has 28 day blocks");
        for bk in plan.keys() {
            assert_eq!(bk.geohash, cell.geohash);
            assert!(cell.time.range().encloses(&bk.day.range()));
        }
    }

    #[test]
    fn shared_blocks_are_deduplicated() {
        let (bbox, time) = domain();
        // Two sibling res-5 cells share the same res-3 block.
        let a = day_key("9xj64", 2015, 2, 2);
        let b = day_key("9xj65", 2015, 2, 2);
        let plan = plan_blocks(&[a, b], 3, &bbox, &time, 100).unwrap();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.values().next().unwrap().len(), 2);
    }

    #[test]
    fn out_of_domain_cells_are_skipped() {
        let (bbox, time) = domain();
        // Spatially outside (Europe) — gcp is ~London.
        let europe = day_key("gcp64", 2015, 2, 2);
        let plan = plan_blocks(&[europe], 3, &bbox, &time, 100).unwrap();
        assert!(plan.is_empty());
        // Temporally outside (2020).
        let future = day_key("9xj64", 2020, 2, 2);
        let plan = plan_blocks(&[future], 3, &bbox, &time, 100).unwrap();
        assert!(plan.is_empty());
    }

    #[test]
    fn partially_out_of_time_domain_is_clipped() {
        let (bbox, time) = domain();
        // A month straddling the domain start: Dec 2014 fully outside,
        // Jan 2015 fully inside.
        let jan = CellKey::new(
            Geohash::from_str("9xj").unwrap(),
            TimeBin::containing(TemporalRes::Month, epoch_seconds(2015, 1, 15, 0, 0, 0)),
        );
        let plan = plan_blocks(&[jan], 3, &bbox, &time, 100).unwrap();
        assert_eq!(plan.len(), 31);
        let year = CellKey::new(
            Geohash::from_str("9xj").unwrap(),
            TimeBin::containing(TemporalRes::Year, epoch_seconds(2015, 6, 1, 0, 0, 0)),
        );
        let plan = plan_blocks(&[year], 3, &bbox, &time, 1000).unwrap();
        assert_eq!(plan.len(), 365);
    }

    #[test]
    fn budget_is_enforced() {
        let (bbox, time) = domain();
        let year = CellKey::new(
            Geohash::from_str("9xj").unwrap(),
            TimeBin::containing(TemporalRes::Year, epoch_seconds(2015, 6, 1, 0, 0, 0)),
        );
        match plan_blocks(&[year], 3, &bbox, &time, 10) {
            Err(BlockPlanError::TooManyBlocks { needed, budget }) => {
                assert!(needed > 10);
                assert_eq!(budget, 10);
            }
            other => panic!("expected budget error, got {other:?}"),
        }
    }

    #[test]
    fn plan_is_deterministic() {
        let (bbox, time) = domain();
        let cells = vec![day_key("9xj64", 2015, 2, 2), day_key("9x", 2015, 2, 3)];
        let a = plan_blocks(&cells, 3, &bbox, &time, 1000).unwrap();
        let b = plan_blocks(&cells, 3, &bbox, &time, 1000).unwrap();
        assert_eq!(a, b);
    }
}
