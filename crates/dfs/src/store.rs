//! Per-node block storage and local aggregation.
//!
//! A [`NodeStore`] is one Galileo node's view of the dataset: the blocks the
//! partitioner assigns to it. [`NodeStore::fetch_partials`] is the
//! distributed-aggregation workhorse — it plans the blocks needed by a set
//! of missing Cells, reads the ones this node owns (charging the disk
//! model), scans their observations in parallel, and returns per-Cell
//! *partial* summaries. Partials from different nodes merge exactly thanks
//! to the summary monoid, so the coordinator never re-reads anything.

use crate::block::{plan_blocks, BlockKey, BlockPlanError};
use crate::disk::{DiskModel, DiskStats};
use crate::frame::{frame_spatial_res, BlockFrame, FrameCache, DEFAULT_FRAME_CACHE_BYTES};
use crate::partitioner::Partitioner;
use rayon::prelude::*;
use stash_geo::{BBox, Geohash, TimeRange};
use stash_model::fx::FxHashMap;
use stash_model::{CellKey, CellSummary, Observation, SketchSpec};
use stash_obs::MetricsRegistry;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// A per-partition fragment of a Cell's summary. Fragments for the same key
/// from different nodes merge into the complete Cell.
#[derive(Debug, Clone, PartialEq)]
pub struct PartialCell {
    pub key: CellKey,
    pub summary: CellSummary,
}

/// Result of appending rows to a block (see [`BlockSource::append`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// Rows were appended; the block's version after the append.
    Applied { version: u64 },
    /// `seq` was already applied — a retried batch; storage is unchanged.
    Duplicate,
    /// `seq` skips ahead of the next expected batch; storage is unchanged
    /// and the producer must re-send in order.
    OutOfOrder,
    /// This source is immutable (the default for sealed datasets).
    Unsupported,
}

/// Where blocks come from. In production this would be files on disk; in
/// the reproduction it is the deterministic synthetic generator (every read
/// of a block yields identical observations — see DESIGN.md §2).
///
/// Contract: every observation of a block lies inside the block's geohash
/// tile and UTC day, and reads of the same key at the same *version* yield
/// identical rows — both properties the decoded-frame cache relies on.
/// Sealed sources never change, so their version is always 0; appendable
/// sources bump [`BlockSource::block_version`] on every successful
/// [`BlockSource::append`], which is what lets cached frames tagged with an
/// older version miss instead of serving truncated data.
pub trait BlockSource: Send + Sync {
    /// Materialize the observations of one block.
    fn read_block(&self, key: BlockKey) -> Vec<Observation>;
    /// Serialized size of a block, for the disk cost model.
    fn block_bytes(&self, geohash: Geohash) -> usize;
    /// Attribute count of the dataset schema.
    fn n_attrs(&self) -> usize;
    /// Current version of a block: 0 for sealed blocks, incremented by
    /// every applied append.
    fn block_version(&self, _key: BlockKey) -> u64 {
        0
    }
    /// Read a block together with the version the rows reflect. The
    /// default reads then asks for the version separately, which is safe
    /// under concurrent appends: at worst the returned tag is *newer* than
    /// the rows — never older — so a mistagged frame causes a wasted
    /// re-decode, not a wrong answer. Appendable sources should override
    /// this to read both under one lock.
    fn read_block_versioned(&self, key: BlockKey) -> (Vec<Observation>, u64) {
        let rows = self.read_block(key);
        (rows, self.block_version(key))
    }
    /// Append batch `seq` (0-based, per block, contiguous) to a block.
    /// Idempotent under retries: a `seq` at or below the last applied one
    /// is a [`AppendOutcome::Duplicate`]; a gap is
    /// [`AppendOutcome::OutOfOrder`]. Immutable sources keep the default.
    fn append(&self, _key: BlockKey, _seq: u64, _rows: &[Observation]) -> AppendOutcome {
        AppendOutcome::Unsupported
    }
    /// Drop a raw block under a retention policy (DESIGN.md §17): later
    /// reads of the key yield no observations and its version becomes
    /// `u64::MAX` so remote decoded-frame caches tagged with an older
    /// version lazily miss instead of serving dropped data. Returns `true`
    /// iff this call retired the block (idempotent). Immutable sources keep
    /// the default: nothing is dropped.
    fn retire(&self, _key: BlockKey) -> bool {
        false
    }
    /// Read one block as a ready-to-scan flat frame at `spatial_res`,
    /// tagged with the version its rows reflect. The default materializes
    /// `Vec<Observation>` and decodes — the oracle route. Sources that can
    /// stream rows should override it with a [`crate::frame::FrameBuilder`]
    /// fill, which
    /// skips the row structs entirely; equivalence is pinned by the
    /// `read_frame matches the row oracle` proptests.
    fn read_frame(&self, key: BlockKey, spatial_res: u8) -> BlockFrame {
        let (observations, version) = self.read_block_versioned(key);
        BlockFrame::decode(key, &observations, self.n_attrs(), spatial_res).with_version(version)
    }
}

/// One node's storage engine.
pub struct NodeStore {
    node_idx: usize,
    partitioner: Partitioner,
    block_len: u8,
    data_bbox: BBox,
    data_time: TimeRange,
    disk: DiskModel,
    stats: DiskStats,
    source: Arc<dyn BlockSource>,
    /// Ceiling on blocks per fetch plan; degenerate queries fail fast
    /// instead of grinding the node.
    max_blocks_per_fetch: usize,
    /// Modeled CPU cost of scanning/aggregating one observation. Charged
    /// as virtual (sleep) time so node capacity is defined by the cost
    /// model, not by the simulator host's core count (DESIGN.md §2).
    scan_cost_per_obs: std::time::Duration,
    /// Decoded frames of recently scanned blocks (DESIGN.md §12).
    frame_cache: FrameCache,
    /// Named counters for the scan kernel and frame cache (`dfs.*`).
    metrics: Arc<MetricsRegistry>,
    /// Sketch-valued Cell configuration; disabled keeps scans exact-only.
    sketches: SketchSpec,
}

/// Modeled cost ratio of aggregating a row from an already-decoded frame
/// vs. decoding it cold: the columnar fold skips the geohash encode and the
/// per-row hashing, so a warm row is charged `scan_cost_per_obs / 8`
/// (DESIGN.md §12; the microbenchmarks in `core_micro` back the ratio).
const FRAME_AGG_COST_DIVISOR: u32 = 8;

/// What [`NodeStore::scan_block`] produced for one block.
pub struct BlockScan {
    /// One summary per wanted cell, deduplicated, first-occurrence order.
    pub cells: Vec<(CellKey, CellSummary)>,
    /// Rows aggregated (the block's row count).
    pub rows: usize,
    /// Whether the decoded frame came from the cache.
    pub cache_hit: bool,
}

impl NodeStore {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node_idx: usize,
        partitioner: Partitioner,
        block_len: u8,
        data_bbox: BBox,
        data_time: TimeRange,
        disk: DiskModel,
        source: Arc<dyn BlockSource>,
        max_blocks_per_fetch: usize,
    ) -> Self {
        assert!(node_idx < partitioner.n_nodes(), "node index outside ring");
        assert!(
            block_len >= partitioner.prefix_len(),
            "blocks must nest within partitions"
        );
        NodeStore {
            node_idx,
            partitioner,
            block_len,
            data_bbox,
            data_time,
            disk,
            stats: DiskStats::default(),
            source,
            max_blocks_per_fetch,
            scan_cost_per_obs: std::time::Duration::from_nanos(400),
            frame_cache: FrameCache::new(DEFAULT_FRAME_CACHE_BYTES),
            metrics: Arc::new(MetricsRegistry::new()),
            sketches: SketchSpec::disabled(),
        }
    }

    /// Override the modeled per-observation scan cost (default 400 ns,
    /// ~2.5 M observations/s per worker — a paper-era aggregation rate).
    pub fn with_scan_cost(mut self, per_obs: std::time::Duration) -> Self {
        self.scan_cost_per_obs = per_obs;
        self
    }

    /// Override the decoded-frame cache budget (`0` disables caching).
    pub fn with_frame_cache_bytes(mut self, bytes: usize) -> Self {
        self.frame_cache = FrameCache::new(bytes);
        self
    }

    /// Record scan-kernel counters into the given registry (a cluster node
    /// passes its own, so `dfs.*` shows up next to its other metrics).
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Enable sketch-valued Cells: every scan emits per-attribute sketch
    /// partials alongside the exact summaries (no-op when disabled).
    pub fn with_sketches(mut self, sketches: SketchSpec) -> Self {
        self.sketches = sketches;
        self
    }

    /// The sketch configuration scans run with.
    pub fn sketch_spec(&self) -> &SketchSpec {
        &self.sketches
    }

    /// The registry holding this store's `dfs.*` counters.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The decoded-frame cache (hit/miss accounting lives in
    /// [`NodeStore::scan_block`]).
    pub fn frame_cache(&self) -> &FrameCache {
        &self.frame_cache
    }

    pub fn node_idx(&self) -> usize {
        self.node_idx
    }

    pub fn partitioner(&self) -> &Partitioner {
        &self.partitioner
    }

    pub fn block_len(&self) -> u8 {
        self.block_len
    }

    pub fn data_bbox(&self) -> &BBox {
        &self.data_bbox
    }

    pub fn data_time(&self) -> &TimeRange {
        &self.data_time
    }

    /// Disk counters for this node.
    pub fn disk_stats(&self) -> &DiskStats {
        &self.stats
    }

    /// Does this node own the given block?
    pub fn owns_block(&self, block: &BlockKey) -> bool {
        self.partitioner.owner(block.geohash) == self.node_idx
    }

    /// Fetch partial summaries for `cells`, reading only blocks this node
    /// owns. Cells whose blocks all live elsewhere produce no partial here;
    /// cells covered but with no matching observations produce an *empty*
    /// partial (so callers can distinguish "computed, empty region" from
    /// "not my data").
    pub fn fetch_partials(&self, cells: &[CellKey]) -> Result<Vec<PartialCell>, BlockPlanError> {
        self.fetch_partials_excluding(cells, &[])
    }

    /// [`NodeStore::fetch_partials`] under failover: blocks whose primary
    /// owner is in `exclude` (crashed / unreachable) are scanned by their
    /// replica instead — the first ring successor not excluded (see
    /// [`Partitioner::owner_excluding`]). Every node applies the same
    /// effective-owner predicate, so each block is still scanned exactly
    /// once cluster-wide and merged answers stay exact.
    pub fn fetch_partials_excluding(
        &self,
        cells: &[CellKey],
        exclude: &[usize],
    ) -> Result<Vec<PartialCell>, BlockPlanError> {
        let plan = plan_blocks(
            cells,
            self.block_len,
            &self.data_bbox,
            &self.data_time,
            self.max_blocks_per_fetch,
        )?;
        let owned: Vec<(BlockKey, Vec<CellKey>)> = plan
            .into_iter()
            .filter(|(bk, _)| {
                self.partitioner.owner_excluding(bk.geohash, exclude) == self.node_idx
            })
            .collect();
        if owned.is_empty() {
            return Ok(Vec::new());
        }

        // Charge the disk sequentially — one spindle per node — while the
        // CPU scan below runs in parallel across cores. Modeling the read
        // as one up-front sleep overlaps disk and CPU the way readahead
        // does on a real node. Blocks whose decoded frame is already cached
        // never touch the disk at all.
        let mut total_cost = std::time::Duration::ZERO;
        for (bk, wanted) in &owned {
            if self.frame_cache.contains(
                bk,
                frame_spatial_res(self.block_len, wanted),
                self.source.block_version(*bk),
            ) {
                continue;
            }
            let bytes = self.source.block_bytes(bk.geohash);
            total_cost += self.disk.read_cost(bytes);
        }
        if total_cost > std::time::Duration::ZERO {
            std::thread::sleep(total_cost);
        }

        // Scan owned blocks in parallel; each yields a fragment.
        let cold_rows = std::sync::atomic::AtomicUsize::new(0);
        let warm_rows = std::sync::atomic::AtomicUsize::new(0);
        let fragments: Vec<Vec<(CellKey, CellSummary)>> = owned
            .par_iter()
            .map(|(bk, wanted)| {
                let scan = self.scan_block(*bk, wanted);
                let ctr = if scan.cache_hit {
                    &warm_rows
                } else {
                    &cold_rows
                };
                ctr.fetch_add(scan.rows, std::sync::atomic::Ordering::Relaxed);
                scan.cells
            })
            .collect();
        // Charge the modeled aggregation CPU for the scan (virtual time —
        // see field docs). Rows aggregated from a cached frame skip the
        // decode, so they cost a fraction of a cold row.
        let scan_cost = self.scan_cost_per_obs * cold_rows.into_inner() as u32
            + self.scan_cost_per_obs / FRAME_AGG_COST_DIVISOR * warm_rows.into_inner() as u32;
        if scan_cost > std::time::Duration::ZERO {
            std::thread::sleep(scan_cost);
        }

        // Merge fragments (same cell can appear in many blocks: months span
        // days, coarse cells span tiles). Accumulate in a hash map — one
        // probe per fragment entry — and sort once at the end, instead of
        // paying ordered-map entry churn per key.
        let mut merged: FxHashMap<CellKey, CellSummary> = FxHashMap::default();
        let mut sketch_merges = 0u64;
        for frag in fragments {
            for (key, summary) in frag {
                match merged.entry(key) {
                    std::collections::hash_map::Entry::Vacant(v) => {
                        v.insert(summary);
                    }
                    std::collections::hash_map::Entry::Occupied(mut o) => {
                        if o.get().has_sketches() && summary.has_sketches() {
                            sketch_merges += summary.n_attrs() as u64;
                        }
                        o.get_mut().merge(&summary);
                    }
                }
            }
        }
        if sketch_merges > 0 {
            self.metrics.counter("sketch.merges").add(sketch_merges);
        }
        let mut out: Vec<PartialCell> = merged
            .into_iter()
            .map(|(key, summary)| PartialCell { key, summary })
            .collect();
        out.sort_unstable_by_key(|p| p.key);
        Ok(out)
    }

    /// Scan one block for the cells that need it, through the columnar
    /// frame kernel and the decoded-frame cache (DESIGN.md §12).
    pub fn scan_block(&self, bk: BlockKey, wanted: &[CellKey]) -> BlockScan {
        let need_res = frame_spatial_res(self.block_len, wanted);
        let version = self.source.block_version(bk);
        let (frame, cache_hit) = match self.frame_cache.lookup(&bk, need_res, version) {
            Some(f) => {
                self.metrics.inc("dfs.frame_cache.hit");
                (f, true)
            }
            None => {
                self.metrics.inc("dfs.frame_cache.miss");
                let t0 = std::time::Instant::now();
                let f = Arc::new(self.source.read_frame(bk, need_res));
                self.metrics
                    .counter("dfs.decode_ns")
                    .add(t0.elapsed().as_nanos() as u64);
                self.stats.record_read(self.source.block_bytes(bk.geohash));
                self.metrics
                    .counter("dfs.rows_decoded")
                    .add(f.n_rows() as u64);
                let evicted = self.frame_cache.insert(Arc::clone(&f));
                if evicted > 0 {
                    self.metrics
                        .counter("dfs.frame_cache.evicted_bytes")
                        .add(evicted as u64);
                }
                (f, false)
            }
        };
        let agg = frame.aggregate_with(wanted, &self.sketches);
        if agg.derived_cells > 0 {
            self.metrics
                .counter("dfs.cells_derived")
                .add(agg.derived_cells);
        }
        if agg.sketch_merged_cells > 0 {
            self.metrics
                .counter("sketch.cells_merged")
                .add(agg.sketch_merged_cells);
        }
        if self.sketches.enabled {
            let bytes: usize = agg.cells.iter().map(|(_, s)| s.sketch_wire_bytes()).sum();
            self.metrics.counter("sketch.bytes").add(bytes as u64);
        }
        BlockScan {
            cells: agg.cells,
            rows: frame.n_rows(),
            cache_hit,
        }
    }

    /// Append batch `seq` of a live stream to a block and keep the decoded
    /// frame cache coherent: an applied append eagerly drops this node's
    /// cached frame (the next scan re-decodes at the new version). Remote
    /// nodes that replicated the frame go stale-safe lazily — their cached
    /// tag no longer matches the block version, so lookups miss.
    pub fn append_block(&self, key: BlockKey, seq: u64, rows: &[Observation]) -> AppendOutcome {
        let outcome = self.source.append(key, seq, rows);
        if let AppendOutcome::Applied { .. } = outcome {
            self.metrics
                .counter("dfs.append.rows")
                .add(rows.len() as u64);
            let freed = self.frame_cache.remove(&key);
            if freed > 0 {
                self.metrics.counter("dfs.append.frames_invalidated").inc();
            }
        }
        outcome
    }

    /// Retire a raw block under retention (see [`BlockSource::retire`]) and
    /// keep this node's decoded-frame cache coherent by dropping the cached
    /// frame eagerly. Returns `(retired, cache_bytes_freed)`; the caller
    /// accounts the raw bytes released via [`BlockSource::block_bytes`]
    /// before calling.
    pub fn retire_block(&self, key: BlockKey) -> (bool, usize) {
        let retired = self.source.retire(key);
        let freed = self.frame_cache.remove(&key);
        if retired {
            self.metrics.counter("dfs.retire.blocks").inc();
        }
        if freed > 0 {
            self.metrics
                .counter("dfs.retire.cache_bytes")
                .add(freed as u64);
        }
        (retired, freed)
    }

    /// The seed's direct per-level binning — one geohash encode per
    /// observation × resolution group. Kept as the reference
    /// implementation: the equivalence proptests and the `core_micro`
    /// old-vs-new benchmark compare [`NodeStore::scan_block`] against it.
    pub fn scan_block_direct(
        &self,
        bk: BlockKey,
        wanted: &[CellKey],
    ) -> Vec<(CellKey, CellSummary)> {
        let n_attrs = self.source.n_attrs();
        // Group the wanted cells by resolution pair so each observation is
        // binned once per distinct resolution, not once per cell.
        let mut by_level: HashMap<(u8, stash_geo::TemporalRes), HashSet<CellKey>> = HashMap::new();
        for &c in wanted {
            by_level
                .entry((c.spatial_res(), c.temporal_res()))
                .or_default()
                .insert(c);
        }
        // Every wanted cell starts with an empty summary: "computed, empty".
        let mut out: BTreeMap<CellKey, CellSummary> = wanted
            .iter()
            .map(|&c| (c, CellSummary::empty(n_attrs)))
            .collect();
        let observations = self.source.read_block(bk);
        for obs in &observations {
            for (&(s_res, t_res), members) in &by_level {
                let Some(key) = obs.cell_key(s_res, t_res) else {
                    continue;
                };
                if members.contains(&key) {
                    out.get_mut(&key)
                        .expect("members ⊆ out")
                        .push_row(&obs.values);
                }
            }
        }
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_data::{GeneratorConfig, NamGenerator};
    use stash_geo::time::epoch_seconds;
    use stash_geo::{TemporalRes, TimeBin};
    use std::str::FromStr;

    /// Adapter: NamGenerator as a BlockSource.
    struct GenSource(NamGenerator);

    impl BlockSource for GenSource {
        fn read_block(&self, key: BlockKey) -> Vec<Observation> {
            self.0.block_for_day(key.geohash, key.day)
        }
        fn block_bytes(&self, geohash: Geohash) -> usize {
            self.0.block_bytes(geohash)
        }
        fn n_attrs(&self) -> usize {
            self.0.schema().len()
        }
    }

    fn domain() -> (BBox, TimeRange) {
        (
            BBox::new(20.0, 55.0, -130.0, -60.0).unwrap(),
            TimeRange::new(
                epoch_seconds(2015, 1, 1, 0, 0, 0),
                epoch_seconds(2016, 1, 1, 0, 0, 0),
            )
            .unwrap(),
        )
    }

    fn store(node_idx: usize, n_nodes: usize) -> NodeStore {
        let (bbox, time) = domain();
        let source = Arc::new(GenSource(NamGenerator::new(GeneratorConfig {
            seed: 11,
            obs_per_deg2_per_day: 200.0,
            max_obs_per_block: 50_000,
            value_quantum: 0.0,
        })));
        NodeStore::new(
            node_idx,
            Partitioner::new(n_nodes, 2),
            3,
            bbox,
            time,
            DiskModel::free(),
            source,
            10_000,
        )
    }

    fn all_stores(n: usize) -> Vec<NodeStore> {
        (0..n).map(|i| store(i, n)).collect()
    }

    fn day_cell(gh: &str) -> CellKey {
        CellKey::new(
            Geohash::from_str(gh).unwrap(),
            TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0)),
        )
    }

    #[test]
    fn only_owner_returns_partials() {
        let stores = all_stores(4);
        let cell = day_cell("9xj6"); // finer than block_len, single block
        let owner = stores[0]
            .partitioner()
            .owner(Geohash::from_str("9xj").unwrap());
        for s in &stores {
            let partials = s.fetch_partials(&[cell]).unwrap();
            if s.node_idx() == owner {
                assert_eq!(partials.len(), 1);
                assert_eq!(partials[0].key, cell);
            } else {
                assert!(
                    partials.is_empty(),
                    "node {} is not the owner",
                    s.node_idx()
                );
            }
        }
    }

    #[test]
    fn replica_takes_over_excluded_primary_exactly() {
        let stores = all_stores(4);
        let cell = day_cell("9xj6");
        let primary = stores[0]
            .partitioner()
            .owner(Geohash::from_str("9xj").unwrap());
        let baseline = stores[primary].fetch_partials(&[cell]).unwrap();
        assert_eq!(baseline.len(), 1);

        // With the primary excluded, exactly one other node — its ring
        // successor — scans the block, and sees the very same data (the
        // generator-backed DFS is shared, like replicated storage).
        let replica = (primary + 1) % 4;
        let mut served_by = Vec::new();
        for s in &stores {
            let partials = s.fetch_partials_excluding(&[cell], &[primary]).unwrap();
            if !partials.is_empty() {
                assert_eq!(partials.len(), 1);
                assert_eq!(partials[0].summary.count(), baseline[0].summary.count());
                served_by.push(s.node_idx());
            }
        }
        assert_eq!(served_by, vec![replica]);
    }

    #[test]
    fn coarse_cell_partials_stay_exact_under_exclusion() {
        // Exclude one node; the surviving three must still jointly cover
        // every block exactly once, so the merged summary is unchanged.
        let stores = all_stores(4);
        let cell = day_cell("9");
        let merge_all = |exclude: &[usize]| {
            let mut merged = CellSummary::empty(4);
            for s in &stores {
                if exclude.contains(&s.node_idx()) {
                    continue;
                }
                for p in s.fetch_partials_excluding(&[cell], exclude).unwrap() {
                    merged.merge(&p.summary);
                }
            }
            merged
        };
        let fault_free = merge_all(&[]);
        let failed_over = merge_all(&[2]);
        assert!(fault_free.count() > 0);
        assert_eq!(failed_over.count(), fault_free.count());
    }

    #[test]
    fn partials_merge_to_direct_aggregation() {
        // A coarse (len-1) cell spans many partitions; merging everyone's
        // partials must equal aggregating the raw observations directly.
        let stores = all_stores(4);
        let cell = day_cell("9"); // 1024 blocks at len 3, spread over nodes
        let mut merged = CellSummary::empty(4);
        let mut contributors = 0;
        for s in &stores {
            for p in s.fetch_partials(&[cell]).unwrap() {
                assert_eq!(p.key, cell);
                merged.merge(&p.summary);
                contributors += 1;
            }
        }
        assert!(contributors > 1, "coarse cell should span nodes");

        // Ground truth: scan all blocks directly.
        let gen = NamGenerator::new(GeneratorConfig {
            seed: 11,
            obs_per_deg2_per_day: 200.0,
            max_obs_per_block: 50_000,
            value_quantum: 0.0,
        });
        let (bbox, time) = domain();
        let plan = plan_blocks(&[cell], 3, &bbox, &time, 10_000).unwrap();
        let mut truth = CellSummary::empty(4);
        for bk in plan.keys() {
            for obs in gen.block_for_day(bk.geohash, bk.day) {
                if obs.cell_key(1, TemporalRes::Day) == Some(cell) {
                    truth.push_row(&obs.values);
                }
            }
        }
        assert_eq!(merged.count(), truth.count());
        assert_eq!(merged.attr(0).unwrap().min(), truth.attr(0).unwrap().min());
        assert_eq!(merged.attr(0).unwrap().max(), truth.attr(0).unwrap().max());
        assert!(
            merged.count() > 0,
            "domain region must contain observations"
        );
    }

    #[test]
    fn empty_region_yields_empty_partial() {
        let stores = all_stores(2);
        // Inside the data bbox there is always data (generator is dense),
        // so use a cell whose day has data but whose observations cannot
        // match a *different* day bin: query the same geohash on a day at
        // the very edge — instead, verify the empty-partial path via a cell
        // finer than any observation spacing is impractical; rather check
        // that a covered cell returns a partial even if its summary is
        // empty by using an hour bin at 03:00 of a sparse block.
        let cell = CellKey::new(
            Geohash::from_str("9xj6k").unwrap(),
            TimeBin::containing(TemporalRes::Hour, epoch_seconds(2015, 2, 2, 3, 0, 0)),
        );
        let mut produced = 0;
        for s in &stores {
            for p in s.fetch_partials(&[cell]).unwrap() {
                assert_eq!(p.key, cell);
                produced += 1;
                // Summary may be empty or not; both are valid partials.
            }
        }
        assert_eq!(produced, 1, "exactly the owner produces the partial");
    }

    #[test]
    fn disk_stats_count_block_reads() {
        let s = store(0, 1); // single node owns everything
        let cell = day_cell("9x"); // 32 blocks
        let before = s.disk_stats().reads();
        s.fetch_partials(&[cell]).unwrap();
        let reads = s.disk_stats().reads() - before;
        assert!(
            reads > 16 && reads <= 32,
            "expected ~32 block reads, got {reads}"
        );
        assert!(s.disk_stats().bytes() > 0);
    }

    #[test]
    fn disk_cost_is_charged() {
        let (bbox, time) = domain();
        let source = Arc::new(GenSource(NamGenerator::new(GeneratorConfig::default())));
        let slow = NodeStore::new(
            0,
            Partitioner::new(1, 2),
            3,
            bbox,
            time,
            DiskModel {
                seek: std::time::Duration::from_millis(10),
                bytes_per_sec: f64::INFINITY,
            },
            source,
            10_000,
        );
        let t0 = std::time::Instant::now();
        slow.fetch_partials(&[day_cell("9xj6")]).unwrap();
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(9),
            "disk not charged"
        );
    }

    #[test]
    fn shared_block_scanned_once_for_many_cells() {
        let s = store(0, 1);
        // 32 sibling cells at res 4 inside one res-3 block.
        let parent = Geohash::from_str("9xj").unwrap();
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let cells: Vec<CellKey> = parent
            .children()
            .unwrap()
            .map(|g| CellKey::new(g, day))
            .collect();
        let before = s.disk_stats().reads();
        let partials = s.fetch_partials(&cells).unwrap();
        assert_eq!(
            s.disk_stats().reads() - before,
            1,
            "one block read for 32 cells"
        );
        assert_eq!(partials.len(), 32);
        // The union of children equals the parent's observations.
        let total: u64 = partials.iter().map(|p| p.summary.count()).sum();
        let gen_count = s
            .source
            .read_block(BlockKey {
                geohash: parent,
                day,
            })
            .len();
        assert_eq!(total as usize, gen_count);
    }

    #[test]
    fn fetch_outside_domain_is_empty() {
        let s = store(0, 1);
        let cell = day_cell("gcp6"); // Europe, outside NAM domain
        assert!(s.fetch_partials(&[cell]).unwrap().is_empty());
    }

    #[test]
    fn budget_propagates() {
        let (bbox, time) = domain();
        let source = Arc::new(GenSource(NamGenerator::new(GeneratorConfig::default())));
        let s = NodeStore::new(
            0,
            Partitioner::new(1, 2),
            3,
            bbox,
            time,
            DiskModel::free(),
            source,
            4, // tiny budget
        );
        let cell = day_cell("9x"); // needs 32 blocks
        assert!(matches!(
            s.fetch_partials(&[cell]),
            Err(BlockPlanError::TooManyBlocks { .. })
        ));
    }

    #[test]
    fn partials_come_back_sorted_by_cell_key() {
        // Regression for the fragment merge: accumulation moved from an
        // ordered map to a hash map + final sort, and callers (coordinator
        // merge, snapshot diffing) rely on the sorted order.
        let s = store(0, 1);
        let parent = Geohash::from_str("9xj").unwrap();
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let mut cells: Vec<CellKey> = parent
            .children()
            .unwrap()
            .map(|g| CellKey::new(g, day))
            .collect();
        // Mix in coarser cells and present the input unsorted.
        cells.push(day_cell("9x"));
        cells.push(day_cell("9xj"));
        cells.reverse();
        let partials = s.fetch_partials(&cells).unwrap();
        assert_eq!(partials.len(), cells.len());
        assert!(
            partials.windows(2).all(|w| w[0].key < w[1].key),
            "partials must be strictly sorted by CellKey"
        );
    }

    #[test]
    fn frame_cache_skips_repeat_reads_and_counts_hits() {
        let s = store(0, 1);
        let cell = day_cell("9xj6");
        s.fetch_partials(&[cell]).unwrap();
        let cold_reads = s.disk_stats().reads();
        assert_eq!(s.metrics().counter("dfs.frame_cache.miss").get(), 1);

        // Same block, different wanted cells: served from the cached frame.
        let warm = s.fetch_partials(&[day_cell("9xj7")]).unwrap();
        assert_eq!(warm.len(), 1);
        assert_eq!(s.disk_stats().reads(), cold_reads, "no second disk read");
        assert_eq!(s.metrics().counter("dfs.frame_cache.hit").get(), 1);
        assert!(s.metrics().counter("dfs.rows_decoded").get() > 0);
    }

    #[test]
    fn warm_and_cold_scans_agree() {
        let s = store(0, 1);
        let parent = Geohash::from_str("9xj").unwrap();
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let mut cells: Vec<CellKey> = parent
            .children()
            .unwrap()
            .map(|g| CellKey::new(g, day))
            .collect();
        cells.push(day_cell("9xj"));
        let cold = s.fetch_partials(&cells).unwrap();
        let warm = s.fetch_partials(&cells).unwrap();
        assert_eq!(cold, warm, "cache must not change results");
    }

    #[test]
    fn disabled_cache_still_answers_correctly() {
        let s = store(0, 1).with_frame_cache_bytes(0);
        let cell = day_cell("9xj6");
        let a = s.fetch_partials(&[cell]).unwrap();
        let b = s.fetch_partials(&[cell]).unwrap();
        assert_eq!(a, b);
        assert_eq!(s.metrics().counter("dfs.frame_cache.hit").get(), 0);
        assert_eq!(s.disk_stats().reads(), 2, "every fetch re-reads");
    }

    /// Appendable source for the append-path tests: each block starts with
    /// the first half of its generated rows and grows by appended batches.
    struct AppendableSource {
        gen: NamGenerator,
        overlay: std::sync::Mutex<HashMap<BlockKey, (u64, Vec<Observation>)>>,
    }

    impl AppendableSource {
        fn new(gen: NamGenerator) -> Self {
            AppendableSource {
                gen,
                overlay: std::sync::Mutex::new(HashMap::new()),
            }
        }
    }

    impl BlockSource for AppendableSource {
        fn read_block(&self, key: BlockKey) -> Vec<Observation> {
            let mut rows = self.gen.base_rows(key.geohash, key.day, 0.5);
            if let Some((_, appended)) = self.overlay.lock().unwrap().get(&key) {
                rows.extend(appended.iter().cloned());
            }
            rows
        }
        fn block_bytes(&self, geohash: Geohash) -> usize {
            self.gen.block_bytes(geohash)
        }
        fn n_attrs(&self) -> usize {
            self.gen.schema().len()
        }
        fn block_version(&self, key: BlockKey) -> u64 {
            self.overlay
                .lock()
                .unwrap()
                .get(&key)
                .map_or(0, |(v, _)| *v)
        }
        fn append(&self, key: BlockKey, seq: u64, rows: &[Observation]) -> AppendOutcome {
            let mut overlay = self.overlay.lock().unwrap();
            let entry = overlay.entry(key).or_insert_with(|| (0, Vec::new()));
            match seq.cmp(&entry.0) {
                std::cmp::Ordering::Less => AppendOutcome::Duplicate,
                std::cmp::Ordering::Greater => AppendOutcome::OutOfOrder,
                std::cmp::Ordering::Equal => {
                    entry.1.extend(rows.iter().cloned());
                    entry.0 += 1;
                    AppendOutcome::Applied { version: entry.0 }
                }
            }
        }
    }

    #[test]
    fn append_invalidates_cached_frame_and_serves_new_rows() {
        let (bbox, time) = domain();
        let cfg = GeneratorConfig {
            seed: 11,
            obs_per_deg2_per_day: 200.0,
            max_obs_per_block: 50_000,
            value_quantum: 0.0,
        };
        let src = Arc::new(AppendableSource::new(NamGenerator::new(cfg)));
        let s = NodeStore::new(
            0,
            Partitioner::new(1, 2),
            3,
            bbox,
            time,
            DiskModel::free(),
            Arc::clone(&src) as Arc<dyn BlockSource>,
            10_000,
        );
        let cell = day_cell("9xj6");
        let bk = BlockKey {
            geohash: Geohash::from_str("9xj").unwrap(),
            day: cell.time,
        };
        let cold = s.fetch_partials(&[cell]).unwrap();
        assert!(s.frame_cache().contains(&bk, 4, 0));

        let tail = src.gen.tail_rows(bk.geohash, bk.day, 0.5);
        assert!(!tail.is_empty());
        assert_eq!(
            s.append_block(bk, 0, &tail),
            AppendOutcome::Applied { version: 1 }
        );
        assert_eq!(
            s.metrics().counter("dfs.append.rows").get(),
            tail.len() as u64
        );
        assert_eq!(
            s.metrics().counter("dfs.append.frames_invalidated").get(),
            1
        );
        assert!(
            !s.frame_cache().contains(&bk, 4, 1),
            "frame dropped eagerly"
        );

        // The next fetch re-decodes at version 1 and sees the full block:
        // the result matches a sealed store over the complete dataset.
        let fresh = s.fetch_partials(&[cell]).unwrap();
        let full = store(0, 1).fetch_partials(&[cell]).unwrap();
        assert!(cold[0].summary.count() < fresh[0].summary.count());
        assert_eq!(fresh, full);
        assert!(s.frame_cache().contains(&bk, 4, 1));
    }

    #[test]
    fn duplicate_and_out_of_order_appends_leave_storage_unchanged() {
        let (bbox, time) = domain();
        let src = Arc::new(AppendableSource::new(NamGenerator::new(
            GeneratorConfig::default(),
        )));
        let s = NodeStore::new(
            0,
            Partitioner::new(1, 2),
            3,
            bbox,
            time,
            DiskModel::free(),
            Arc::clone(&src) as Arc<dyn BlockSource>,
            10_000,
        );
        let cell = day_cell("9xj6");
        let bk = BlockKey {
            geohash: Geohash::from_str("9xj").unwrap(),
            day: cell.time,
        };
        let tail = src.gen.tail_rows(bk.geohash, bk.day, 0.5);
        let half = tail.len() / 2;
        assert_eq!(
            s.append_block(bk, 0, &tail[..half]),
            AppendOutcome::Applied { version: 1 }
        );
        let rows_after_first = src.read_block(bk).len();
        // A retried batch and a gap both leave rows and version alone.
        assert_eq!(
            s.append_block(bk, 0, &tail[..half]),
            AppendOutcome::Duplicate
        );
        assert_eq!(
            s.append_block(bk, 2, &tail[half..]),
            AppendOutcome::OutOfOrder
        );
        assert_eq!(src.read_block(bk).len(), rows_after_first);
        assert_eq!(src.block_version(bk), 1);
        assert_eq!(
            s.append_block(bk, 1, &tail[half..]),
            AppendOutcome::Applied { version: 2 }
        );
        assert_eq!(
            src.read_block(bk).len(),
            src.gen.block_for_day(bk.geohash, bk.day).len()
        );
    }

    #[test]
    fn sealed_source_rejects_appends() {
        let s = store(0, 1);
        let cell = day_cell("9xj6");
        let bk = BlockKey {
            geohash: Geohash::from_str("9xj").unwrap(),
            day: cell.time,
        };
        assert_eq!(s.append_block(bk, 0, &[]), AppendOutcome::Unsupported);
        assert_eq!(s.metrics().counter("dfs.append.rows").get(), 0);
    }

    #[test]
    #[should_panic(expected = "nest within partitions")]
    fn block_len_must_cover_partition_prefix() {
        let (bbox, time) = domain();
        let source = Arc::new(GenSource(NamGenerator::new(GeneratorConfig::default())));
        NodeStore::new(
            0,
            Partitioner::new(2, 3),
            2,
            bbox,
            time,
            DiskModel::free(),
            source,
            10,
        );
    }
}
