//! The columnar block-scan kernel and the decoded-frame cache.
//!
//! `NodeStore::scan_block` used to re-encode a geohash from `lat/lon` for
//! every observation × every requested resolution group and probe a
//! `HashSet` per pair — `O(rows × level_groups)` hashing on the hottest
//! loop in the system. This module replaces that with a three-stage kernel
//! (DESIGN.md §12):
//!
//! 1. **decode once** — a block's observations become a [`BlockFrame`]:
//!    flat column-major `f64` attribute columns plus one packed `u64`
//!    row-slot per row ([`stash_model::slot`]), produced with a *single*
//!    geohash encode per row at the finest resolution any caller asked for;
//! 2. **aggregate flat** — rows fold into a slot-indexed accumulator array
//!    (plain indexed adds, no per-row hashing) at the finest requested
//!    `(spatial, temporal)` resolution pair;
//! 3. **derive upward** — every coarser requested group is produced by
//!    merging the finest-level partials after truncating their slots
//!    (`Geohash::prefix` on the sub-tile digits, [`TimeBin::coarsened`] on
//!    the calendar bin), exploiting the summary monoid exactly like the
//!    paper's §V derivation — `O(rows + cells)` instead of
//!    `O(rows × level_groups)`.
//!
//! Because block contents are a pure function of the block key and the
//! block's *version* (sealed blocks never change; appendable blocks bump
//! their version on every append — see [`crate::store::BlockSource`]), a
//! decoded frame is a pure function of `(block key, version, encode
//! resolution)`. Frames are cached in a bytes-budgeted LRU ([`FrameCache`])
//! tagged with the version they decoded, and a lookup only serves a frame
//! whose tag matches the block's *current* version — a frame decoded before
//! an append can never answer a post-append query. Hot blocks skip both the
//! disk model and the decode stage entirely.
//!
//! Since PR 7 a frame *is* its storage form: one contiguous little-endian
//! word buffer — magic, header words, the packed slot column, then the
//! column-major `f64` bit columns (DESIGN.md §15). Sources that can stream
//! rows write straight into a [`FrameBuilder`] (no intermediate
//! `Vec<Observation>`), the cache accounts the buffer's exact byte length,
//! and [`BlockFrame::to_bytes`]/[`BlockFrame::from_bytes`] make the same
//! buffer the persistence form, with decode reduced to validate-and-view.

use crate::block::BlockKey;
use parking_lot::Mutex;
use stash_flat::{bytes_to_words, magic, words_to_bytes, FlatError};
use stash_geo::{Geohash, TemporalRes, TimeBin};
use stash_model::fx::{FxHashMap, FxHashSet};
use stash_model::slot::{self, INVALID_SLOT};
use stash_model::{
    AttrSketches, CellKey, CellSummary, FoldCtx, Observation, PreparedValue, SketchFoldMode,
    SketchSpec, SummaryStats,
};
use std::sync::Arc;

/// Default byte budget of a node's decoded-frame cache (`StashConfig::
/// frame_cache_bytes` overrides it cluster-side).
pub const DEFAULT_FRAME_CACHE_BYTES: usize = 64 << 20;

/// Largest slot space the kernel services with a dense accumulator array;
/// deeper resolution gaps (a res-12 query over res-3 blocks) fall back to a
/// hashed accumulator keyed by the same packed slots.
const FLAT_SLOT_LIMIT: usize = 1 << 15;

/// Magic word of a flat block frame buffer (DESIGN.md §15).
pub const FRAME_MAGIC: u64 = magic(b"STSHBLK1");

/// Fixed words before the slot column: magic, packed header, tile bits,
/// day index, version.
const FRAME_HEADER_WORDS: usize = 5;

/// One block in flat columnar form: a single contiguous word buffer.
///
/// ```text
/// word 0               magic "STSHBLK1"
/// word 1               n_rows | n_attrs<<32 | spatial_res<<48 | tile_len<<56
/// word 2               block tile geohash bits
/// word 3               block day index (days since epoch)
/// word 4               block version the rows were read at
/// words 5..5+n         packed row slots (one per row)
/// then n_attrs × n     f64 bit columns, column-major
/// ```
///
/// Attribute `a` of row `r` is `f64::from_bits(col(a)[r])`, so the
/// aggregation stage streams each column sequentially. `row_slots()[r]`
/// packs the row's geohash digits *below* the block tile (at
/// `spatial_res`) with its hour of day; rows that cannot be binned
/// (invalid coordinates, or an observation leaking outside the block's
/// tile/day contrary to the [`crate::store::BlockSource`] contract) carry
/// [`INVALID_SLOT`] and are skipped by aggregation. Fixed header fields
/// are mirrored into struct fields so hot paths never re-parse word 1.
pub struct BlockFrame {
    block: BlockKey,
    n_rows: usize,
    n_attrs: usize,
    /// Geohash length the rows were encoded at (≥ the block tile length).
    spatial_res: u8,
    /// Block version the rows were read at (0 for sealed blocks).
    version: u64,
    buf: Vec<u64>,
}

/// Result of [`BlockFrame::aggregate`]: one summary per wanted cell plus
/// how many of those cells were answered by upward derivation rather than
/// direct finest-level binning.
pub struct FrameAggregation {
    pub cells: Vec<(CellKey, CellSummary)>,
    pub derived_cells: u64,
    /// Cells whose *sketches* were derived by merging finest-group bundles
    /// instead of row folds (`SketchFoldMode::FinestThenMerge` only).
    pub sketch_merged_cells: u64,
}

/// The geohash length a frame must be encoded at to serve `wanted`:
/// the finest requested spatial resolution, floored at the tile length.
pub fn frame_spatial_res(tile_len: u8, wanted: &[CellKey]) -> u8 {
    wanted
        .iter()
        .map(|c| c.spatial_res())
        .max()
        .unwrap_or(tile_len)
        .max(tile_len)
}

/// Streaming writer for a [`BlockFrame`]: rows go straight into the flat
/// buffer, so a source that can enumerate `(lat, lon, time, values)` tuples
/// builds a ready-to-scan frame without materializing `Vec<Observation>`.
/// Binning logic is identical to [`BlockFrame::decode`] — decode *is* a
/// builder fed from row structs.
pub struct FrameBuilder {
    block: BlockKey,
    n_rows: usize,
    n_attrs: usize,
    spatial_res: u8,
    day_start: i64,
    suffix_mask: u64,
    row: usize,
    buf: Vec<u64>,
}

impl FrameBuilder {
    /// Start a frame for `block` holding exactly `n_rows` rows encoded at
    /// `spatial_res`. Slots start [`INVALID_SLOT`], values start zero.
    pub fn new(block: BlockKey, n_rows: usize, n_attrs: usize, spatial_res: u8) -> Self {
        let tile_len = block.geohash.len();
        debug_assert!(spatial_res >= tile_len, "frame coarser than its tile");
        let delta = (spatial_res - tile_len) as u32;
        let suffix_mask = if delta == 0 {
            0
        } else {
            (1u64 << (5 * delta)) - 1
        };
        let mut buf = vec![0u64; FRAME_HEADER_WORDS + n_rows * (1 + n_attrs)];
        buf[0] = FRAME_MAGIC;
        buf[1] = n_rows as u64
            | (n_attrs as u64) << 32
            | (spatial_res as u64) << 48
            | (tile_len as u64) << 56;
        buf[2] = block.geohash.bits();
        buf[3] = block.day.idx as u64;
        // buf[4] (version) stays 0 until `with_version`.
        buf[FRAME_HEADER_WORDS..FRAME_HEADER_WORDS + n_rows].fill(INVALID_SLOT);
        FrameBuilder {
            block,
            n_rows,
            n_attrs,
            spatial_res,
            day_start: block.day.start(),
            suffix_mask,
            row: 0,
            buf,
        }
    }

    /// Append one row. Rows that cannot be binned — wrong value count,
    /// time outside the block's day, invalid coordinates, or a position
    /// outside the block's tile — keep [`INVALID_SLOT`] (values zero) and
    /// are skipped by aggregation, exactly like the historical decode.
    ///
    /// # Panics
    /// Panics when pushed more than the declared `n_rows` times.
    pub fn push_row(&mut self, lat: f64, lon: f64, time: i64, values: &[f64]) {
        let r = self.row;
        assert!(r < self.n_rows, "frame builder overflow");
        self.row += 1;
        if values.len() != self.n_attrs {
            return; // malformed row: stays invalid, values stay zero
        }
        let col0 = FRAME_HEADER_WORDS + self.n_rows;
        for (a, &v) in values.iter().enumerate() {
            self.buf[col0 + a * self.n_rows + r] = v.to_bits();
        }
        let hour = (time - self.day_start).div_euclid(3600);
        if !(0..24).contains(&hour) {
            return;
        }
        let Ok(gh) = Geohash::encode(lat, lon, self.spatial_res) else {
            return;
        };
        let tile = self.block.geohash;
        if gh.prefix(tile.len()) != Some(tile) {
            return;
        }
        self.buf[FRAME_HEADER_WORDS + r] = slot::pack(gh.bits() & self.suffix_mask, hour as u32);
    }

    /// Seal the buffer into a frame.
    ///
    /// # Panics
    /// Panics unless exactly `n_rows` rows were pushed.
    pub fn finish(self) -> BlockFrame {
        assert_eq!(self.row, self.n_rows, "frame builder underfilled");
        BlockFrame {
            block: self.block,
            n_rows: self.n_rows,
            n_attrs: self.n_attrs,
            spatial_res: self.spatial_res,
            version: 0,
            buf: self.buf,
        }
    }
}

impl BlockFrame {
    /// Stage 1: decode a block's observations. One geohash encode per row.
    /// This is the oracle route; streaming sources use [`FrameBuilder`]
    /// directly and skip the row structs.
    pub fn decode(
        block: BlockKey,
        observations: &[Observation],
        n_attrs: usize,
        spatial_res: u8,
    ) -> BlockFrame {
        let mut b = FrameBuilder::new(block, observations.len(), n_attrs, spatial_res);
        for obs in observations {
            b.push_row(obs.lat, obs.lon, obs.time, &obs.values);
        }
        b.finish()
    }

    /// Tag the frame with the block version its rows were read at.
    /// Sealed (immutable) blocks stay at the default version 0.
    pub fn with_version(mut self, version: u64) -> Self {
        self.version = version;
        self.buf[4] = version;
        self
    }

    #[inline]
    pub fn version(&self) -> u64 {
        self.version
    }

    #[inline]
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    #[inline]
    pub fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    #[inline]
    pub fn block(&self) -> BlockKey {
        self.block
    }

    #[inline]
    pub fn spatial_res(&self) -> u8 {
        self.spatial_res
    }

    /// The packed slot column.
    #[inline]
    pub fn row_slots(&self) -> &[u64] {
        &self.buf[FRAME_HEADER_WORDS..FRAME_HEADER_WORDS + self.n_rows]
    }

    /// Attribute `a`'s value column as raw `f64` bit patterns.
    #[inline]
    fn col(&self, a: usize) -> &[u64] {
        let start = FRAME_HEADER_WORDS + (1 + a) * self.n_rows;
        &self.buf[start..start + self.n_rows]
    }

    /// Exact byte length of the flat buffer — what the cache budget and
    /// `frame_cache` byte accounting charge.
    pub fn buffer_bytes(&self) -> usize {
        self.buf.len() * 8
    }

    /// Footprint for the cache byte budget: the buffer's exact length
    /// (the fixed struct mirror is negligible and excluded by design, so
    /// accounting can be audited against buffer lengths alone).
    pub fn estimated_bytes(&self) -> usize {
        self.buffer_bytes()
    }

    /// The buffer in little-endian byte form — the storage/persistence
    /// encoding (exactly [`BlockFrame::buffer_bytes`] long).
    pub fn to_bytes(&self) -> Vec<u8> {
        words_to_bytes(&self.buf)
    }

    /// Validate-and-adopt a stored flat buffer. The inverse of
    /// [`BlockFrame::to_bytes`]; every header field, the buffer length,
    /// and every row slot are checked. Never panics on corrupt input.
    pub fn from_bytes(bytes: &[u8]) -> Result<BlockFrame, FlatError> {
        Self::from_words(bytes_to_words(bytes)?)
    }

    /// [`BlockFrame::from_bytes`] over an already word-aligned buffer.
    pub fn from_words(buf: Vec<u64>) -> Result<BlockFrame, FlatError> {
        if buf.len() < FRAME_HEADER_WORDS {
            return Err(FlatError::Truncated {
                needed: FRAME_HEADER_WORDS,
                remaining: buf.len(),
            });
        }
        if buf[0] != FRAME_MAGIC {
            return Err(FlatError::BadMagic {
                expected: FRAME_MAGIC,
                found: buf[0],
            });
        }
        let header = buf[1];
        let n_rows = (header & u32::MAX as u64) as usize;
        let n_attrs = (header >> 32 & 0xFFFF) as usize;
        let spatial_res = (header >> 48 & 0xFF) as u8;
        let tile_len = (header >> 56) as u8;
        let tile = Geohash::from_bits(buf[2], tile_len)
            .map_err(|_| FlatError::Corrupt("invalid block tile geohash"))?;
        if tile_len == 0 || spatial_res < tile_len {
            return Err(FlatError::Corrupt("frame resolution below its tile"));
        }
        let Some(expected) = n_rows
            .checked_mul(1 + n_attrs)
            .and_then(|n| n.checked_add(FRAME_HEADER_WORDS))
        else {
            return Err(FlatError::Corrupt("frame dimensions overflow"));
        };
        if buf.len() < expected {
            return Err(FlatError::Truncated {
                needed: expected - buf.len(),
                remaining: 0,
            });
        }
        if buf.len() > expected {
            return Err(FlatError::TrailingWords(buf.len() - expected));
        }
        let delta = (spatial_res - tile_len) as u32;
        let suffix_limit = if delta == 0 { 1 } else { 1u64 << (5 * delta) };
        for &rs in &buf[FRAME_HEADER_WORDS..FRAME_HEADER_WORDS + n_rows] {
            if rs == INVALID_SLOT {
                continue;
            }
            if slot::hour(rs) >= 24 || slot::suffix(rs) >= suffix_limit {
                return Err(FlatError::Corrupt("row slot out of range"));
            }
        }
        let block = BlockKey {
            geohash: tile,
            day: TimeBin {
                res: TemporalRes::Day,
                idx: buf[3] as i64,
            },
        };
        Ok(BlockFrame {
            block,
            n_rows,
            n_attrs,
            spatial_res,
            version: buf[4],
            buf,
        })
    }

    /// Stages 2+3: aggregate the frame into one summary per wanted cell
    /// (exact-only; see [`aggregate_with`](Self::aggregate_with)).
    pub fn aggregate(&self, wanted: &[CellKey]) -> FrameAggregation {
        self.aggregate_with(wanted, &SketchSpec::disabled())
    }

    /// Stages 2+3: aggregate the frame into one summary per wanted cell.
    ///
    /// Every wanted cell appears in the output (empty summary when no row
    /// matched — "computed, empty"), deduplicated, in first-occurrence
    /// order. Requires `spatial_res() ≥ frame_spatial_res(tile, wanted)`.
    ///
    /// When `sketch` enables sketch-valued Cells, every emitted summary
    /// additionally carries per-attribute sketch partials. Sketches are not
    /// derived from the slot accumulator (their per-slot state would dwarf
    /// the 40-byte exact partials); instead, after the exact stage maps
    /// slots to output cells, raw rows are folded into the output cells'
    /// bundles with a *batched, slot-major* column fold: rows are bucketed
    /// by finest slot, each slot's values are prepared once per
    /// `(row, attribute)` ([`FoldCtx::prepare`] — the `ln`, hash, and
    /// count-min column computations hoisted out of the per-group loop)
    /// and replayed into every covering cell back-to-back, quantile bucket
    /// counts apply as per-slot batches, and cells with identical slot
    /// coverage fold once and clone. Every cell sees its rows in ascending
    /// `(slot, row)` order; under the default
    /// [`SketchFoldMode::PerGroup`] the result is bit-identical to folding
    /// the raw observations into each cell directly whenever heavy-hitter
    /// candidate sets stay within their cap (always for finest cells,
    /// whose slot order *is* row order; every other sketch state is
    /// fold-order invariant) — pinned by the
    /// `frame_kernel_sketches_match_direct_fold` proptest.
    ///
    /// Under [`SketchFoldMode::FinestThenMerge`], rows are folded only into
    /// the finest group's cells and every coarser cell's bundles are
    /// derived by *merging* the finest bundles that cover it (row folds
    /// remain only for cells the finest group doesn't cover). Quantile and
    /// distinct state stays bit-identical (exact merge laws); heavy-hitter
    /// candidate sets may diverge from a raw fold beyond the candidate cap
    /// — see DESIGN.md §14 for the trade.
    pub fn aggregate_with(&self, wanted: &[CellKey], sketch: &SketchSpec) -> FrameAggregation {
        if wanted.is_empty() {
            return FrameAggregation {
                cells: Vec::new(),
                derived_cells: 0,
                sketch_merged_cells: 0,
            };
        }
        let tile = self.block.geohash;
        let tile_len = tile.len();

        // Distinct resolution groups, plus the output table (dedup by key).
        // Output bundles are stamped from one template: constructing an
        // empty sketch bundle recomputes spec-derived state (bucket
        // geometry, register sizing) every time, while a clone is a flat
        // buffer copy — measurable across hundreds of wanted cells
        // (guarded by the `figures --profile --smoke` fold shootout).
        let template = CellSummary::empty_with(self.n_attrs, sketch);
        let mut out: Vec<(CellKey, CellSummary)> = Vec::with_capacity(wanted.len());
        let mut index: FxHashMap<CellKey, usize> = FxHashMap::default();
        let mut group_set: FxHashSet<(u8, TemporalRes)> = FxHashSet::default();
        for &c in wanted {
            if let std::collections::hash_map::Entry::Vacant(v) = index.entry(c) {
                v.insert(out.len());
                out.push((c, template.clone()));
                group_set.insert((c.spatial_res(), c.temporal_res()));
            }
        }
        let mut groups: Vec<(u8, TemporalRes)> = group_set.into_iter().collect();
        groups.sort_unstable();

        let finest_s = frame_spatial_res(tile_len, wanted);
        let finest_t = groups.iter().map(|&(_, t)| t).max().expect("non-empty");
        assert!(
            self.spatial_res >= finest_s,
            "frame encoded at res {} cannot serve res {}",
            self.spatial_res,
            finest_s
        );
        let use_hour = finest_t == TemporalRes::Hour;
        let t_mult: u64 = if use_hour { 24 } else { 1 };
        let shift = 5 * (self.spatial_res - finest_s) as u32;
        let delta = finest_s - tile_len;

        // Stage 2: fold rows into the finest-level accumulator. Dense array
        // when the slot space is small (the common case), hashed otherwise.
        let n_rows = self.n_rows();
        let flat_slots = slot::spatial_slots(delta)
            .and_then(|s| s.checked_mul(t_mult as usize))
            .filter(|&n| n <= FLAT_SLOT_LIMIT);
        let combined = |rs: u64| -> u64 {
            let sfx = slot::suffix(rs) >> shift;
            if use_hour {
                sfx * 24 + slot::hour(rs) as u64
            } else {
                sfx
            }
        };
        let mut row_dense: Vec<u32> = Vec::with_capacity(n_rows);
        // `occupied`: (finest combined slot, dense index), ascending by slot
        // — the deterministic derivation order.
        let (dense_count, occupied): (usize, Vec<(u64, u32)>) = match flat_slots {
            Some(n_slots) => {
                let mut touched = vec![false; n_slots];
                for &rs in self.row_slots() {
                    if rs == INVALID_SLOT {
                        row_dense.push(u32::MAX);
                    } else {
                        let s = combined(rs);
                        touched[s as usize] = true;
                        row_dense.push(s as u32);
                    }
                }
                let occ = touched
                    .iter()
                    .enumerate()
                    .filter(|(_, &t)| t)
                    .map(|(s, _)| (s as u64, s as u32))
                    .collect();
                (n_slots, occ)
            }
            None => {
                let mut map: FxHashMap<u64, u32> = FxHashMap::default();
                let mut slots: Vec<u64> = Vec::new();
                for &rs in self.row_slots() {
                    if rs == INVALID_SLOT {
                        row_dense.push(u32::MAX);
                    } else {
                        let s = combined(rs);
                        let next = slots.len() as u32;
                        let d = *map.entry(s).or_insert_with(|| {
                            slots.push(s);
                            next
                        });
                        row_dense.push(d);
                    }
                }
                let mut occ: Vec<(u64, u32)> = slots
                    .iter()
                    .enumerate()
                    .map(|(d, &s)| (s, d as u32))
                    .collect();
                occ.sort_unstable();
                (slots.len(), occ)
            }
        };
        let mut acc = vec![SummaryStats::empty(); dense_count * self.n_attrs];
        for a in 0..self.n_attrs {
            let col = self.col(a);
            for (r, &d) in row_dense.iter().enumerate() {
                if d != u32::MAX {
                    acc[d as usize * self.n_attrs + a].push(f64::from_bits(col[r]));
                }
            }
        }

        // Stage 3: emit every group from the finest partials. The finest
        // group itself is the identity truncation, so one code path serves
        // both direct and derived cells; merges happen in ascending slot
        // order, which keeps the output deterministic.
        let mut derived_cells = 0u64;
        // Dense-slot → output-cell mapping for *every* group (row-major,
        // one row of `dense_count` per group), filled by the exact emission
        // loop and replayed by the sketch fold below.
        let mut slot_out_all: Vec<u32> = if sketch.enabled {
            vec![u32::MAX; groups.len() * dense_count]
        } else {
            Vec::new()
        };
        for (g, &(s_res, t_res)) in groups.iter().enumerate() {
            let is_finest = (s_res.max(tile_len), t_res) == (finest_s, finest_t);
            if !is_finest {
                derived_cells += out
                    .iter()
                    .filter(|(k, _)| (k.spatial_res(), k.temporal_res()) == (s_res, t_res))
                    .count() as u64;
            }
            let const_bin = if t_res == TemporalRes::Hour {
                None
            } else {
                Some(
                    self.block
                        .day
                        .coarsened(t_res)
                        .expect("day coarsens to any non-hour res"),
                )
            };
            // Consecutive slots usually truncate to the same cell; memoize
            // the last (discriminator → output index) to skip re-deriving.
            let mut last: Option<(u64, Option<usize>)> = None;
            for &(slot_f, dense) in &occupied {
                let (sfx_f, hr) = if use_hour {
                    (slot_f / 24, (slot_f % 24) as u32)
                } else {
                    (slot_f, 0)
                };
                let disc = if s_res >= tile_len {
                    let sfx = slot::truncate_suffix(sfx_f, finest_s, s_res);
                    if t_res == TemporalRes::Hour {
                        slot::pack(sfx, hr)
                    } else {
                        sfx << 5
                    }
                } else if t_res == TemporalRes::Hour {
                    hr as u64
                } else {
                    0
                };
                let out_idx = match last {
                    Some((d, idx)) if d == disc => idx,
                    _ => {
                        let gh = if s_res > tile_len {
                            let sfx = slot::truncate_suffix(sfx_f, finest_s, s_res);
                            let bits = (tile.bits() << (5 * (s_res - tile_len) as u32)) | sfx;
                            Geohash::from_bits(bits, s_res).expect("nested digits are valid")
                        } else {
                            tile.prefix(s_res).expect("1 <= s_res <= tile_len")
                        };
                        let bin = match const_bin {
                            Some(b) => b,
                            None => TimeBin {
                                res: TemporalRes::Hour,
                                idx: self.block.day.idx * 24 + hr as i64,
                            },
                        };
                        let idx = index.get(&CellKey::new(gh, bin)).copied();
                        last = Some((disc, idx));
                        idx
                    }
                };
                if let Some(i) = out_idx {
                    let base = dense as usize * self.n_attrs;
                    for (a, s) in acc[base..base + self.n_attrs].iter().enumerate() {
                        out[i].1.merge_attr(a, s);
                    }
                    if sketch.enabled {
                        slot_out_all[g * dense_count + dense as usize] = i as u32;
                    }
                }
            }
        }

        let mut sketch_merged_cells = 0u64;
        if sketch.enabled {
            let ctx = FoldCtx::new(sketch);
            let all_groups: Vec<usize> = (0..groups.len()).collect();
            // FinestThenMerge needs a group whose slot → cell mapping is
            // injective over the accumulator: the one at (max spatial res,
            // finest temporal res). Absent that group, fold per group.
            let g0 = match sketch.fold_mode {
                SketchFoldMode::PerGroup => None,
                SketchFoldMode::FinestThenMerge => {
                    let s0 = groups.iter().map(|&(s, _)| s).max().expect("non-empty");
                    groups.iter().position(|&g| g == (s0, finest_t))
                }
            };
            match g0 {
                None => {
                    self.sketch_fold_rows(
                        &ctx,
                        &mut out,
                        &row_dense,
                        &slot_out_all,
                        dense_count,
                        &all_groups,
                        None,
                    );
                }
                Some(g0) => {
                    // Row-fold the finest group only, then derive every
                    // other group's bundles by merging the finest bundles
                    // over the slots that feed each cell.
                    self.sketch_fold_rows(
                        &ctx,
                        &mut out,
                        &row_dense,
                        &slot_out_all,
                        dense_count,
                        &[g0],
                        None,
                    );
                    // A coarser cell is derivable only when every slot that
                    // feeds it also fed a wanted finest cell; otherwise the
                    // finest bundles don't cover its rows and the cell
                    // falls back to a row fold.
                    let mut uncovered: FxHashSet<u32> = FxHashSet::default();
                    let mut fallback_groups: Vec<usize> = Vec::new();
                    // One template bundle cloned per merge target — same
                    // arena trick as the output table above.
                    let empty_bundle = AttrSketches::new(sketch);
                    for g in 0..groups.len() {
                        if g == g0 {
                            continue;
                        }
                        // Target cell → finest source cells, in ascending
                        // slot order (deterministic merge order).
                        let mut targets: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
                        let mut bad: FxHashSet<u32> = FxHashSet::default();
                        for &(_, dense) in &occupied {
                            let oi = slot_out_all[g * dense_count + dense as usize];
                            if oi == u32::MAX {
                                continue;
                            }
                            let src = slot_out_all[g0 * dense_count + dense as usize];
                            if src == u32::MAX {
                                bad.insert(oi);
                            } else {
                                targets.entry(oi).or_default().push(src);
                            }
                        }
                        for (&oi, sources) in &targets {
                            if bad.contains(&oi) {
                                continue;
                            }
                            sketch_merged_cells += 1;
                            for a in 0..self.n_attrs {
                                let mut bundle = empty_bundle.clone();
                                for &src in sources {
                                    if let Some(sb) = out[src as usize].1.attr_sketches(a) {
                                        bundle.merge(sb);
                                    }
                                }
                                if let Some(t) = out[oi as usize].1.attr_sketches_mut(a) {
                                    *t = bundle;
                                }
                            }
                        }
                        if !bad.is_empty() {
                            uncovered.extend(bad);
                            fallback_groups.push(g);
                        }
                    }
                    if !uncovered.is_empty() {
                        self.sketch_fold_rows(
                            &ctx,
                            &mut out,
                            &row_dense,
                            &slot_out_all,
                            dense_count,
                            &fallback_groups,
                            Some(&uncovered),
                        );
                    }
                }
            }
        }
        FrameAggregation {
            cells: out,
            derived_cells,
            sketch_merged_cells,
        }
    }

    /// The batched sketch row fold behind [`aggregate_with`](Self::
    /// aggregate_with): fold every valid row into the bundles of the cells
    /// it maps to under `group_idxs` (restricted to `only_targets` when
    /// given).
    ///
    /// The fold is slot-major: rows are bucketed by finest slot once
    /// (stable counting sort), then each slot's rows are prepared once per
    /// attribute and replayed into every target cell back-to-back. Slot
    /// targets, value preparation (hash, count-min columns, quantile
    /// bucket key), and the per-bucket tally are all computed once per
    /// slot instead of once per `(row, group)` incidence. Each cell sees
    /// its rows in ascending `(slot, row)` order — for finest cells that
    /// *is* row order, and for coarser cells every sketch state except the
    /// heavy-hitter candidate list is fold-order invariant anyway; the
    /// candidate list matches a per-row fold bit-for-bit whenever a cell's
    /// distinct values stay within the candidate cap (the sketch crate's
    /// documented exactness regime). Quantile updates apply per
    /// `(cell, bucket)` in one batched pass, order-invariant by the
    /// quantile sketch's canonical compaction.
    #[allow(clippy::too_many_arguments)]
    fn sketch_fold_rows(
        &self,
        ctx: &FoldCtx,
        out: &mut [(CellKey, CellSummary)],
        row_dense: &[u32],
        slot_out_all: &[u32],
        dense_count: usize,
        group_idxs: &[usize],
        only_targets: Option<&FxHashSet<u32>>,
    ) {
        // starts[d]..starts[d+1] indexes slot d's rows, ascending row order.
        let mut starts: Vec<u32> = vec![0; dense_count + 1];
        for &d in row_dense {
            if d != u32::MAX {
                starts[d as usize + 1] += 1;
            }
        }
        for i in 1..starts.len() {
            starts[i] += starts[i - 1];
        }
        let mut cursor: Vec<u32> = starts[..dense_count].to_vec();
        let mut slot_rows: Vec<u32> = vec![0; starts[dense_count] as usize];
        for (r, &d) in row_dense.iter().enumerate() {
            if d != u32::MAX {
                let c = &mut cursor[d as usize];
                slot_rows[*c as usize] = r as u32;
                *c += 1;
            }
        }

        // Coverage dedup: two cells covering the *same* non-empty slots
        // receive the same fold sequence and therefore end with
        // bit-identical sketch state — fold one representative (lowest
        // out-index) per coverage class and clone its bundles into the
        // rest. Multi-level wanted sets hit this constantly: a tile at
        // Day and the same tile at Year cover the identical rows of a
        // one-day block. Only classes spanning at least `DEDUP_MIN_ROWS`
        // rows participate; below that, cloning costs more than folding.
        const DEDUP_MIN_ROWS: u32 = 64;
        let mut cov: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
        for &g in group_idxs {
            for d in 0..dense_count {
                if starts[d] == starts[d + 1] {
                    continue;
                }
                let oi = slot_out_all[g * dense_count + d];
                if oi == u32::MAX {
                    continue;
                }
                if only_targets.is_some_and(|t| !t.contains(&oi)) {
                    continue;
                }
                cov.entry(oi).or_default().push(d as u32);
            }
        }
        let mut clone_from: Vec<(u32, u32)> = Vec::new();
        {
            let mut items: Vec<(u32, Vec<u32>)> = cov.into_iter().collect();
            items.sort_unstable_by_key(|&(oi, _)| oi);
            let mut classes: FxHashMap<Vec<u32>, u32> = FxHashMap::default();
            for (oi, c) in items {
                let row_span: u32 = c
                    .iter()
                    .map(|&d| starts[d as usize + 1] - starts[d as usize])
                    .sum();
                if row_span < DEDUP_MIN_ROWS {
                    continue;
                }
                match classes.entry(c) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        clone_from.push((oi, *e.get()));
                    }
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(oi);
                    }
                }
            }
        }
        let cloned: FxHashSet<u32> = clone_from.iter().map(|&(dup, _)| dup).collect();

        let mut targets: Vec<u32> = Vec::with_capacity(group_idxs.len());
        let mut prepared: Vec<PreparedValue> = Vec::new();
        // Per-(slot, attr) quantile-bucket tally. Small slots dedup by
        // linear scan; big slots go through the hash map once and drain
        // into the same dense vec, so the per-target apply loop never
        // walks hash-table capacity.
        let mut tally: Vec<(i64, u64)> = Vec::new();
        let mut tally_map: FxHashMap<i64, u64> = FxHashMap::default();
        for d in 0..dense_count {
            let rows = &slot_rows[starts[d] as usize..starts[d + 1] as usize];
            if rows.is_empty() {
                continue;
            }
            targets.clear();
            for &g in group_idxs {
                let oi = slot_out_all[g * dense_count + d];
                if oi == u32::MAX {
                    continue;
                }
                if only_targets.is_some_and(|t| !t.contains(&oi)) {
                    continue;
                }
                if cloned.contains(&oi) {
                    continue;
                }
                targets.push(oi);
            }
            if targets.is_empty() {
                continue;
            }
            for a in 0..self.n_attrs {
                let col = self.col(a);
                prepared.clear();
                tally.clear();
                for &r in rows {
                    prepared.push(ctx.prepare(f64::from_bits(col[r as usize])));
                }
                if rows.len() <= 32 {
                    for pv in &prepared {
                        let key = pv.quantile_key();
                        match tally.iter_mut().find(|e| e.0 == key) {
                            Some(e) => e.1 += 1,
                            None => tally.push((key, 1)),
                        }
                    }
                } else {
                    tally_map.clear();
                    for pv in &prepared {
                        *tally_map.entry(pv.quantile_key()).or_insert(0) += 1;
                    }
                    tally.extend(tally_map.iter().map(|(&k, &c)| (k, c)));
                }
                for &oi in &targets {
                    if let Some(sk) = out[oi as usize].1.attr_sketches_mut(a) {
                        sk.push_prepared_batch(&prepared);
                        for &(key, count) in &tally {
                            sk.add_quantile_batch(key, count);
                        }
                    }
                }
            }
        }

        for &(dup, rep) in &clone_from {
            for a in 0..self.n_attrs {
                if let Some(src) = out[rep as usize].1.attr_sketches(a).cloned() {
                    if let Some(dst) = out[dup as usize].1.attr_sketches_mut(a) {
                        *dst = src;
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Decoded-frame cache
// ---------------------------------------------------------------------------

struct CacheEntry {
    frame: Arc<BlockFrame>,
    stamp: u64,
}

struct CacheInner {
    stamp: u64,
    bytes: usize,
    map: FxHashMap<BlockKey, CacheEntry>,
}

/// A bytes-budgeted LRU of decoded frames, shared by a node's scan workers.
///
/// Sibling of `stash-elastic`'s entry-count `LruCache` (same stamp-based
/// recency, same O(n) eviction scan — budgets are small enough that the
/// scan is noise next to the decode it avoids); it lives here because
/// `stash-elastic` depends on this crate. A `budget == 0` disables caching
/// — every lookup misses and inserts are dropped — which is the ablation
/// and equivalence-test configuration.
pub struct FrameCache {
    budget: usize,
    inner: Mutex<CacheInner>,
}

impl FrameCache {
    pub fn new(budget_bytes: usize) -> Self {
        FrameCache {
            budget: budget_bytes,
            inner: Mutex::new(CacheInner {
                stamp: 0,
                bytes: 0,
                map: FxHashMap::default(),
            }),
        }
    }

    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Resident bytes (the incrementally maintained counter).
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Audit: sum of the resident frames' actual flat-buffer lengths.
    /// Must always equal [`FrameCache::bytes`] — the accounting charges
    /// exact buffer lengths, nothing estimated. `figures --profile` asserts
    /// this invariant on live caches.
    pub fn buffer_bytes(&self) -> usize {
        self.inner
            .lock()
            .map
            .values()
            .map(|e| e.frame.buffer_bytes())
            .sum()
    }

    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup, refreshing recency. A cached frame only serves queries whose
    /// finest spatial resolution it covers — a coarser frame is a miss (the
    /// caller re-decodes finer and replaces it) — and only when its version
    /// tag matches the block's current `version`: a frame decoded before an
    /// append is a miss, never a wrong answer.
    pub fn lookup(
        &self,
        key: &BlockKey,
        min_spatial_res: u8,
        version: u64,
    ) -> Option<Arc<BlockFrame>> {
        let mut inner = self.inner.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        let e = inner.map.get_mut(key)?;
        if e.frame.spatial_res() < min_spatial_res || e.frame.version() != version {
            return None;
        }
        e.stamp = stamp;
        Some(Arc::clone(&e.frame))
    }

    /// Presence check without refreshing recency (used to decide whether
    /// the disk model must be charged before the parallel scan). Applies
    /// the same resolution and version gates as [`FrameCache::lookup`].
    pub fn contains(&self, key: &BlockKey, min_spatial_res: u8, version: u64) -> bool {
        self.inner.lock().map.get(key).is_some_and(|e| {
            e.frame.spatial_res() >= min_spatial_res && e.frame.version() == version
        })
    }

    /// Drop the frame cached for one block (eager invalidation after a
    /// local append; peers holding stale frames miss lazily through the
    /// version gate instead). Returns the bytes freed.
    pub fn remove(&self, key: &BlockKey) -> usize {
        let mut inner = self.inner.lock();
        match inner.map.remove(key) {
            Some(e) => {
                let bytes = e.frame.estimated_bytes();
                inner.bytes -= bytes;
                bytes
            }
            None => 0,
        }
    }

    /// Insert (replacing any previous frame for the block) and evict
    /// least-recently-used frames until the budget holds. Returns the bytes
    /// evicted. Frames larger than the whole budget are not cached.
    pub fn insert(&self, frame: Arc<BlockFrame>) -> usize {
        let bytes = frame.estimated_bytes();
        if bytes > self.budget {
            return 0;
        }
        let mut inner = self.inner.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        let key = frame.block();
        if let Some(old) = inner.map.insert(key, CacheEntry { frame, stamp }) {
            inner.bytes -= old.frame.estimated_bytes();
        }
        inner.bytes += bytes;
        let mut evicted = 0usize;
        while inner.bytes > self.budget {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("over budget implies non-empty");
            let gone = inner.map.remove(&victim).expect("victim present");
            let gone_bytes = gone.frame.estimated_bytes();
            inner.bytes -= gone_bytes;
            evicted += gone_bytes;
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use std::str::FromStr;

    fn block(gh: &str, y: i64, m: u32, d: u32) -> BlockKey {
        BlockKey {
            geohash: Geohash::from_str(gh).unwrap(),
            day: TimeBin::containing(TemporalRes::Day, epoch_seconds(y, m, d, 0, 0, 0)),
        }
    }

    /// Observations spread over the tile "9xj" on 2015-02-02.
    fn rows() -> Vec<Observation> {
        let b = block("9xj", 2015, 2, 2);
        let bbox = b.geohash.bbox();
        let t0 = b.day.start();
        (0..200)
            .map(|i| {
                let f = (i as f64 + 0.5) / 200.0;
                Observation::new(
                    bbox.min_lat + f * (bbox.max_lat - bbox.min_lat),
                    bbox.min_lon + (1.0 - f) * (bbox.max_lon - bbox.min_lon),
                    t0 + (i as i64 * 431) % 86_400,
                    vec![i as f64, -(i as f64), 0.5 * i as f64, 1.0],
                )
            })
            .collect()
    }

    /// Reference: the seed's direct per-level binning.
    fn direct(
        bk: BlockKey,
        observations: &[Observation],
        wanted: &[CellKey],
        n_attrs: usize,
    ) -> Vec<(CellKey, CellSummary)> {
        let _ = bk;
        let mut out: std::collections::BTreeMap<CellKey, CellSummary> = wanted
            .iter()
            .map(|&c| (c, CellSummary::empty(n_attrs)))
            .collect();
        for obs in observations {
            let mut seen: FxHashSet<(u8, TemporalRes)> = FxHashSet::default();
            for &c in wanted {
                let lv = (c.spatial_res(), c.temporal_res());
                if !seen.insert(lv) {
                    continue;
                }
                let Some(key) = obs.cell_key(lv.0, lv.1) else {
                    continue;
                };
                if let Some(s) = out.get_mut(&key) {
                    s.push_row(&obs.values);
                }
            }
        }
        out.into_iter().collect()
    }

    #[test]
    fn kernel_matches_direct_binning_across_levels() {
        let bk = block("9xj", 2015, 2, 2);
        let obs = rows();
        let day = bk.day;
        // Wanted cells at four resolution pairs: coarser-than-tile, the
        // tile, finer, and hour-resolution.
        let mut wanted: Vec<CellKey> = vec![
            CellKey::new(bk.geohash.prefix(1).unwrap(), day),
            CellKey::new(bk.geohash, day),
        ];
        wanted.extend(bk.geohash.children().unwrap().map(|g| CellKey::new(g, day)));
        for h in 0..24 {
            wanted.push(CellKey::new(
                bk.geohash,
                TimeBin {
                    res: TemporalRes::Hour,
                    idx: day.idx * 24 + h,
                },
            ));
        }
        let frame = BlockFrame::decode(bk, &obs, 4, frame_spatial_res(3, &wanted));
        let agg = frame.aggregate(&wanted);
        let mut got = agg.cells.clone();
        got.sort_by_key(|(k, _)| *k);
        let want = direct(bk, &obs, &wanted, 4);
        assert_eq!(got.len(), want.len());
        for ((gk, gs), (wk, ws)) in got.iter().zip(&want) {
            assert_eq!(gk, wk);
            assert_eq!(gs, ws, "summary mismatch at {gk}");
        }
        // Groups coarser than (finest_s, finest_t) were derived, not binned.
        assert!(agg.derived_cells > 0);
    }

    #[test]
    fn finest_then_merge_counts_derived_and_falls_back_when_uncovered() {
        let bk = block("9xj", 2015, 2, 2);
        let obs = rows();
        let day = bk.day;
        let mut ftm = SketchSpec::standard();
        ftm.fold_mode = SketchFoldMode::FinestThenMerge;

        // Full coverage: the tile cell plus every child — each coarse cell's
        // slots all feed wanted finest cells, so its sketches are derived by
        // merge, bit-identically to the default fold (quantized values).
        let mut wanted: Vec<CellKey> = vec![CellKey::new(bk.geohash, day)];
        wanted.extend(bk.geohash.children().unwrap().map(|g| CellKey::new(g, day)));
        let frame = BlockFrame::decode(bk, &obs, 4, frame_spatial_res(3, &wanted));
        let merged = frame.aggregate_with(&wanted, &ftm);
        assert_eq!(merged.sketch_merged_cells, 1, "the tile cell derives");
        let base = frame.aggregate_with(&wanted, &SketchSpec::standard());
        assert_eq!(base.sketch_merged_cells, 0, "PerGroup never derives");
        let sort = |mut v: Vec<(CellKey, CellSummary)>| {
            v.sort_by_key(|(k, _)| *k);
            v
        };
        assert_eq!(sort(merged.cells), sort(base.cells));

        // Partial coverage: drop one child from the wanted set. The tile
        // cell still aggregates that child's rows, but the finest bundles
        // no longer cover them — it must fall back to a row fold (still
        // matching the default output) and not count as derived.
        let mut partial: Vec<CellKey> = vec![CellKey::new(bk.geohash, day)];
        let children: Vec<CellKey> = bk
            .geohash
            .children()
            .unwrap()
            .map(|g| CellKey::new(g, day))
            .filter(|k| frame.aggregate(&[*k]).cells[0].1.count() > 0)
            .collect();
        assert!(children.len() > 1, "need at least two occupied children");
        partial.extend(&children[1..]);
        let merged = frame.aggregate_with(&partial, &ftm);
        assert_eq!(
            merged.sketch_merged_cells, 0,
            "uncovered cell must not derive"
        );
        let base = frame.aggregate_with(&partial, &SketchSpec::standard());
        assert_eq!(sort(merged.cells), sort(base.cells));
    }

    #[test]
    fn hashed_fallback_matches_flat() {
        // A resolution gap deep enough to overflow the dense accumulator
        // (res 7 over a res-3 tile with hours: 32^4 * 24 slots).
        let bk = block("9xj", 2015, 2, 2);
        let obs = rows();
        let wanted: Vec<CellKey> = obs
            .iter()
            .take(32)
            .filter_map(|o| o.cell_key(7, TemporalRes::Hour))
            .collect();
        let frame = BlockFrame::decode(bk, &obs, 4, 7);
        let got = {
            let mut v = frame.aggregate(&wanted).cells;
            v.sort_by_key(|(k, _)| *k);
            v
        };
        let want = direct(bk, &obs, &wanted, 4);
        assert_eq!(got, want);
    }

    #[test]
    fn rows_outside_tile_or_day_are_invalid() {
        let bk = block("9xj", 2015, 2, 2);
        let mut obs = rows();
        obs.push(Observation::new(0.0, 0.0, bk.day.start(), vec![1.0; 4])); // wrong tile
        obs.push(Observation::new(
            40.0,
            -105.0,
            bk.day.start() - 1, // previous day
            vec![1.0; 4],
        ));
        obs.push(Observation::new(95.0, 0.0, bk.day.start(), vec![1.0; 4])); // bad coords
        let frame = BlockFrame::decode(bk, &obs, 4, 5);
        let invalid = frame
            .row_slots()
            .iter()
            .filter(|&&s| s == INVALID_SLOT)
            .count();
        assert_eq!(invalid, 3);
        // They contribute to no cell, including coarse ones.
        let wanted = [CellKey::new(bk.geohash.prefix(1).unwrap(), bk.day)];
        let agg = frame.aggregate(&wanted);
        assert_eq!(agg.cells[0].1.count(), rows().len() as u64);
    }

    #[test]
    fn cache_evicts_by_recency_within_budget() {
        let obs = rows();
        let frames: Vec<Arc<BlockFrame>> = ["9xj", "9xk", "9xm"]
            .iter()
            .map(|g| Arc::new(BlockFrame::decode(block(g, 2015, 2, 2), &obs, 4, 4)))
            .collect();
        let per = frames[0].estimated_bytes();
        let cache = FrameCache::new(per * 2 + per / 2); // fits two
        assert_eq!(cache.insert(Arc::clone(&frames[0])), 0);
        assert_eq!(cache.insert(Arc::clone(&frames[1])), 0);
        // Touch frame 0 so frame 1 is the LRU victim.
        assert!(cache.lookup(&frames[0].block(), 4, 0).is_some());
        let evicted = cache.insert(Arc::clone(&frames[2]));
        assert_eq!(evicted, per);
        assert!(cache.contains(&frames[0].block(), 4, 0));
        assert!(!cache.contains(&frames[1].block(), 4, 0));
        assert!(cache.contains(&frames[2].block(), 4, 0));
        assert_eq!(cache.len(), 2);
        assert!(cache.bytes() <= cache.budget());
    }

    #[test]
    fn coarser_cached_frame_is_a_miss_for_finer_queries() {
        let obs = rows();
        let bk = block("9xj", 2015, 2, 2);
        let cache = FrameCache::new(DEFAULT_FRAME_CACHE_BYTES);
        cache.insert(Arc::new(BlockFrame::decode(bk, &obs, 4, 4)));
        assert!(cache.lookup(&bk, 4, 0).is_some());
        assert!(cache.lookup(&bk, 6, 0).is_none());
        // Re-decoding finer replaces the entry, and then serves both.
        cache.insert(Arc::new(BlockFrame::decode(bk, &obs, 4, 6)));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&bk, 6, 0).is_some());
        assert!(cache.lookup(&bk, 4, 0).is_some());
    }

    #[test]
    fn zero_budget_disables_caching() {
        let obs = rows();
        let bk = block("9xj", 2015, 2, 2);
        let cache = FrameCache::new(0);
        assert_eq!(
            cache.insert(Arc::new(BlockFrame::decode(bk, &obs, 4, 4))),
            0
        );
        assert!(cache.is_empty());
        assert!(cache.lookup(&bk, 3, 0).is_none());
    }

    #[test]
    fn stale_version_is_a_miss_until_reinserted() {
        let obs = rows();
        let bk = block("9xj", 2015, 2, 2);
        let cache = FrameCache::new(DEFAULT_FRAME_CACHE_BYTES);
        cache.insert(Arc::new(BlockFrame::decode(bk, &obs, 4, 4).with_version(3)));
        assert!(cache.lookup(&bk, 4, 3).is_some());
        // The block advanced: the cached frame no longer serves.
        assert!(cache.lookup(&bk, 4, 4).is_none());
        assert!(!cache.contains(&bk, 4, 4));
        // Re-decoding at the new version replaces the entry.
        cache.insert(Arc::new(BlockFrame::decode(bk, &obs, 4, 4).with_version(4)));
        assert_eq!(cache.len(), 1);
        assert!(cache.lookup(&bk, 4, 4).is_some());
        assert!(cache.lookup(&bk, 4, 3).is_none());
    }

    #[test]
    fn flat_bytes_roundtrip_preserves_frame_and_aggregation() {
        let bk = block("9xj", 2015, 2, 2);
        let mut obs = rows();
        // Include rows the decoder marks invalid, plus awkward values.
        obs.push(Observation::new(0.0, 0.0, bk.day.start(), vec![1.0; 4]));
        obs[0].values = vec![f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0];
        let frame = BlockFrame::decode(bk, &obs, 4, 5).with_version(7);
        let bytes = frame.to_bytes();
        assert_eq!(bytes.len(), frame.buffer_bytes());
        let back = BlockFrame::from_bytes(&bytes).unwrap();
        assert_eq!(back.block(), frame.block());
        assert_eq!(back.n_rows(), frame.n_rows());
        assert_eq!(back.n_attrs(), frame.n_attrs());
        assert_eq!(back.spatial_res(), frame.spatial_res());
        assert_eq!(back.version(), 7);
        assert_eq!(back.row_slots(), frame.row_slots());
        assert_eq!(back.to_bytes(), bytes);
        let wanted = [
            CellKey::new(bk.geohash.prefix(1).unwrap(), bk.day),
            CellKey::new(bk.geohash, bk.day),
        ];
        let a = frame.aggregate(&wanted);
        let b = back.aggregate(&wanted);
        // Debug form: NaN summaries (attr 0) must survive too, and NaN != NaN.
        assert_eq!(format!("{:?}", a.cells), format!("{:?}", b.cells));
    }

    #[test]
    fn corrupt_frame_bytes_error_without_panicking() {
        let bk = block("9xj", 2015, 2, 2);
        let frame = BlockFrame::decode(bk, &rows(), 4, 5);
        let bytes = frame.to_bytes();
        // Every 8-aligned truncation fails cleanly.
        for cut in (0..bytes.len()).step_by(8) {
            assert!(BlockFrame::from_bytes(&bytes[..cut]).is_err());
        }
        // Unaligned length.
        assert!(BlockFrame::from_bytes(&bytes[..9]).is_err());
        // Wrong magic.
        let mut b = bytes.clone();
        b[0] ^= 0xFF;
        assert!(BlockFrame::from_bytes(&b).is_err());
        // Trailing garbage.
        let mut b = bytes.clone();
        b.extend_from_slice(&[0u8; 8]);
        assert!(matches!(
            BlockFrame::from_bytes(&b),
            Err(FlatError::TrailingWords(1))
        ));
        // Row-slot hour out of range (raw word: suffix 0, hour 24).
        let mut words = bytes_to_words(&bytes).unwrap();
        words[FRAME_HEADER_WORDS] = 24;
        assert!(BlockFrame::from_words(words).is_err());
        // Suffix outside the tile→res slot space (raw word: suffix 2^10).
        let mut words = bytes_to_words(&bytes).unwrap();
        words[FRAME_HEADER_WORDS] = 1u64 << (5 * 2 + 5);
        assert!(BlockFrame::from_words(words).is_err());
        // Declared row count larger than the buffer.
        let mut words = bytes_to_words(&bytes).unwrap();
        words[1] = (words[1] & !(u32::MAX as u64)) | u32::MAX as u64;
        assert!(BlockFrame::from_words(words).is_err());
        // Spatial res below the tile length.
        let mut words = bytes_to_words(&bytes).unwrap();
        words[1] = (words[1] & !(0xFFu64 << 48)) | 2u64 << 48;
        assert!(BlockFrame::from_words(words).is_err());
    }

    #[test]
    fn builder_matches_decode_bit_for_bit() {
        let bk = block("9xj", 2015, 2, 2);
        let obs = rows();
        let via_decode = BlockFrame::decode(bk, &obs, 4, 5).with_version(2);
        let mut b = FrameBuilder::new(bk, obs.len(), 4, 5);
        for o in &obs {
            b.push_row(o.lat, o.lon, o.time, &o.values);
        }
        let via_builder = b.finish().with_version(2);
        assert_eq!(via_decode.to_bytes(), via_builder.to_bytes());
    }

    #[test]
    fn cache_byte_accounting_matches_buffer_lengths() {
        let obs = rows();
        let cache = FrameCache::new(DEFAULT_FRAME_CACHE_BYTES);
        for g in ["9xj", "9xk", "9xm"] {
            cache.insert(Arc::new(BlockFrame::decode(
                block(g, 2015, 2, 2),
                &obs,
                4,
                4,
            )));
        }
        assert_eq!(cache.bytes(), cache.buffer_bytes());
        cache.remove(&block("9xk", 2015, 2, 2));
        assert_eq!(cache.bytes(), cache.buffer_bytes());
    }

    #[test]
    fn remove_frees_bytes_and_misses_afterwards() {
        let obs = rows();
        let bk = block("9xj", 2015, 2, 2);
        let cache = FrameCache::new(DEFAULT_FRAME_CACHE_BYTES);
        let frame = Arc::new(BlockFrame::decode(bk, &obs, 4, 4));
        let per = frame.estimated_bytes();
        cache.insert(frame);
        assert_eq!(cache.bytes(), per);
        assert_eq!(cache.remove(&bk), per);
        assert_eq!(cache.bytes(), 0);
        assert!(cache.lookup(&bk, 4, 0).is_none());
        // Removing an absent key is a no-op.
        assert_eq!(cache.remove(&bk), 0);
    }
}
