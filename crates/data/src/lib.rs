//! # stash-data
//!
//! Synthetic data and workloads for the STASH reproduction.
//!
//! The paper evaluates on ~1.1 TB of NOAA North American Mesoscale (NAM)
//! forecast observations (§VIII-B) and drives them with query streams that
//! mimic visual exploration: panning, iterative dicing, zooming, and
//! hotspotted bursts. Neither the dataset nor the user traces are published,
//! so this crate provides faithful synthetic stand-ins (see DESIGN.md §2):
//!
//! * [`generator::NamGenerator`] — a *deterministic* gridded-atmosphere
//!   generator: any (geohash block, day) pair expands to the same
//!   observations on every call, which lets the simulated DFS materialize
//!   blocks lazily without storing terabytes.
//! * [`workload`] — the paper's query-stream constructions, parameterized
//!   exactly as §VIII describes them (query size classes, pan fractions,
//!   dicing factors, zoom resolution walks, throughput and hotspot mixes).
//! * [`stream`] — a seeded streaming source replaying the tail of the
//!   dataset as ordered append batches for live-ingest workloads.

pub mod generator;
pub mod stream;
pub mod workload;

pub use generator::{GeneratorConfig, NamGenerator};
pub use stream::{StreamBatch, StreamConfig, StreamSource};
pub use workload::{QuerySizeClass, WorkloadConfig, WorkloadGen};
