//! Visual-exploration query workloads (paper §VIII).
//!
//! Every experiment in the paper's evaluation drives the system with a
//! particular query stream. This module constructs those streams exactly as
//! §VIII describes them:
//!
//! * **Query size classes** — country, state, county, city rectangles with
//!   latitudinal/longitudinal extents (16°,32°), (4°,8°), (0.6°,1.2°),
//!   (0.2°,0.5°), all over a fixed one-day `Query_Time` (2015-02-02).
//! * **Iterative dicing** (Fig. 7a/7b) — 5 queries shrinking the polygon by
//!   20 % of its area per step (descending) or the reverse (ascending).
//! * **Panning** (Fig. 7c) — a state rectangle moved by 10/20/25 % of its
//!   extent in each of the 8 compass directions.
//! * **Zooming** (Fig. 7d/7e) — drill-down walks spatial resolution 2→6
//!   over a state area; roll-up is the reverse.
//! * **Throughput** (Fig. 6b) — 100 random rectangles, each panned 100
//!   times by 10 % in random directions (10 000 requests with strong
//!   spatiotemporal locality).
//! * **Hotspot** (Fig. 6d) — 1 000 county requests panning around a single
//!   point, emulating sudden shared interest in one region.

use rand::Rng;
use rand_distr::{Distribution, Zipf};
use serde::{Deserialize, Serialize};
use stash_geo::{BBox, TemporalRes, TimeRange};
use stash_model::AggQuery;

/// The paper's four query size classes (§VIII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuerySizeClass {
    Country,
    State,
    County,
    City,
}

impl QuerySizeClass {
    pub const ALL: [QuerySizeClass; 4] = [
        QuerySizeClass::Country,
        QuerySizeClass::State,
        QuerySizeClass::County,
        QuerySizeClass::City,
    ];

    /// `(latitudinal, longitudinal)` extent in degrees.
    pub fn extent(self) -> (f64, f64) {
        match self {
            QuerySizeClass::Country => (16.0, 32.0),
            QuerySizeClass::State => (4.0, 8.0),
            QuerySizeClass::County => (0.6, 1.2),
            QuerySizeClass::City => (0.2, 0.5),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            QuerySizeClass::Country => "country",
            QuerySizeClass::State => "state",
            QuerySizeClass::County => "county",
            QuerySizeClass::City => "city",
        }
    }
}

impl std::fmt::Display for QuerySizeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The 8 compass directions used by panning workloads, as `(dy, dx)` unit
/// steps (N, NE, E, SE, S, SW, W, NW).
pub const PAN_DIRECTIONS: [(f64, f64); 8] = [
    (1.0, 0.0),
    (1.0, 1.0),
    (0.0, 1.0),
    (-1.0, 1.0),
    (-1.0, 0.0),
    (-1.0, -1.0),
    (0.0, -1.0),
    (1.0, -1.0),
];

/// Workload parameters shared by all streams.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Spatial domain queries are drawn from. Defaults to the NAM coverage
    /// area (continental North America).
    pub domain: BBox,
    /// The fixed `Query_Time` (paper: the day 2015-02-02).
    pub time: TimeRange,
    /// Requested spatial resolution of result Cells. The paper uses 6 on a
    /// 120-node cluster; the laptop-scale default is 4 (see DESIGN.md §7 on
    /// scale substitution) — same shape, ~1000× fewer cells per query.
    pub spatial_res: u8,
    /// Requested temporal resolution (paper: 'Day of the Month').
    pub temporal_res: TemporalRes,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            domain: BBox {
                min_lat: 20.0,
                max_lat: 55.0,
                min_lon: -130.0,
                max_lon: -60.0,
            },
            time: TimeRange::whole_day(2015, 2, 2),
            spatial_res: 4,
            temporal_res: TemporalRes::Day,
        }
    }
}

/// Workload generator: owns the config, borrows the caller's RNG so streams
/// are reproducible from a seed.
#[derive(Debug, Clone)]
pub struct WorkloadGen {
    config: WorkloadConfig,
}

impl WorkloadGen {
    pub fn new(config: WorkloadConfig) -> Self {
        WorkloadGen { config }
    }

    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// A random rectangle of the given size class inside the domain.
    pub fn random_bbox<R: Rng + ?Sized>(&self, rng: &mut R, class: QuerySizeClass) -> BBox {
        let (dlat, dlon) = class.extent();
        let d = &self.config.domain;
        let lat_room = (d.lat_extent() - dlat).max(0.0);
        let lon_room = (d.lon_extent() - dlon).max(0.0);
        let lat = d.min_lat + rng.gen::<f64>() * lat_room;
        let lon = d.min_lon + rng.gen::<f64>() * lon_room;
        BBox::from_corner_extent(lat, lon, dlat.min(d.lat_extent()), dlon.min(d.lon_extent()))
    }

    /// A random query of the given size class.
    pub fn random_query<R: Rng + ?Sized>(&self, rng: &mut R, class: QuerySizeClass) -> AggQuery {
        self.make_query(self.random_bbox(rng, class))
    }

    /// Wrap a bbox with the configured time/resolutions.
    pub fn make_query(&self, bbox: BBox) -> AggQuery {
        AggQuery::new(
            bbox,
            self.config.time,
            self.config.spatial_res,
            self.config.temporal_res,
        )
    }

    // -- Fig. 7a/7b: iterative dicing ---------------------------------------

    /// Descending iterative dicing: `steps` queries starting at `start`
    /// and shrinking the area by `area_step` (paper: 0.20) each step, so
    /// every query is nested in the previous one.
    pub fn dice_descending(&self, start: BBox, steps: usize, area_step: f64) -> Vec<AggQuery> {
        let mut out = Vec::with_capacity(steps);
        let mut q = self.make_query(start);
        for _ in 0..steps {
            out.push(q.clone());
            q = q.diced(1.0 - area_step);
        }
        out
    }

    /// Ascending iterative dicing: "the previous set of queries executed in
    /// reverse order" (§VIII-D1).
    pub fn dice_ascending(&self, start: BBox, steps: usize, area_step: f64) -> Vec<AggQuery> {
        let mut v = self.dice_descending(start, steps, area_step);
        v.reverse();
        v
    }

    // -- Fig. 7c: panning ----------------------------------------------------

    /// Panning stream: the starting query followed by one query panned by
    /// `frac` of the extent in each of the 8 compass directions (all panned
    /// from the *start* rectangle, as in Fig. 7c's per-direction bars).
    pub fn pan_star(&self, start: BBox, frac: f64) -> Vec<AggQuery> {
        let q0 = self.make_query(start);
        let mut out = Vec::with_capacity(9);
        out.push(q0.clone());
        for (dy, dx) in PAN_DIRECTIONS {
            out.push(q0.panned(frac, dy, dx));
        }
        out
    }

    /// A random walk of pans: each query moves `frac` of the extent in a
    /// random compass direction from the previous one.
    pub fn pan_walk<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        start: BBox,
        frac: f64,
        steps: usize,
    ) -> Vec<AggQuery> {
        let mut out = Vec::with_capacity(steps + 1);
        let mut q = self.make_query(start);
        out.push(q.clone());
        for _ in 0..steps {
            let (dy, dx) = PAN_DIRECTIONS[rng.gen_range(0..PAN_DIRECTIONS.len())];
            q = q.panned(frac, dy, dx);
            out.push(q.clone());
        }
        out
    }

    // -- Slicing (paper §V-B's OLAP list) --------------------------------------

    /// Temporal slicing: the same spatial view over `n` consecutive day
    /// slices starting at the configured `Query_Time`. "Slicing is the act
    /// of picking a subset by choosing a single dimension" — here the
    /// analyst steps through days with the map fixed, the temporal
    /// analogue of panning.
    pub fn slice_days(&self, bbox: BBox, n: usize) -> Vec<AggQuery> {
        let day_secs = 86_400;
        (0..n as i64)
            .map(|i| {
                let time = TimeRange::new(
                    self.config.time.start + i * day_secs,
                    self.config.time.end + i * day_secs,
                )
                .expect("shifted range stays ordered");
                AggQuery::new(
                    bbox,
                    time,
                    self.config.spatial_res,
                    self.config.temporal_res,
                )
            })
            .collect()
    }

    // -- Fig. 7d/7e: zooming -------------------------------------------------

    /// Drill-down: the same bbox queried at increasing spatial resolutions
    /// `from_res..=to_res` (paper: 2→6, a ~32× cell increase per step).
    pub fn drill_down(&self, bbox: BBox, from_res: u8, to_res: u8) -> Vec<AggQuery> {
        assert!(from_res <= to_res, "drill-down must increase resolution");
        (from_res..=to_res)
            .map(|r| AggQuery::new(bbox, self.config.time, r, self.config.temporal_res))
            .collect()
    }

    /// Roll-up: the reverse of drill-down (paper §VIII-D2).
    pub fn roll_up(&self, bbox: BBox, from_res: u8, to_res: u8) -> Vec<AggQuery> {
        assert!(from_res >= to_res, "roll-up must decrease resolution");
        (to_res..=from_res)
            .rev()
            .map(|r| AggQuery::new(bbox, self.config.time, r, self.config.temporal_res))
            .collect()
    }

    // -- Fig. 6b: throughput -------------------------------------------------

    /// The throughput mix: `n_rects` random rectangles of `class`, each
    /// panned `pans_per_rect` times by `frac` in random directions
    /// (paper: 100 rects × 100 pans of 10 % ⇒ 10 000 requests).
    pub fn throughput_mix<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: QuerySizeClass,
        n_rects: usize,
        pans_per_rect: usize,
        frac: f64,
    ) -> Vec<AggQuery> {
        let mut out = Vec::with_capacity(n_rects * (pans_per_rect + 1));
        for _ in 0..n_rects {
            let start = self.random_bbox(rng, class);
            out.extend(self.pan_walk(rng, start, frac, pans_per_rect));
        }
        out
    }

    // -- Fig. 6d: hotspot ----------------------------------------------------

    /// The hotspot burst: `n` requests of `class` panning *around* a single
    /// random starting point — "sudden interest over a single region from
    /// multiple users" (§VIII-E). Each request is the start rectangle
    /// panned by 10% in a random direction (not a drifting walk), so the
    /// whole burst stays inside one bounded neighborhood: the workload
    /// that actually creates a stationary hotspot.
    pub fn hotspot_burst<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: QuerySizeClass,
        n: usize,
    ) -> Vec<AggQuery> {
        let start = self.random_bbox(rng, class);
        self.hotspot_burst_at(rng, start, n)
    }

    /// [`hotspot_burst`](Self::hotspot_burst) with a caller-chosen region —
    /// experiments pin the region inside a single DHT partition so exactly
    /// one node hotspots, as in the paper's single-region burst.
    pub fn hotspot_burst_at<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        start: BBox,
        n: usize,
    ) -> Vec<AggQuery> {
        let start = self.make_query(start);
        (0..n)
            .map(|_| {
                let (dy, dx) = PAN_DIRECTIONS[rng.gen_range(0..PAN_DIRECTIONS.len())];
                start.panned(0.10, dy, dx)
            })
            .collect()
    }

    /// A Zipf-skewed mix over `n_regions` candidate rectangles: region rank
    /// r is drawn with probability ∝ 1/rᶿ. Models the paper's §V-A claim
    /// that region popularity follows Zipf's law; used by ablation benches.
    pub fn zipf_mix<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        class: QuerySizeClass,
        n_regions: usize,
        theta: f64,
        n_queries: usize,
    ) -> Vec<AggQuery> {
        assert!(n_regions >= 1);
        let regions: Vec<BBox> = (0..n_regions)
            .map(|_| self.random_bbox(rng, class))
            .collect();
        let zipf = Zipf::new(n_regions as u64, theta).expect("valid zipf parameters");
        (0..n_queries)
            .map(|_| {
                let rank = zipf.sample(rng) as usize - 1; // Zipf samples 1..=n
                self.make_query(regions[rank.min(n_regions - 1)])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gen() -> WorkloadGen {
        WorkloadGen::new(WorkloadConfig::default())
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn size_classes_match_paper() {
        assert_eq!(QuerySizeClass::Country.extent(), (16.0, 32.0));
        assert_eq!(QuerySizeClass::State.extent(), (4.0, 8.0));
        assert_eq!(QuerySizeClass::County.extent(), (0.6, 1.2));
        assert_eq!(QuerySizeClass::City.extent(), (0.2, 0.5));
    }

    #[test]
    fn random_bbox_in_domain_with_exact_extent() {
        let g = gen();
        let mut r = rng();
        for class in QuerySizeClass::ALL {
            for _ in 0..50 {
                let b = g.random_bbox(&mut r, class);
                let (dlat, dlon) = class.extent();
                assert!((b.lat_extent() - dlat).abs() < 1e-9, "{class}: {b}");
                assert!((b.lon_extent() - dlon).abs() < 1e-9, "{class}: {b}");
                assert!(g.config.domain.encloses(&b), "{class}: {b} escapes domain");
            }
        }
    }

    #[test]
    fn dicing_is_nested_and_shrinking() {
        let g = gen();
        let start = g.random_bbox(&mut rng(), QuerySizeClass::Country);
        let desc = g.dice_descending(start, 5, 0.20);
        assert_eq!(desc.len(), 5);
        for w in desc.windows(2) {
            assert!(w[0].bbox.encloses(&w[1].bbox), "not nested");
            let ratio = w[1].bbox.area_deg2() / w[0].bbox.area_deg2();
            assert!((ratio - 0.8).abs() < 1e-9, "area ratio {ratio}");
        }
        let asc = g.dice_ascending(start, 5, 0.20);
        assert_eq!(asc.first().unwrap().bbox, desc.last().unwrap().bbox);
        assert_eq!(asc.last().unwrap().bbox, start);
        // Paper: final descending query has extent ~(5.2°, 10.4°) from 16x32
        // after 4 steps of 20% area reduction... our geometric series gives
        // 16 * 0.8^2 = 10.2 lat after 4 steps on extent = sqrt(area) basis.
        let last = desc.last().unwrap().bbox;
        assert!(last.lat_extent() < 16.0 && last.lat_extent() > 4.0);
    }

    #[test]
    fn pan_star_has_nine_queries_with_overlap() {
        let g = gen();
        let start = g.random_bbox(&mut rng(), QuerySizeClass::State);
        for frac in [0.10, 0.20, 0.25] {
            let qs = g.pan_star(start, frac);
            assert_eq!(qs.len(), 9);
            for q in &qs[1..] {
                let overlap = qs[0].bbox.overlap_fraction(&q.bbox);
                // Panning by frac leaves roughly (1-frac)^2..(1-frac) overlap.
                assert!(
                    overlap > (1.0 - frac) * (1.0 - frac) - 1e-6,
                    "overlap {overlap}"
                );
                assert!(overlap < 1.0);
            }
        }
    }

    #[test]
    fn pan_walk_preserves_extent_and_moves() {
        let g = gen();
        let mut r = rng();
        let start = g.random_bbox(&mut r, QuerySizeClass::County);
        let qs = g.pan_walk(&mut r, start, 0.10, 20);
        assert_eq!(qs.len(), 21);
        for w in qs.windows(2) {
            assert!((w[0].bbox.area_deg2() - w[1].bbox.area_deg2()).abs() < 1e-9);
            assert!(w[0].bbox.overlap_fraction(&w[1].bbox) > 0.5);
        }
    }

    #[test]
    fn slice_days_steps_through_time() {
        let g = gen();
        let b = g.random_bbox(&mut rng(), QuerySizeClass::County);
        let slices = g.slice_days(b, 5);
        assert_eq!(slices.len(), 5);
        for (i, q) in slices.iter().enumerate() {
            assert_eq!(q.bbox, b, "spatial view is fixed");
            assert_eq!(
                q.time.start,
                g.config().time.start + i as i64 * 86_400,
                "slice {i} advances one day"
            );
            assert_eq!(q.time.duration_secs(), g.config().time.duration_secs());
        }
        // Consecutive slices are disjoint in time (distinct cells).
        for w in slices.windows(2) {
            assert!(!w[0].time.intersects(&w[1].time));
        }
    }

    #[test]
    fn zoom_walks() {
        let g = gen();
        let b = g.random_bbox(&mut rng(), QuerySizeClass::State);
        let down = g.drill_down(b, 2, 6);
        assert_eq!(
            down.iter().map(|q| q.spatial_res).collect::<Vec<_>>(),
            [2, 3, 4, 5, 6]
        );
        let up = g.roll_up(b, 6, 2);
        assert_eq!(
            up.iter().map(|q| q.spatial_res).collect::<Vec<_>>(),
            [6, 5, 4, 3, 2]
        );
        for q in down.iter().chain(&up) {
            assert_eq!(q.bbox, b);
        }
    }

    #[test]
    #[should_panic(expected = "must increase")]
    fn drill_down_direction_checked() {
        gen().drill_down(BBox::GLOBE, 6, 2);
    }

    #[test]
    fn throughput_mix_size_and_locality() {
        let g = gen();
        let mut r = rng();
        let qs = g.throughput_mix(&mut r, QuerySizeClass::County, 10, 10, 0.10);
        assert_eq!(qs.len(), 10 * 11);
        // Queries within one rect's walk overlap heavily.
        let first_walk = &qs[0..11];
        for w in first_walk.windows(2) {
            assert!(w[0].bbox.overlap_fraction(&w[1].bbox) > 0.5);
        }
    }

    #[test]
    fn hotspot_burst_is_localized() {
        let g = gen();
        let mut r = rng();
        let qs = g.hotspot_burst(&mut r, QuerySizeClass::County, 200);
        assert_eq!(qs.len(), 200);
        // All queries stay within one pan step of the shared neighborhood.
        let c0 = qs[0].bbox.center();
        for q in &qs {
            let c = q.bbox.center();
            assert!((c.0 - c0.0).abs() <= 2.0 * 0.1 * 0.6 + 1e-9);
            assert!((c.1 - c0.1).abs() <= 2.0 * 0.1 * 1.2 + 1e-9);
        }
        // And only 8 distinct rectangles exist (the 8 pan directions).
        let distinct: std::collections::HashSet<String> = qs
            .iter()
            .map(|q| format!("{:.6},{:.6}", q.bbox.min_lat, q.bbox.min_lon))
            .collect();
        assert!(distinct.len() <= 8);
    }

    #[test]
    fn zipf_mix_skews_toward_head() {
        let g = gen();
        let mut r = rng();
        let qs = g.zipf_mix(&mut r, QuerySizeClass::County, 20, 1.2, 2000);
        assert_eq!(qs.len(), 2000);
        let mut counts = std::collections::HashMap::new();
        for q in &qs {
            *counts
                .entry(format!("{:.4},{:.4}", q.bbox.min_lat, q.bbox.min_lon))
                .or_insert(0usize) += 1;
        }
        let max = *counts.values().max().unwrap();
        // The most popular region should dominate a uniform share.
        assert!(max > 2000 / 20 * 2, "zipf head not heavy enough: {max}");
    }

    #[test]
    fn streams_are_reproducible_from_seed() {
        let g = gen();
        let a = g.throughput_mix(
            &mut SmallRng::seed_from_u64(9),
            QuerySizeClass::City,
            5,
            5,
            0.1,
        );
        let b = g.throughput_mix(
            &mut SmallRng::seed_from_u64(9),
            QuerySizeClass::City,
            5,
            5,
            0.1,
        );
        assert_eq!(a, b);
    }
}
