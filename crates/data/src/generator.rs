//! Deterministic synthetic NAM-like observation generator.
//!
//! Produces gridded atmospheric observations with the same four attributes
//! the paper aggregates (temperature, relative humidity, precipitation,
//! snow depth) and — importantly for a *simulated* 1.1 TB store — is a pure
//! function of `(seed, block geohash, day)`: the backing store can expand
//! any block on demand and two reads of the same block always agree.
//!
//! Field structure is chosen so aggregates look like weather rather than
//! white noise: temperature follows a latitude gradient plus seasonal and
//! diurnal cycles; humidity anticorrelates with temperature; precipitation
//! is sparse and bursty; snow appears only at cold temperatures. The
//! *experiments* only depend on data volume per cell, but realistic fields
//! make the examples' heatmaps meaningful.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use stash_geo::{Geohash, TimeBin};
use stash_model::{AttrSchema, Observation};

/// Tuning knobs for the synthetic dataset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Master seed; every block derives its RNG from this.
    pub seed: u64,
    /// Mean observations per square degree per day. NAM's 12 km grid with
    /// several collections per day is ~50–100 obs/deg²/day; benches default
    /// lower to keep laptop runs quick while preserving per-cell work.
    pub obs_per_deg2_per_day: f64,
    /// Hard cap on observations generated for one (block, day) pair, so a
    /// misconfigured density cannot explode memory.
    pub max_obs_per_block: usize,
    /// When positive, every sampled value is rounded to the nearest multiple
    /// of this quantum. With a power-of-two quantum (e.g. `1/64`) and the
    /// generator's bounded field magnitudes, summary sums and sums of
    /// squares stay exactly representable in `f64`, so folding the same
    /// rows in *any* grouping or order produces bit-identical aggregates —
    /// the property the live-ingest equivalence tests rely on. `0.0`
    /// (default) disables quantization.
    pub value_quantum: f64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0x57A5_4001,
            obs_per_deg2_per_day: 48.0,
            max_obs_per_block: 250_000,
            value_quantum: 0.0,
        }
    }
}

/// The generator: stateless, cheap to clone, safe to share across threads.
#[derive(Debug, Clone)]
pub struct NamGenerator {
    config: GeneratorConfig,
    schema: AttrSchema,
}

impl NamGenerator {
    pub fn new(config: GeneratorConfig) -> Self {
        NamGenerator {
            config,
            schema: AttrSchema::nam(),
        }
    }

    /// The NAM attribute schema (temperature, relative_humidity,
    /// precipitation, snow_depth).
    pub fn schema(&self) -> &AttrSchema {
        &self.schema
    }

    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Number of observations a block of the given geohash produces per day.
    /// Deterministic (no RNG) so planners can size fetches in advance.
    pub fn obs_per_day(&self, block: Geohash) -> usize {
        let area = block.bbox().area_deg2();
        ((area * self.config.obs_per_deg2_per_day).round() as usize)
            .clamp(1, self.config.max_obs_per_block)
    }

    /// Generate all observations for one geohash block over one UTC day bin.
    ///
    /// Deterministic: the RNG is seeded from `(seed, block bits, day index)`.
    /// This is [`NamGenerator::scan_rows`] collected into row structs.
    pub fn block_for_day(&self, block: Geohash, day: TimeBin) -> Vec<Observation> {
        let mut out = Vec::with_capacity(self.obs_per_day(block));
        self.scan_rows(block, day, |lat, lon, time, values| {
            out.push(Observation::new(lat, lon, time, values.to_vec()));
        });
        out
    }

    /// Stream one block-day's rows in generation order without
    /// materializing `Vec<Observation>`: the callback receives
    /// `(lat, lon, time, values)`, with `values` living in a buffer reused
    /// across rows. Exactly [`NamGenerator::obs_per_day`] rows are emitted,
    /// bit-identical to [`NamGenerator::block_for_day`] — flat-frame
    /// sources feed a `FrameBuilder` from this stream and skip the row
    /// structs entirely.
    pub fn scan_rows(
        &self,
        block: Geohash,
        day: TimeBin,
        mut f: impl FnMut(f64, f64, i64, &[f64]),
    ) {
        assert_eq!(
            day.res,
            stash_geo::TemporalRes::Day,
            "blocks are generated per day bin"
        );
        let n = self.obs_per_day(block);
        let mut rng = self.block_rng(block, day.idx);
        let b = block.bbox();
        let day_start = day.start();
        let mut values = Vec::with_capacity(self.schema.len());
        for _ in 0..n {
            let lat = b.min_lat + rng.gen::<f64>() * b.lat_extent();
            // Keep strictly inside the half-open box.
            let lat = lat.min(b.max_lat - 1e-9);
            let lon = (b.min_lon + rng.gen::<f64>() * b.lon_extent()).min(b.max_lon - 1e-9);
            let secs = rng.gen_range(0..86_400i64);
            let time = day_start + secs;
            self.sample_fields_into(lat, lon, day.idx, secs, &mut rng, &mut values);
            f(lat, lon, time, &values);
        }
    }

    /// Estimated serialized bytes of one (block, day): drives the simulated
    /// disk read cost.
    pub fn block_bytes(&self, block: Geohash) -> usize {
        // lat + lon + time + 4 attrs = 56 bytes per row.
        self.obs_per_day(block) * 56
    }

    /// Row index at which a block-day splits into the boot-resident base
    /// prefix and the streamed tail (live-ingest workloads). Deterministic,
    /// so every node agrees on the split; `fraction` is clamped to `[0, 1]`.
    pub fn split_point(&self, block: Geohash, fraction: f64) -> usize {
        let n = self.obs_per_day(block);
        ((n as f64) * fraction.clamp(0.0, 1.0)).floor() as usize
    }

    /// The base prefix of a block-day: the rows already on disk when a live
    /// cluster boots. `base_rows(b, d, f) ++ tail_rows(b, d, f)` is exactly
    /// [`NamGenerator::block_for_day`]`(b, d)`.
    pub fn base_rows(&self, block: Geohash, day: TimeBin, fraction: f64) -> Vec<Observation> {
        let mut rows = self.block_for_day(block, day);
        rows.truncate(self.split_point(block, fraction));
        rows
    }

    /// The streamed tail of a block-day: the rows a live-ingest stream
    /// appends after boot, in generation order.
    pub fn tail_rows(&self, block: Geohash, day: TimeBin, fraction: f64) -> Vec<Observation> {
        let rows = self.block_for_day(block, day);
        rows[self.split_point(block, fraction)..].to_vec()
    }

    fn block_rng(&self, block: Geohash, day_idx: i64) -> SmallRng {
        // SplitMix-style combination of the three seeds.
        let mut x = self
            .config
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(block.bits())
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            .wrapping_add(block.len() as u64)
            .wrapping_add((day_idx as u64).wrapping_mul(0x94D0_49BB_1331_11EB));
        x ^= x >> 29;
        x = x.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        x ^= x >> 32;
        SmallRng::seed_from_u64(x)
    }

    /// Sample the four NAM attributes at a location and time into a reused
    /// buffer (cleared first). RNG call sequence identical to the historical
    /// allocating version, so generated datasets are unchanged.
    fn sample_fields_into(
        &self,
        lat: f64,
        lon: f64,
        day_idx: i64,
        secs: i64,
        rng: &mut SmallRng,
        out: &mut Vec<f64>,
    ) {
        // Seasonal phase: day-of-year scaled to [0, 2π); northern-hemisphere
        // summer peaks mid-year.
        let doy = day_idx.rem_euclid(365) as f64;
        let season = (doy / 365.0 * std::f64::consts::TAU - std::f64::consts::FRAC_PI_2).sin();
        // Diurnal phase peaks mid-afternoon.
        let hour = secs as f64 / 3600.0;
        let diurnal = ((hour - 15.0) / 24.0 * std::f64::consts::TAU).cos();
        // Temperature (°C): latitude gradient + season + diurnal + local noise.
        let base = 28.0 - 0.55 * lat.abs();
        let hemisphere = if lat >= 0.0 { 1.0 } else { -1.0 };
        let temp = base
            + 12.0 * season * hemisphere
            + 4.0 * diurnal
            + 2.0 * (lon / 30.0).sin()
            + rng.gen_range(-3.0..3.0);
        // Relative humidity (%): anticorrelated with temperature.
        let rh = (85.0 - 0.8 * temp + rng.gen_range(-10.0..10.0)).clamp(2.0, 100.0);
        // Precipitation (mm): sparse, bursty.
        let precip = if rng.gen::<f64>() < 0.12 {
            rng.gen_range(0.1f64..25.0) * (rh / 100.0)
        } else {
            0.0
        };
        // Snow depth (cm): only below freezing.
        let snow = if temp < 0.0 {
            (-temp * rng.gen_range(0.2..1.5)).min(120.0)
        } else {
            0.0
        };
        out.clear();
        out.extend_from_slice(&[temp, rh, precip, snow]);
        let q = self.config.value_quantum;
        if q > 0.0 {
            for v in out.iter_mut() {
                *v = (*v / q).round() * q;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::time::epoch_seconds;
    use stash_geo::TemporalRes;
    use std::str::FromStr;

    fn day() -> TimeBin {
        TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0))
    }

    fn generator() -> NamGenerator {
        NamGenerator::new(GeneratorConfig {
            seed: 7,
            obs_per_deg2_per_day: 100.0,
            max_obs_per_block: 10_000,
            value_quantum: 0.0,
        })
    }

    #[test]
    fn deterministic_per_block() {
        let g = generator();
        let block = Geohash::from_str("9q8").unwrap();
        let a = g.block_for_day(block, day());
        let b = g.block_for_day(block, day());
        assert_eq!(a, b);
        assert_eq!(a.len(), g.obs_per_day(block));
        assert!(!a.is_empty());
    }

    #[test]
    fn different_blocks_and_days_differ() {
        let g = generator();
        let b1 = Geohash::from_str("9q8").unwrap();
        let b2 = Geohash::from_str("9q9").unwrap();
        assert_ne!(g.block_for_day(b1, day()), g.block_for_day(b2, day()));
        assert_ne!(
            g.block_for_day(b1, day()),
            g.block_for_day(b1, day().next())
        );
    }

    #[test]
    fn observations_stay_inside_block() {
        let g = generator();
        let block = Geohash::from_str("dr5").unwrap();
        let bb = block.bbox();
        let d = day();
        for obs in g.block_for_day(block, d) {
            assert!(
                bb.contains(obs.lat, obs.lon),
                "({},{}) outside {bb}",
                obs.lat,
                obs.lon
            );
            assert!(d.range().contains(obs.time));
            assert!(obs.matches_schema(g.schema()));
        }
    }

    #[test]
    fn fields_are_physically_plausible() {
        let g = generator();
        // Tropical block vs arctic block, same July day.
        let july = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 7, 15, 0, 0, 0));
        let tropics = Geohash::encode(5.0, -60.0, 3).unwrap();
        let arctic = Geohash::encode(72.0, -60.0, 3).unwrap();
        let mean_temp =
            |obs: &[Observation]| obs.iter().map(|o| o.values[0]).sum::<f64>() / obs.len() as f64;
        let t_tropics = mean_temp(&g.block_for_day(tropics, july));
        let t_arctic = mean_temp(&g.block_for_day(arctic, july));
        assert!(
            t_tropics > t_arctic + 10.0,
            "tropics {t_tropics} should be much warmer than arctic {t_arctic}"
        );
        // Snow only in cold places; humidity within physical bounds.
        for o in g.block_for_day(tropics, july) {
            assert!(
                (0.0..=100.0).contains(&o.values[1]),
                "humidity {}",
                o.values[1]
            );
            assert!(o.values[2] >= 0.0);
            assert!(o.values[3] >= 0.0);
        }
    }

    #[test]
    fn density_scales_with_area() {
        let g = generator();
        let coarse = Geohash::from_str("9q").unwrap();
        let fine = Geohash::from_str("9q8").unwrap();
        assert!(g.obs_per_day(coarse) >= g.obs_per_day(fine));
        // Cap respected.
        let tiny_cap = NamGenerator::new(GeneratorConfig {
            max_obs_per_block: 5,
            ..g.config().clone()
        });
        assert_eq!(tiny_cap.obs_per_day(coarse), 5);
    }

    #[test]
    fn block_bytes_tracks_rows() {
        let g = generator();
        let block = Geohash::from_str("9q8").unwrap();
        assert_eq!(g.block_bytes(block), g.obs_per_day(block) * 56);
    }

    #[test]
    #[should_panic(expected = "per day bin")]
    fn non_day_bin_rejected() {
        let g = generator();
        let month = TimeBin::containing(TemporalRes::Month, 0);
        g.block_for_day(Geohash::from_str("9q8").unwrap(), month);
    }

    #[test]
    fn base_and_tail_partition_the_block() {
        let g = generator();
        let block = Geohash::from_str("9q8").unwrap();
        for fraction in [0.0, 0.37, 0.5, 1.0] {
            let mut joined = g.base_rows(block, day(), fraction);
            joined.extend(g.tail_rows(block, day(), fraction));
            assert_eq!(joined, g.block_for_day(block, day()), "fraction {fraction}");
        }
        assert!(g.base_rows(block, day(), 0.0).is_empty());
        assert!(g.tail_rows(block, day(), 1.0).is_empty());
    }

    #[test]
    fn quantized_values_sum_exactly_in_any_order() {
        let g = NamGenerator::new(GeneratorConfig {
            value_quantum: 1.0 / 64.0,
            ..generator().config().clone()
        });
        let block = Geohash::from_str("9q8").unwrap();
        let rows = g.block_for_day(block, day());
        // Every value is an exact multiple of the quantum...
        for o in &rows {
            for &v in &o.values {
                assert_eq!((v * 64.0).round() / 64.0, v, "non-dyadic value {v}");
            }
        }
        // ...so folding a column forwards, backwards, or split in the middle
        // yields the same bits (the live-ingest equivalence property).
        let col: Vec<f64> = rows.iter().map(|o| o.values[0]).collect();
        let forward: f64 = col.iter().sum();
        let backward: f64 = col.iter().rev().sum();
        let split = col.len() / 3;
        let chunked = col[..split].iter().sum::<f64>() + col[split..].iter().sum::<f64>();
        assert_eq!(forward.to_bits(), backward.to_bits());
        assert_eq!(forward.to_bits(), chunked.to_bits());
    }
}
