//! Seeded streaming source for live-ingest workloads.
//!
//! A [`StreamSource`] replays the tail of the deterministic NAM dataset as
//! an ordered sequence of append batches: each participating `(block, day)`
//! keeps its first `base_fraction` of rows as the boot-resident base (see
//! [`NamGenerator::base_rows`]) and streams the remainder in chunks of
//! `batch_rows`, round-robin across blocks so every partition owner sees
//! load concurrently. Within one block batches arrive in generation order,
//! which is what lets a live cluster's final block contents converge to the
//! cold full dataset byte for byte.

use crate::generator::NamGenerator;
use stash_geo::{Geohash, TimeBin};
use stash_model::Observation;

/// Shape of a live-ingest stream.
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Fraction of each block-day resident at boot; the rest is streamed.
    pub base_fraction: f64,
    /// Rows per append batch.
    pub batch_rows: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            base_fraction: 0.5,
            batch_rows: 256,
        }
    }
}

/// One append batch: a contiguous chunk of a block-day's tail.
#[derive(Debug, Clone)]
pub struct StreamBatch {
    pub block: Geohash,
    pub day: TimeBin,
    /// Index of `rows[0]` within the block-day's full row sequence.
    pub start_row: usize,
    pub rows: Vec<Observation>,
    /// This is the block-day's final batch: once applied, the block is
    /// sealed — its contents will never change again. Continuous rollups
    /// advance their watermark on seal (DESIGN.md §17).
    pub last: bool,
}

/// Deterministic replay of the dataset tail over a fixed set of blocks.
pub struct StreamSource {
    generator: NamGenerator,
    blocks: Vec<(Geohash, TimeBin)>,
    config: StreamConfig,
}

impl StreamSource {
    /// `blocks` are the block-days participating in the stream; blocks not
    /// listed are assumed fully resident. Panics if `batch_rows == 0`.
    pub fn new(
        generator: NamGenerator,
        blocks: Vec<(Geohash, TimeBin)>,
        config: StreamConfig,
    ) -> Self {
        assert!(config.batch_rows > 0, "batch_rows must be positive");
        StreamSource {
            generator,
            blocks,
            config,
        }
    }

    pub fn generator(&self) -> &NamGenerator {
        &self.generator
    }

    pub fn config(&self) -> StreamConfig {
        self.config
    }

    pub fn blocks(&self) -> &[(Geohash, TimeBin)] {
        &self.blocks
    }

    /// Total rows the stream will emit across all blocks.
    pub fn total_rows(&self) -> usize {
        self.blocks
            .iter()
            .map(|&(b, _)| {
                self.generator.obs_per_day(b)
                    - self.generator.split_point(b, self.config.base_fraction)
            })
            .sum()
    }

    /// The batches, round-robin across blocks, in-order within each block.
    pub fn batches(&self) -> StreamIter {
        let tails: Vec<(Geohash, TimeBin, usize, Vec<Observation>)> = self
            .blocks
            .iter()
            .map(|&(b, d)| {
                (
                    b,
                    d,
                    self.generator.split_point(b, self.config.base_fraction),
                    self.generator.tail_rows(b, d, self.config.base_fraction),
                )
            })
            .collect();
        StreamIter {
            offsets: vec![0; tails.len()],
            tails,
            batch_rows: self.config.batch_rows,
            cursor: 0,
        }
    }
}

/// Iterator over a stream's batches (see [`StreamSource::batches`]).
pub struct StreamIter {
    tails: Vec<(Geohash, TimeBin, usize, Vec<Observation>)>,
    offsets: Vec<usize>,
    batch_rows: usize,
    cursor: usize,
}

impl Iterator for StreamIter {
    type Item = StreamBatch;

    fn next(&mut self) -> Option<StreamBatch> {
        for _ in 0..self.tails.len() {
            let i = self.cursor;
            self.cursor = (self.cursor + 1) % self.tails.len().max(1);
            let (block, day, split, tail) = &self.tails[i];
            let off = self.offsets[i];
            if off >= tail.len() {
                continue;
            }
            let end = (off + self.batch_rows).min(tail.len());
            self.offsets[i] = end;
            return Some(StreamBatch {
                block: *block,
                day: *day,
                start_row: split + off,
                rows: tail[off..end].to_vec(),
                last: end == tail.len(),
            });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::GeneratorConfig;
    use stash_geo::time::epoch_seconds;
    use stash_geo::TemporalRes;
    use std::collections::HashMap;
    use std::str::FromStr;

    fn source(base_fraction: f64, batch_rows: usize) -> StreamSource {
        let generator = NamGenerator::new(GeneratorConfig {
            seed: 11,
            obs_per_deg2_per_day: 40.0,
            max_obs_per_block: 5_000,
            value_quantum: 0.0,
        });
        let day = TimeBin::containing(TemporalRes::Day, epoch_seconds(2015, 2, 2, 0, 0, 0));
        let blocks = ["9q8", "9q9", "9qb"]
            .iter()
            .map(|g| (Geohash::from_str(g).unwrap(), day))
            .collect();
        StreamSource::new(
            generator,
            blocks,
            StreamConfig {
                base_fraction,
                batch_rows,
            },
        )
    }

    #[test]
    fn replaying_the_stream_reconstructs_every_block() {
        let src = source(0.4, 97);
        let mut rebuilt: HashMap<Geohash, Vec<Observation>> = src
            .blocks()
            .iter()
            .map(|&(b, d)| (b, src.generator().base_rows(b, d, 0.4)))
            .collect();
        let mut emitted = 0usize;
        for batch in src.batches() {
            let rows = rebuilt.get_mut(&batch.block).unwrap();
            assert_eq!(batch.start_row, rows.len(), "batch out of order");
            emitted += batch.rows.len();
            rows.extend(batch.rows);
        }
        assert_eq!(emitted, src.total_rows());
        for &(b, d) in src.blocks() {
            assert_eq!(rebuilt[&b], src.generator().block_for_day(b, d));
        }
    }

    #[test]
    fn batches_interleave_across_blocks() {
        let src = source(0.0, 50);
        let first: Vec<Geohash> = src.batches().take(3).map(|b| b.block).collect();
        let distinct: std::collections::HashSet<_> = first.iter().collect();
        assert_eq!(distinct.len(), 3, "first round must touch every block");
    }

    #[test]
    fn last_marks_exactly_the_final_batch_of_each_block() {
        let src = source(0.4, 97);
        let mut sealed: HashMap<Geohash, usize> = HashMap::new();
        for batch in src.batches() {
            assert!(
                !sealed.contains_key(&batch.block),
                "no batches after the sealing one"
            );
            if batch.last {
                *sealed.entry(batch.block).or_default() += 1;
            }
        }
        assert_eq!(sealed.len(), src.blocks().len());
        assert!(sealed.values().all(|&n| n == 1));
    }

    #[test]
    fn full_base_fraction_streams_nothing() {
        let src = source(1.0, 50);
        assert_eq!(src.total_rows(), 0);
        assert_eq!(src.batches().count(), 0);
    }
}
