//! Flat word-oriented encoding primitives (DESIGN.md §15).
//!
//! Every flat buffer in the workspace — block frames on the storage side,
//! partials fragments on the wire side — is a sequence of little-endian
//! `u64` words: a magic word, fixed header words, then payload columns.
//! Working in whole words keeps every field naturally aligned, makes
//! lengths exact (`8 × words` bytes, no padding ambiguity), and lets a
//! decoded view reinterpret `f64` columns with `from_bits` instead of
//! parsing. This crate holds the shared plumbing: a bounds-checked reader,
//! an appending writer, byte↔word conversion, and the error type every
//! decoder returns instead of panicking.
//!
//! Versioning rule: the magic word encodes both the format and its version
//! (e.g. `FLATBLK1`); any layout change mints a new magic, and decoders
//! reject unknown magics with [`FlatError::BadMagic`] rather than guessing.

use std::fmt;

/// Decode failure for a flat buffer. Decoders return these for any
/// malformed input — truncated, oversized, wrong magic, or fields that
/// violate the format's invariants. They never panic on untrusted bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatError {
    /// The buffer ended before a required word.
    Truncated {
        /// Words the decoder tried to read past the end.
        needed: usize,
        /// Words actually remaining.
        remaining: usize,
    },
    /// The magic word did not match the expected format tag.
    BadMagic {
        /// The magic the decoder expected.
        expected: u64,
        /// The magic actually found.
        found: u64,
    },
    /// The buffer byte length is not a whole number of words.
    UnalignedLength(usize),
    /// The buffer was longer than its header describes.
    TrailingWords(usize),
    /// A header field is outside its valid range or inconsistent with the
    /// payload that follows.
    Corrupt(&'static str),
}

impl fmt::Display for FlatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatError::Truncated { needed, remaining } => write!(
                f,
                "flat buffer truncated: needed {needed} more word(s), {remaining} remaining"
            ),
            FlatError::BadMagic { expected, found } => write!(
                f,
                "flat magic mismatch: expected {expected:#018x}, found {found:#018x}"
            ),
            FlatError::UnalignedLength(n) => {
                write!(f, "flat buffer length {n} is not a multiple of 8 bytes")
            }
            FlatError::TrailingWords(n) => {
                write!(f, "flat buffer has {n} trailing word(s) past its payload")
            }
            FlatError::Corrupt(what) => write!(f, "flat buffer corrupt: {what}"),
        }
    }
}

impl std::error::Error for FlatError {}

/// Build a magic word from an 8-byte ASCII tag, e.g. `magic(b"FLATBLK1")`.
/// Tags end in a version digit; see the module docs for the rule.
#[inline]
pub const fn magic(tag: &[u8; 8]) -> u64 {
    u64::from_le_bytes(*tag)
}

/// Appending writer for a flat buffer. A thin veneer over `Vec<u64>` that
/// keeps encode sites symmetric with [`WordReader`] decode sites.
#[derive(Debug, Default)]
pub struct WordWriter {
    words: Vec<u64>,
}

impl WordWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WordWriter::default()
    }

    /// An empty writer with room for `words` words.
    pub fn with_capacity(words: usize) -> Self {
        WordWriter {
            words: Vec::with_capacity(words),
        }
    }

    /// Append one raw word.
    #[inline]
    pub fn push_u64(&mut self, w: u64) {
        self.words.push(w);
    }

    /// Append a signed word (two's-complement bit pattern).
    #[inline]
    pub fn push_i64(&mut self, w: i64) {
        self.words.push(w as u64);
    }

    /// Append a float as its IEEE-754 bit pattern (NaN/±∞ round-trip).
    #[inline]
    pub fn push_f64(&mut self, v: f64) {
        self.words.push(v.to_bits());
    }

    /// Append a run of raw words.
    #[inline]
    pub fn extend_u64(&mut self, ws: &[u64]) {
        self.words.extend_from_slice(ws);
    }

    /// Words written so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Finish, returning the word buffer.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Finish, returning the little-endian byte buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        words_to_bytes(&self.words)
    }
}

/// Bounds-checked cursor over a flat word buffer. Every read either
/// advances past validated words or returns [`FlatError::Truncated`];
/// decoders finish with [`WordReader::finish`] to reject trailing garbage.
#[derive(Debug, Clone, Copy)]
pub struct WordReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> WordReader<'a> {
    /// A cursor at the start of `words`.
    pub fn new(words: &'a [u64]) -> Self {
        WordReader { words, pos: 0 }
    }

    /// Words left to read.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    #[inline]
    fn want(&self, n: usize) -> Result<(), FlatError> {
        if self.remaining() < n {
            Err(FlatError::Truncated {
                needed: n,
                remaining: self.remaining(),
            })
        } else {
            Ok(())
        }
    }

    /// Read one raw word.
    #[inline]
    pub fn u64(&mut self) -> Result<u64, FlatError> {
        self.want(1)?;
        let w = self.words[self.pos];
        self.pos += 1;
        Ok(w)
    }

    /// Read one signed word.
    #[inline]
    pub fn i64(&mut self) -> Result<i64, FlatError> {
        self.u64().map(|w| w as i64)
    }

    /// Read one float from its bit pattern.
    #[inline]
    pub fn f64(&mut self) -> Result<f64, FlatError> {
        self.u64().map(f64::from_bits)
    }

    /// Read one word and require it to equal `expected`, else
    /// [`FlatError::BadMagic`].
    pub fn expect_magic(&mut self, expected: u64) -> Result<(), FlatError> {
        let found = self.u64()?;
        if found != expected {
            return Err(FlatError::BadMagic { expected, found });
        }
        Ok(())
    }

    /// Borrow the next `n` words and advance past them.
    pub fn take(&mut self, n: usize) -> Result<&'a [u64], FlatError> {
        self.want(n)?;
        let s = &self.words[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Require the buffer to be fully consumed, else
    /// [`FlatError::TrailingWords`].
    pub fn finish(&self) -> Result<(), FlatError> {
        if self.remaining() != 0 {
            return Err(FlatError::TrailingWords(self.remaining()));
        }
        Ok(())
    }
}

/// Serialize a word buffer to little-endian bytes. The inverse of
/// [`bytes_to_words`]; exact length is `8 × words.len()`.
pub fn words_to_bytes(words: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(words.len() * 8);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

/// Parse little-endian bytes back into words, rejecting lengths that are
/// not a multiple of 8.
pub fn bytes_to_words(bytes: &[u8]) -> Result<Vec<u64>, FlatError> {
    if !bytes.len().is_multiple_of(8) {
        return Err(FlatError::UnalignedLength(bytes.len()));
    }
    Ok(bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunks_exact(8)")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = WordWriter::new();
        w.push_u64(magic(b"TESTFMT1"));
        w.push_i64(-7);
        w.push_f64(f64::NEG_INFINITY);
        w.push_f64(2.5);
        w.extend_u64(&[1, 2, 3]);
        assert_eq!(w.len(), 7);
        let words = w.into_words();

        let mut r = WordReader::new(&words);
        r.expect_magic(magic(b"TESTFMT1")).unwrap();
        assert_eq!(r.i64().unwrap(), -7);
        assert_eq!(r.f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(r.f64().unwrap(), 2.5);
        assert_eq!(r.take(3).unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn nan_bits_survive() {
        let bits = 0x7ff8_dead_beef_0001u64;
        let mut w = WordWriter::new();
        w.push_f64(f64::from_bits(bits));
        let words = w.into_words();
        let mut r = WordReader::new(&words);
        assert_eq!(r.f64().unwrap().to_bits(), bits);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let words = [1u64, 2];
        let mut r = WordReader::new(&words);
        r.take(2).unwrap();
        assert_eq!(
            r.u64(),
            Err(FlatError::Truncated {
                needed: 1,
                remaining: 0
            })
        );
        let mut r = WordReader::new(&words);
        assert_eq!(
            r.take(3),
            Err(FlatError::Truncated {
                needed: 3,
                remaining: 2
            })
        );
    }

    #[test]
    fn magic_mismatch_reports_both_sides() {
        let words = [magic(b"WRONGFM1")];
        let mut r = WordReader::new(&words);
        let err = r.expect_magic(magic(b"TESTFMT1")).unwrap_err();
        assert_eq!(
            err,
            FlatError::BadMagic {
                expected: magic(b"TESTFMT1"),
                found: magic(b"WRONGFM1"),
            }
        );
    }

    #[test]
    fn trailing_words_are_rejected() {
        let words = [1u64, 2];
        let mut r = WordReader::new(&words);
        r.u64().unwrap();
        assert_eq!(r.finish(), Err(FlatError::TrailingWords(1)));
    }

    #[test]
    fn byte_conversion_roundtrips_and_validates() {
        let words = vec![0u64, u64::MAX, 0x0102_0304_0506_0708];
        let bytes = words_to_bytes(&words);
        assert_eq!(bytes.len(), 24);
        assert_eq!(bytes_to_words(&bytes).unwrap(), words);
        assert_eq!(
            bytes_to_words(&bytes[..23]),
            Err(FlatError::UnalignedLength(23))
        );
    }

    #[test]
    fn errors_render_readably() {
        let msgs = [
            FlatError::Truncated {
                needed: 4,
                remaining: 1,
            }
            .to_string(),
            FlatError::BadMagic {
                expected: 1,
                found: 2,
            }
            .to_string(),
            FlatError::UnalignedLength(9).to_string(),
            FlatError::TrailingWords(3).to_string(),
            FlatError::Corrupt("n_attrs out of range").to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
        }
    }
}
