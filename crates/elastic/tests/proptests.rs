//! Property tests for the baseline's caches: the LRU must behave like a
//! reference model, and the request-cache fingerprint must separate
//! distinct queries.

use proptest::prelude::*;
use stash_elastic::{query_fingerprint, LruCache};
use stash_geo::{BBox, TemporalRes, TimeRange};
use stash_model::AggQuery;

#[derive(Debug, Clone)]
enum LruOp {
    Put(u8, u32),
    Get(u8),
}

fn arb_lru_op() -> impl Strategy<Value = LruOp> {
    prop_oneof![
        (any::<u8>(), any::<u32>()).prop_map(|(k, v)| LruOp::Put(k, v)),
        any::<u8>().prop_map(LruOp::Get),
    ]
}

/// Reference LRU: a Vec ordered by recency (front = most recent).
struct ModelLru {
    cap: usize,
    items: Vec<(u8, u32)>,
}

impl ModelLru {
    fn get(&mut self, k: u8) -> Option<u32> {
        let pos = self.items.iter().position(|(ik, _)| *ik == k)?;
        let item = self.items.remove(pos);
        self.items.insert(0, item);
        Some(self.items[0].1)
    }

    fn put(&mut self, k: u8, v: u32) {
        if self.cap == 0 {
            return;
        }
        if let Some(pos) = self.items.iter().position(|(ik, _)| *ik == k) {
            self.items.remove(pos);
        } else if self.items.len() >= self.cap {
            self.items.pop();
        }
        self.items.insert(0, (k, v));
    }
}

proptest! {
    /// The LRU matches the reference model on every operation.
    #[test]
    fn lru_matches_reference_model(
        cap in 0usize..12,
        ops in prop::collection::vec(arb_lru_op(), 1..300),
    ) {
        let mut lru = LruCache::new(cap);
        let mut model = ModelLru { cap, items: Vec::new() };
        for op in ops {
            match op {
                LruOp::Put(k, v) => {
                    lru.put(k, v);
                    model.put(k, v);
                }
                LruOp::Get(k) => {
                    prop_assert_eq!(lru.get(&k).copied(), model.get(k), "get failed for key {}", k);
                }
            }
            prop_assert_eq!(lru.len(), model.items.len());
            prop_assert!(lru.len() <= cap);
        }
    }

    /// Distinct queries (different box, time, or resolution) get distinct
    /// fingerprints; identical queries always agree.
    #[test]
    fn fingerprint_separates_queries(
        lat1 in -50.0f64..50.0, lon1 in -150.0f64..150.0,
        lat2 in -50.0f64..50.0, lon2 in -150.0f64..150.0,
        res1 in 1u8..=6, res2 in 1u8..=6,
        day1 in 0i64..365, day2 in 0i64..365,
    ) {
        let make = |lat: f64, lon: f64, res: u8, day: i64| {
            AggQuery::new(
                BBox::from_corner_extent(lat, lon, 1.0, 2.0),
                TimeRange::new(day * 86_400, (day + 1) * 86_400).unwrap(),
                res,
                TemporalRes::Day,
            )
        };
        let a = make(lat1, lon1, res1, day1);
        let b = make(lat2, lon2, res2, day2);
        prop_assert_eq!(query_fingerprint(&a), query_fingerprint(&a.clone()));
        if a != b {
            prop_assert_ne!(query_fingerprint(&a), query_fingerprint(&b), "collision: {:?} vs {:?}", a, b);
        }
    }
}
