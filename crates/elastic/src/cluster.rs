//! The simulated ElasticSearch deployment: coordinator scatter/gather over
//! hash-routed shards, on the same fabric and dataset as the STASH cluster.

use crate::shard::NodeShards;
use crossbeam::channel::{unbounded, Receiver, Sender};
use stash_dfs::{BlockKey, BlockSource, DiskModel};
use stash_geo::time::epoch_seconds;
use stash_geo::{BBox, Geohash, TimeRange};
use stash_model::{AggQuery, Cell, CellKey, CellSummary, Observation, QueryResult};
use stash_net::rpc::RpcError;
use stash_net::{Envelope, NetConfig, NodeId, Router, RpcTable};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Wire protocol of the baseline. `Clone` is required by the fabric's
/// duplication faults.
#[derive(Debug, Clone)]
pub enum EsMsg {
    /// Client search at a coordinating node.
    Search {
        rpc: u64,
        reply_to: NodeId,
        query: AggQuery,
    },
    SearchResponse {
        rpc: u64,
        result: Result<QueryResult, String>,
    },
    /// Coordinator → data node: run the query on your shards.
    ShardSearch {
        rpc: u64,
        reply_to: NodeId,
        query: AggQuery,
    },
    ShardResponse {
        rpc: u64,
        partials: Result<Vec<(CellKey, CellSummary)>, String>,
    },
    Shutdown,
}

impl EsMsg {
    fn wire_size(&self) -> usize {
        match self {
            EsMsg::Search { .. } | EsMsg::ShardSearch { .. } => 256,
            EsMsg::SearchResponse { result, .. } => match result {
                Ok(r) => {
                    r.cells
                        .iter()
                        .map(|c| 24 + 40 * c.summary.n_attrs())
                        .sum::<usize>()
                        + 64
                }
                Err(e) => e.len() + 32,
            },
            EsMsg::ShardResponse { partials, .. } => match partials {
                Ok(v) => v.iter().map(|(_, s)| 24 + 40 * s.n_attrs()).sum::<usize>() + 64,
                Err(e) => e.len() + 32,
            },
            EsMsg::Shutdown => 16,
        }
    }
}

/// Configuration of the baseline deployment.
#[derive(Debug, Clone)]
pub struct EsClusterConfig {
    pub n_nodes: usize,
    /// Total shards (paper: 600 over 120 nodes ⇒ 5× nodes).
    pub n_shards: usize,
    /// Coordination workers per node (`Search`; block on shard fan-out).
    pub coord_workers: usize,
    /// Shard-search workers per node (local scans; never block on peers).
    pub shard_workers: usize,
    pub net: NetConfig,
    pub disk: DiskModel,
    pub block_len: u8,
    pub data_bbox: BBox,
    pub data_time: TimeRange,
    pub generator: stash_data::GeneratorConfig,
    pub n_attrs: usize,
    /// Request-cache entries per node.
    pub request_cache_entries: usize,
    /// Field-data cache capacity per node, in blocks.
    pub field_cache_blocks: usize,
    pub max_cells_per_query: usize,
    pub max_blocks_per_fetch: usize,
    /// Modeled CPU cost per document collected during shard aggregation
    /// (virtual time; DESIGN.md §2).
    pub scan_cost_per_obs: Duration,
    pub shard_rpc_timeout: Duration,
    pub client_timeout: Duration,
}

impl Default for EsClusterConfig {
    fn default() -> Self {
        EsClusterConfig {
            n_nodes: 8,
            n_shards: 40,
            coord_workers: 3,
            shard_workers: 3,
            net: NetConfig::default(),
            disk: DiskModel::default(),
            block_len: 3,
            data_bbox: BBox {
                min_lat: 20.0,
                max_lat: 55.0,
                min_lon: -130.0,
                max_lon: -60.0,
            },
            data_time: TimeRange::new(
                epoch_seconds(2015, 1, 1, 0, 0, 0),
                epoch_seconds(2016, 1, 1, 0, 0, 0),
            )
            .expect("static range"),
            generator: stash_data::GeneratorConfig::default(),
            n_attrs: 4,
            request_cache_entries: 256,
            // Sized to the paper's cache:dataset ratio (~1-2% of blocks fit
            // in memory): repeated *overlapping* searches keep paying disk,
            // which is what keeps ES's panning latency flat in Fig. 8a.
            field_cache_blocks: 4,
            max_cells_per_query: 200_000,
            max_blocks_per_fetch: 20_000,
            scan_cost_per_obs: Duration::from_nanos(400),
            shard_rpc_timeout: Duration::from_secs(30),
            client_timeout: Duration::from_secs(120),
        }
    }
}

struct EsNode {
    idx: usize,
    id: NodeId,
    shards: NodeShards,
    router: Router<EsMsg>,
    rpc: RpcTable<Result<Vec<(CellKey, CellSummary)>, String>>,
    config: Arc<EsClusterConfig>,
    coord_tx: Sender<Envelope<EsMsg>>,
    shard_tx: Sender<Envelope<EsMsg>>,
}

impl EsNode {
    fn send(&self, dst: NodeId, msg: EsMsg) {
        let bytes = msg.wire_size();
        self.router.send(self.id, dst, msg, bytes);
    }

    fn run_main(self: &Arc<Self>, inbox: stash_net::Inbox<EsMsg>) {
        while let Ok(env) = inbox.recv() {
            match env.payload {
                EsMsg::Shutdown => {
                    for _ in 0..self.config.coord_workers {
                        let _ = self.coord_tx.send(Envelope {
                            src: self.id,
                            dst: self.id,
                            wire: Duration::ZERO,
                            payload: EsMsg::Shutdown,
                        });
                    }
                    for _ in 0..self.config.shard_workers {
                        let _ = self.shard_tx.send(Envelope {
                            src: self.id,
                            dst: self.id,
                            wire: Duration::ZERO,
                            payload: EsMsg::Shutdown,
                        });
                    }
                    return;
                }
                EsMsg::ShardResponse { rpc, partials } => {
                    self.rpc.complete(rpc, partials);
                }
                // Shard searches never block on peers, so they get their
                // own tier; coordinations may block waiting for them.
                payload @ EsMsg::ShardSearch { .. } => {
                    let _ = self.shard_tx.send(Envelope {
                        src: env.src,
                        dst: env.dst,
                        wire: env.wire,
                        payload,
                    });
                }
                payload => {
                    let _ = self.coord_tx.send(Envelope {
                        src: env.src,
                        dst: env.dst,
                        wire: env.wire,
                        payload,
                    });
                }
            }
        }
    }

    fn run_worker(self: &Arc<Self>, work_rx: Receiver<Envelope<EsMsg>>) {
        while let Ok(env) = work_rx.recv() {
            match env.payload {
                EsMsg::Shutdown => return,
                EsMsg::Search {
                    rpc,
                    reply_to,
                    query,
                } => {
                    let result = self.coordinate(&query);
                    self.send(reply_to, EsMsg::SearchResponse { rpc, result });
                }
                EsMsg::ShardSearch {
                    rpc,
                    reply_to,
                    query,
                } => {
                    let partials = query
                        .target_keys(self.config.max_cells_per_query)
                        .map_err(|e| e.to_string())
                        .and_then(|keys| self.shards.search(&query, &keys));
                    self.send(reply_to, EsMsg::ShardResponse { rpc, partials });
                }
                other => unreachable!("worker received {other:?}"),
            }
        }
    }

    /// Scatter to every data node (hash sharding has no locality), gather,
    /// merge per-cell partials.
    fn coordinate(self: &Arc<Self>, query: &AggQuery) -> Result<QueryResult, String> {
        let keys = query
            .target_keys(self.config.max_cells_per_query)
            .map_err(|e| e.to_string())?;
        if keys.is_empty() {
            return Ok(QueryResult::default());
        }
        let mut waits = Vec::new();
        for node in 0..self.config.n_nodes {
            if node == self.idx {
                continue;
            }
            let (rpc, rx) = self.rpc.register();
            self.send(
                NodeId(node),
                EsMsg::ShardSearch {
                    rpc,
                    reply_to: self.id,
                    query: query.clone(),
                },
            );
            waits.push((rpc, rx));
        }
        let own = self.shards.search(query, &keys)?;

        let mut merged: HashMap<CellKey, CellSummary> = HashMap::new();
        let mut absorb = |parts: Vec<(CellKey, CellSummary)>| {
            for (k, s) in parts {
                merged.entry(k).and_modify(|m| m.merge(&s)).or_insert(s);
            }
        };
        absorb(own);
        for (rpc, rx) in waits {
            match self.rpc.wait(rpc, &rx, self.config.shard_rpc_timeout) {
                Ok(Ok(parts)) => absorb(parts),
                Ok(Err(e)) => return Err(e),
                Err(e) => return Err(format!("shard rpc failed: {e}")),
            }
        }
        let mut cells: Vec<Cell> = merged
            .into_iter()
            .filter(|(_, s)| !s.is_empty())
            .map(|(key, summary)| Cell { key, summary })
            .collect();
        cells.sort_by_key(|c| c.key);
        Ok(QueryResult {
            cells,
            misses: keys.len(),
            ..Default::default()
        })
    }
}

/// Client handle for the baseline.
#[derive(Clone)]
pub struct EsClient {
    router: Router<EsMsg>,
    gateway: NodeId,
    rpc: Arc<RpcTable<Result<QueryResult, String>>>,
    n_nodes: usize,
    next: Arc<AtomicUsize>,
    timeout: Duration,
}

impl EsClient {
    /// Issue one search; blocks for the merged result.
    pub fn query(&self, query: &AggQuery) -> Result<QueryResult, String> {
        let coord = self.next.fetch_add(1, Ordering::Relaxed) % self.n_nodes;
        let (rpc_id, rx) = self.rpc.register();
        let msg = EsMsg::Search {
            rpc: rpc_id,
            reply_to: self.gateway,
            query: query.clone(),
        };
        let bytes = msg.wire_size();
        if !self.router.send(self.gateway, NodeId(coord), msg, bytes) {
            self.rpc.cancel(rpc_id);
            return Err("cluster disconnected".into());
        }
        match self.rpc.wait(rpc_id, &rx, self.timeout) {
            Ok(r) => r,
            Err(RpcError::Timeout) => Err("search timed out".into()),
            Err(RpcError::Canceled) => Err("cluster disconnected".into()),
        }
    }
}

/// The running baseline deployment.
pub struct EsSimCluster {
    config: Arc<EsClusterConfig>,
    router: Router<EsMsg>,
    nodes: Vec<Arc<EsNode>>,
    client_rpc: Arc<RpcTable<Result<QueryResult, String>>>,
    gateway: NodeId,
    threads: Vec<std::thread::JoinHandle<()>>,
    shut: AtomicBool,
}

struct GenSource(stash_data::NamGenerator);

impl BlockSource for GenSource {
    fn read_block(&self, key: BlockKey) -> Vec<Observation> {
        self.0.block_for_day(key.geohash, key.day)
    }
    fn block_bytes(&self, geohash: Geohash) -> usize {
        self.0.block_bytes(geohash)
    }
    fn n_attrs(&self) -> usize {
        self.0.schema().len()
    }
}

impl EsSimCluster {
    pub fn new(config: EsClusterConfig) -> Self {
        assert!(config.n_nodes > 0, "cluster needs nodes");
        assert!(
            config.coord_workers >= 1 && config.shard_workers >= 1,
            "both worker tiers need at least one thread"
        );
        let config = Arc::new(config);
        let (router, mut endpoints) = Router::<EsMsg>::new(config.n_nodes + 1, config.net.clone());
        let gateway_ep = endpoints.pop().expect("gateway endpoint");
        let gateway = gateway_ep.id;
        let source: Arc<dyn BlockSource> = Arc::new(GenSource(stash_data::NamGenerator::new(
            config.generator.clone(),
        )));

        let mut nodes = Vec::new();
        let mut threads = Vec::new();
        for ep in endpoints {
            let idx = ep.id.0;
            let shards = NodeShards::new(
                idx,
                config.n_nodes,
                config.n_shards,
                config.block_len,
                config.data_bbox,
                config.data_time,
                config.disk.clone(),
                Arc::clone(&source),
                config.max_blocks_per_fetch,
                config.request_cache_entries,
                config.field_cache_blocks,
            )
            .with_scan_cost(config.scan_cost_per_obs);
            let (coord_tx, coord_rx) = unbounded();
            let (shard_tx, shard_rx) = unbounded();
            let node = Arc::new(EsNode {
                idx,
                id: ep.id,
                shards,
                router: router.clone(),
                rpc: RpcTable::default(),
                config: Arc::clone(&config),
                coord_tx,
                shard_tx,
            });
            let main = Arc::clone(&node);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("es-node-{idx}"))
                    .spawn(move || main.run_main(ep.inbox))
                    .expect("spawn es node"),
            );
            for (tier, count, rx) in [
                ("coord", config.coord_workers, coord_rx),
                ("shard", config.shard_workers, shard_rx),
            ] {
                for w in 0..count {
                    let worker = Arc::clone(&node);
                    let rx = rx.clone();
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("es-{tier}-{idx}-{w}"))
                            .spawn(move || worker.run_worker(rx))
                            .expect("spawn es worker"),
                    );
                }
            }
            nodes.push(node);
        }

        let client_rpc: Arc<RpcTable<Result<QueryResult, String>>> = Arc::new(RpcTable::default());
        let pump = Arc::clone(&client_rpc);
        threads.push(
            std::thread::Builder::new()
                .name("es-gateway".into())
                .spawn(move || {
                    while let Ok(env) = gateway_ep.inbox.recv() {
                        match env.payload {
                            EsMsg::SearchResponse { rpc, result } => {
                                pump.complete(rpc, result);
                            }
                            EsMsg::Shutdown => return,
                            other => debug_assert!(false, "gateway got {other:?}"),
                        }
                    }
                })
                .expect("spawn es gateway"),
        );

        EsSimCluster {
            config,
            router,
            nodes,
            client_rpc,
            gateway,
            threads,
            shut: AtomicBool::new(false),
        }
    }

    pub fn config(&self) -> &EsClusterConfig {
        &self.config
    }

    pub fn client(&self) -> EsClient {
        EsClient {
            router: self.router.clone(),
            gateway: self.gateway,
            rpc: Arc::clone(&self.client_rpc),
            n_nodes: self.config.n_nodes,
            next: Arc::new(AtomicUsize::new(0)),
            timeout: self.config.client_timeout,
        }
    }

    /// Aggregate request-cache hit count across nodes.
    pub fn request_cache_hits(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.shards.stats.request_cache_hits.load(Ordering::Relaxed))
            .sum()
    }

    /// Aggregate disk reads across nodes.
    pub fn disk_reads(&self) -> u64 {
        self.nodes
            .iter()
            .map(|n| n.shards.disk_stats().reads())
            .sum()
    }

    /// Drop all caches on all nodes.
    pub fn clear_caches(&self) {
        for n in &self.nodes {
            n.shards.clear_caches();
        }
    }

    pub fn shutdown(&self) {
        if self.shut.swap(true, Ordering::AcqRel) {
            return;
        }
        for n in &self.nodes {
            self.router.send(self.gateway, n.id, EsMsg::Shutdown, 16);
        }
        self.router
            .send(self.gateway, self.gateway, EsMsg::Shutdown, 16);
    }
}

impl Drop for EsSimCluster {
    fn drop(&mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.router.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_geo::TemporalRes;

    fn small_config() -> EsClusterConfig {
        EsClusterConfig {
            n_nodes: 4,
            n_shards: 16,
            coord_workers: 2,
            shard_workers: 2,
            disk: DiskModel::free(),
            generator: stash_data::GeneratorConfig {
                seed: 3,
                obs_per_deg2_per_day: 30.0,
                max_obs_per_block: 10_000,
                value_quantum: 0.0,
            },
            ..Default::default()
        }
    }

    fn county_query() -> AggQuery {
        AggQuery::new(
            BBox::from_corner_extent(38.0, -105.0, 0.6, 1.2),
            TimeRange::whole_day(2015, 2, 2),
            4,
            TemporalRes::Day,
        )
    }

    #[test]
    fn search_returns_aggregations() {
        let es = EsSimCluster::new(small_config());
        let client = es.client();
        let r = client.query(&county_query()).expect("search");
        assert!(r.total_count() > 0);
        assert!(!r.cells.is_empty());
        es.shutdown();
    }

    #[test]
    fn identical_search_hits_request_cache() {
        let es = EsSimCluster::new(small_config());
        let client = es.client();
        let q = county_query();
        let a = client.query(&q).unwrap();
        let hits0 = es.request_cache_hits();
        let b = client.query(&q).unwrap();
        assert!(es.request_cache_hits() > hits0, "request cache must hit");
        assert_eq!(a.total_count(), b.total_count());
        es.shutdown();
    }

    #[test]
    fn overlapping_search_misses_request_cache() {
        let es = EsSimCluster::new(small_config());
        let client = es.client();
        let q = county_query();
        client.query(&q).unwrap();
        let hits0 = es.request_cache_hits();
        client.query(&q.panned(0.1, 0.0, 1.0)).unwrap();
        assert_eq!(
            es.request_cache_hits(),
            hits0,
            "panned query must not hit request cache"
        );
        es.shutdown();
    }

    #[test]
    fn es_agrees_with_ground_truth_volume() {
        // ES and a single-node full scan must count the same observations.
        let es = EsSimCluster::new(small_config());
        let q = county_query();
        let r = es.client().query(&q).unwrap();
        let gen = stash_data::NamGenerator::new(es.config().generator.clone());
        let keys = q.target_keys(100_000).unwrap();
        let plan = stash_dfs::plan_blocks(
            &keys,
            3,
            &es.config().data_bbox,
            &es.config().data_time,
            10_000,
        )
        .unwrap();
        let mut truth = 0u64;
        for bk in plan.keys() {
            for obs in gen.block_for_day(bk.geohash, bk.day) {
                if let Some(k) = obs.cell_key(4, TemporalRes::Day) {
                    if keys.contains(&k) {
                        truth += 1;
                    }
                }
            }
        }
        assert_eq!(r.total_count(), truth);
        es.shutdown();
    }

    #[test]
    fn concurrent_searches() {
        let es = EsSimCluster::new(small_config());
        let q = county_query();
        let expected = es.client().query(&q).unwrap().total_count();
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let c = es.client();
                let q = q.clone();
                std::thread::spawn(move || c.query(&q).unwrap().total_count())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), expected);
        }
        es.shutdown();
    }
}
