//! A small LRU cache for the field-data and request caches.
//!
//! Capacity is in *entries*; eviction removes the least-recently-used. The
//! implementation favors simplicity over constant-factor tuning — cache
//! capacities in the baseline are small (hundreds of blocks), so an O(n)
//! eviction scan is irrelevant next to the block scan it fronts.

use std::collections::HashMap;
use std::hash::Hash;

/// LRU map with entry-count capacity.
#[derive(Debug)]
pub struct LruCache<K, V> {
    capacity: usize,
    stamp: u64,
    entries: HashMap<K, (V, u64)>,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// `capacity == 0` disables the cache (every get misses, puts are
    /// dropped) — used to ablate the field-data cache.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            stamp: 0,
            entries: HashMap::with_capacity(capacity.min(4096)),
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup, refreshing recency on hit.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        self.stamp += 1;
        let stamp = self.stamp;
        match self.entries.get_mut(key) {
            Some((v, s)) => {
                *s = stamp;
                Some(v)
            }
            None => None,
        }
    }

    /// Presence check without refreshing recency.
    pub fn contains(&self, key: &K) -> bool {
        self.entries.contains_key(key)
    }

    /// Insert, evicting the least-recently-used entry when full.
    pub fn put(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.stamp += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // Evict the stalest entry.
            if let Some(oldest) = self
                .entries
                .iter()
                .min_by_key(|(_, (_, s))| *s)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(key, (value, self.stamp));
    }

    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_get_put() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"z"), None);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.get(&"a"); // refresh a; b is now LRU
        c.put("c", 3);
        assert!(c.contains(&"a"));
        assert!(!c.contains(&"b"), "b should have been evicted");
        assert!(c.contains(&"c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn updating_existing_key_does_not_evict() {
        let mut c = LruCache::new(2);
        c.put("a", 1);
        c.put("b", 2);
        c.put("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(&10));
        assert!(c.contains(&"b"));
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = LruCache::new(0);
        c.put("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties() {
        let mut c = LruCache::new(4);
        c.put(1, "x");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn heavy_churn_respects_capacity() {
        let mut c = LruCache::new(16);
        for i in 0..1000 {
            c.put(i, i * 2);
            assert!(c.len() <= 16);
        }
        // The most recent entries survive.
        assert!(c.contains(&999));
        assert!(!c.contains(&0));
    }
}
