//! Per-node shard engine: hash routing, request cache, field-data cache.

use crate::lru::LruCache;
use parking_lot::Mutex;
use stash_dfs::{plan_blocks, BlockKey, BlockSource, DiskModel, DiskStats};
use stash_geo::{BBox, TimeRange};
use stash_model::{AggQuery, CellKey, CellSummary, Observation};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Stable fingerprint of a query — the request-cache key. Two queries
/// collide only when byte-identical in extent, time, and resolutions,
/// mirroring ES's request cache keyed on the serialized search body.
pub fn query_fingerprint(q: &AggQuery) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x1000_0000_01b3);
    };
    eat(q.bbox.min_lat.to_bits());
    eat(q.bbox.max_lat.to_bits());
    eat(q.bbox.min_lon.to_bits());
    eat(q.bbox.max_lon.to_bits());
    eat(q.time.start as u64);
    eat(q.time.end as u64);
    eat(q.spatial_res as u64);
    eat(q.temporal_res.index() as u64);
    h
}

/// Cache counters (relaxed atomics).
#[derive(Debug, Default)]
pub struct ShardStats {
    pub request_cache_hits: AtomicU64,
    pub request_cache_misses: AtomicU64,
    pub field_cache_hits: AtomicU64,
    pub field_cache_misses: AtomicU64,
}

/// A cached per-shard aggregation output, shared between cache and callers.
type CachedPartials = Arc<Vec<(CellKey, CellSummary)>>;

/// One node's slice of the hash-sharded index plus its caches.
pub struct NodeShards {
    node_idx: usize,
    n_nodes: usize,
    n_shards: usize,
    block_len: u8,
    data_bbox: BBox,
    data_time: TimeRange,
    disk: DiskModel,
    disk_stats: DiskStats,
    source: Arc<dyn BlockSource>,
    max_blocks: usize,
    /// Shard request cache: exact-query → this node's aggregation output.
    request_cache: Mutex<LruCache<u64, CachedPartials>>,
    /// Field-data cache: block → resident column values.
    field_cache: Mutex<LruCache<BlockKey, Arc<Vec<Observation>>>>,
    /// Modeled CPU cost per document collected (virtual time).
    scan_cost_per_obs: std::time::Duration,
    pub stats: ShardStats,
}

impl NodeShards {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node_idx: usize,
        n_nodes: usize,
        n_shards: usize,
        block_len: u8,
        data_bbox: BBox,
        data_time: TimeRange,
        disk: DiskModel,
        source: Arc<dyn BlockSource>,
        max_blocks: usize,
        request_cache_entries: usize,
        field_cache_blocks: usize,
    ) -> Self {
        assert!(
            n_nodes > 0 && n_shards >= n_nodes,
            "shards must cover nodes"
        );
        NodeShards {
            node_idx,
            n_nodes,
            n_shards,
            block_len,
            data_bbox,
            data_time,
            disk,
            disk_stats: DiskStats::default(),
            source,
            max_blocks,
            request_cache: Mutex::new(LruCache::new(request_cache_entries)),
            field_cache: Mutex::new(LruCache::new(field_cache_blocks)),
            scan_cost_per_obs: std::time::Duration::from_nanos(400),
            stats: ShardStats::default(),
        }
    }

    /// Override the modeled per-document collection cost.
    pub fn with_scan_cost(mut self, per_obs: std::time::Duration) -> Self {
        self.scan_cost_per_obs = per_obs;
        self
    }

    /// Hash routing: block → shard (ES `_id`-hash routing — geography-blind).
    pub fn shard_of(&self, block: &BlockKey) -> usize {
        let mut x = block
            .geohash
            .bits()
            .wrapping_mul(0xA076_1D64_78BD_642F)
            .wrapping_add(block.day.idx as u64)
            .wrapping_mul(0xE703_7ED1_A0B4_28DB);
        x ^= x >> 32;
        (x % self.n_shards as u64) as usize
    }

    /// Shards are spread round-robin over data nodes.
    pub fn node_of_shard(&self, shard: usize) -> usize {
        shard % self.n_nodes
    }

    fn owns_block(&self, block: &BlockKey) -> bool {
        self.node_of_shard(self.shard_of(block)) == self.node_idx
    }

    pub fn disk_stats(&self) -> &DiskStats {
        &self.disk_stats
    }

    /// Execute a search on this node's shards: request cache first, then
    /// scan (through the field-data cache) and aggregate.
    pub fn search(
        &self,
        query: &AggQuery,
        keys: &[CellKey],
    ) -> Result<Vec<(CellKey, CellSummary)>, String> {
        let fp = query_fingerprint(query);
        if let Some(hit) = self.request_cache.lock().get(&fp).cloned() {
            self.stats
                .request_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return Ok(hit.as_ref().clone());
        }
        self.stats
            .request_cache_misses
            .fetch_add(1, Ordering::Relaxed);

        let plan = plan_blocks(
            keys,
            self.block_len,
            &self.data_bbox,
            &self.data_time,
            self.max_blocks,
        )
        .map_err(|e| e.to_string())?;
        let mine: Vec<(BlockKey, Vec<CellKey>)> = plan
            .into_iter()
            .filter(|(bk, _)| self.owns_block(bk))
            .collect();

        let n_attrs = self.source.n_attrs();
        let mut out: HashMap<CellKey, CellSummary> = HashMap::new();
        let mut scanned = 0usize;
        for (bk, wanted) in &mine {
            let observations = self.load_block(*bk);
            scanned += observations.len();
            let mut by_level: HashMap<(u8, stash_geo::TemporalRes), HashSet<CellKey>> =
                HashMap::new();
            for &c in wanted {
                by_level
                    .entry((c.spatial_res(), c.temporal_res()))
                    .or_default()
                    .insert(c);
            }
            for obs in observations.iter() {
                for (&(s_res, t_res), members) in &by_level {
                    let Some(key) = obs.cell_key(s_res, t_res) else {
                        continue;
                    };
                    if members.contains(&key) {
                        out.entry(key)
                            .or_insert_with(|| CellSummary::empty(n_attrs))
                            .push_row(&obs.values);
                    }
                }
            }
        }
        // Charge the modeled collection cost (virtual time — the paper's
        // shards re-aggregate raw documents on every request-cache miss).
        let scan_cost = self.scan_cost_per_obs * scanned as u32;
        if scan_cost > std::time::Duration::ZERO {
            std::thread::sleep(scan_cost);
        }
        let mut result: Vec<(CellKey, CellSummary)> = out.into_iter().collect();
        result.sort_by_key(|(k, _)| *k);
        let shared = Arc::new(result);
        self.request_cache.lock().put(fp, Arc::clone(&shared));
        Ok(shared.as_ref().clone())
    }

    /// Read a block through the field-data cache; disk is charged on miss.
    fn load_block(&self, bk: BlockKey) -> Arc<Vec<Observation>> {
        if let Some(hit) = self.field_cache.lock().get(&bk).cloned() {
            self.stats.field_cache_hits.fetch_add(1, Ordering::Relaxed);
            return hit;
        }
        self.stats
            .field_cache_misses
            .fetch_add(1, Ordering::Relaxed);
        self.disk
            .charge_read(self.source.block_bytes(bk.geohash), &self.disk_stats);
        let obs = Arc::new(self.source.read_block(bk));
        self.field_cache.lock().put(bk, Arc::clone(&obs));
        obs
    }

    /// Drop both caches (cold-start experiments).
    pub fn clear_caches(&self) {
        self.request_cache.lock().clear();
        self.field_cache.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_data::{GeneratorConfig, NamGenerator};
    use stash_geo::time::epoch_seconds;
    use stash_geo::{Geohash, TemporalRes};

    struct GenSource(NamGenerator);
    impl BlockSource for GenSource {
        fn read_block(&self, key: BlockKey) -> Vec<Observation> {
            self.0.block_for_day(key.geohash, key.day)
        }
        fn block_bytes(&self, geohash: Geohash) -> usize {
            self.0.block_bytes(geohash)
        }
        fn n_attrs(&self) -> usize {
            self.0.schema().len()
        }
    }

    fn shards(node_idx: usize, n_nodes: usize) -> NodeShards {
        NodeShards::new(
            node_idx,
            n_nodes,
            n_nodes * 8,
            3,
            BBox::new(20.0, 55.0, -130.0, -60.0).unwrap(),
            TimeRange::new(
                epoch_seconds(2015, 1, 1, 0, 0, 0),
                epoch_seconds(2016, 1, 1, 0, 0, 0),
            )
            .unwrap(),
            DiskModel::free(),
            Arc::new(GenSource(NamGenerator::new(GeneratorConfig {
                seed: 11,
                obs_per_deg2_per_day: 100.0,
                max_obs_per_block: 20_000,
                value_quantum: 0.0,
            }))),
            10_000,
            64,
            256,
        )
    }

    fn county_query() -> AggQuery {
        AggQuery::new(
            BBox::from_corner_extent(38.0, -105.0, 0.6, 1.2),
            TimeRange::whole_day(2015, 2, 2),
            4,
            TemporalRes::Day,
        )
    }

    #[test]
    fn fingerprint_distinguishes_overlapping_queries() {
        let q = county_query();
        assert_eq!(query_fingerprint(&q), query_fingerprint(&q.clone()));
        let panned = q.panned(0.1, 0.0, 1.0);
        assert_ne!(query_fingerprint(&q), query_fingerprint(&panned));
        let zoomed = q.drilled_down().unwrap();
        assert_ne!(query_fingerprint(&q), query_fingerprint(&zoomed));
    }

    #[test]
    fn union_of_nodes_equals_full_scan() {
        // Every block belongs to exactly one node: merging all nodes'
        // search outputs must equal a single-node full deployment.
        let q = county_query();
        let keys = q.target_keys(100_000).unwrap();
        let whole = shards(0, 1).search(&q, &keys).unwrap();
        let mut merged: HashMap<CellKey, CellSummary> = HashMap::new();
        for i in 0..4 {
            for (k, s) in shards(i, 4).search(&q, &keys).unwrap() {
                merged.entry(k).and_modify(|m| m.merge(&s)).or_insert(s);
            }
        }
        assert_eq!(merged.len(), whole.len());
        for (k, s) in whole {
            assert_eq!(merged[&k].count(), s.count(), "mismatch at {k}");
        }
    }

    #[test]
    fn request_cache_hits_identical_query_only() {
        let s = shards(0, 1);
        let q = county_query();
        let keys = q.target_keys(100_000).unwrap();
        let a = s.search(&q, &keys).unwrap();
        assert_eq!(s.stats.request_cache_misses.load(Ordering::Relaxed), 1);
        let b = s.search(&q, &keys).unwrap();
        assert_eq!(s.stats.request_cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(a, b);
        // A panned (overlapping!) query misses the request cache.
        let panned = q.panned(0.1, 0.0, 1.0);
        let pkeys = panned.target_keys(100_000).unwrap();
        s.search(&panned, &pkeys).unwrap();
        assert_eq!(s.stats.request_cache_misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn field_cache_absorbs_repeat_disk_reads() {
        let s = shards(0, 1);
        let q = county_query();
        let keys = q.target_keys(100_000).unwrap();
        s.search(&q, &keys).unwrap();
        let reads_after_first = s.disk_stats().reads();
        assert!(reads_after_first > 0);
        // Different (panned) query over overlapping blocks: request cache
        // misses but most blocks come from the field cache.
        let panned = q.panned(0.1, 0.0, 1.0);
        let pkeys = panned.target_keys(100_000).unwrap();
        s.search(&panned, &pkeys).unwrap();
        let new_reads = s.disk_stats().reads() - reads_after_first;
        assert!(
            new_reads < reads_after_first,
            "field cache should absorb most repeat reads: {new_reads} vs {reads_after_first}"
        );
        assert!(s.stats.field_cache_hits.load(Ordering::Relaxed) > 0);
    }

    #[test]
    fn clear_caches_forces_recompute() {
        let s = shards(0, 1);
        let q = county_query();
        let keys = q.target_keys(100_000).unwrap();
        s.search(&q, &keys).unwrap();
        s.clear_caches();
        s.search(&q, &keys).unwrap();
        assert_eq!(s.stats.request_cache_hits.load(Ordering::Relaxed), 0);
        assert_eq!(s.stats.request_cache_misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn shard_routing_is_stable_and_spread() {
        let s = shards(0, 4);
        let q = AggQuery::new(
            BBox::from_corner_extent(30.0, -110.0, 8.0, 16.0),
            TimeRange::whole_day(2015, 2, 2),
            4,
            TemporalRes::Day,
        );
        let keys = q.target_keys(100_000).unwrap();
        let plan = plan_blocks(&keys, 3, &s.data_bbox, &s.data_time, 10_000).unwrap();
        let mut nodes_used: HashSet<usize> = HashSet::new();
        for bk in plan.keys() {
            let shard = s.shard_of(bk);
            assert_eq!(shard, s.shard_of(bk), "routing must be stable");
            assert!(shard < 32);
            nodes_used.insert(s.node_of_shard(shard));
        }
        assert_eq!(
            nodes_used.len(),
            4,
            "hash routing should spread over all nodes"
        );
    }
}
