//! # stash-elastic
//!
//! An ElasticSearch-*like* baseline engine, reproducing the comparison
//! system of the paper's §VIII-F on the same simulated fabric and dataset.
//!
//! What is modeled (and why it is what the paper measured):
//!
//! * **Hash-sharded index** — documents are routed to shards by hash, not
//!   by geography (ES's default `_id` routing). Every search therefore
//!   scatter-gathers **all** shards; there is no geospatial data locality.
//!   (The paper: "the index was split into 600 shards" across 120 data
//!   nodes.)
//! * **Shard request cache** — per node, keyed by the *exact* query. This
//!   is the crucial semantic difference from STASH: an identical repeated
//!   query hits, but a panned / diced / zoomed query — however much it
//!   overlaps — recomputes its aggregations from raw documents. That is
//!   why ES's latency "improves slightly" (−2 %…−0.6 %) under panning
//!   while STASH improves 49–70 % (Fig. 8a).
//! * **Field-data cache** — per node LRU over block columns: after a block
//!   is first read from disk its values stay in memory, so repeated
//!   *disk* cost fades while *aggregation* cost remains. ("Three types of
//!   caches … stored the query results, aggregations, and field values.")
//!
//! The engine shares the dataset generator, disk model, and network fabric
//! with the STASH cluster so Fig. 8's comparisons hold the substrate fixed
//! and vary only the middleware.

pub mod cluster;
pub mod lru;
pub mod shard;

pub use cluster::{EsClient, EsClusterConfig, EsSimCluster};
pub use lru::LruCache;
pub use shard::{query_fingerprint, ShardStats};
