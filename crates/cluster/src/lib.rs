//! # stash-cluster
//!
//! The full simulated deployment of the paper's system (Fig. 4): Galileo
//! storage nodes with STASH graphs in their memory, a coordinator-per-query
//! scatter/gather evaluation path, the Clique Handoff hotspot protocol, and
//! a client API standing in for the Grafana front-end.
//!
//! One [`SimCluster`] owns:
//!
//! * a [`stash_net::Router`] fabric with `n_nodes + 1` endpoints (the extra
//!   endpoint is the client gateway);
//! * per node: a main dispatch thread (never blocks), a small worker pool
//!   (the paper's nodes are 8-core), a [`stash_dfs::NodeStore`], a local
//!   [`stash_core::StashGraph`], a **guest** graph for replicas
//!   (§VII-A: "a helper node maintains two STASH graphs — one local and one
//!   guest"), a routing table, and a hotspot manager;
//! * a clonable [`ClusterClient`] whose `query()` call is exactly one
//!   user interaction of the front-end.
//!
//! Two execution modes reproduce the paper's comparisons:
//! [`Mode::Basic`] — the bare storage system, every query scans blocks —
//! and [`Mode::Stash`] — the full caching middleware.

pub mod client;
pub mod client_cache;
pub mod cluster;
pub mod config;
pub mod ingest;
pub mod node;
pub mod protocol;
pub mod source;

pub use client::{ClientError, ClusterClient, QueryCall, TracedQueryCall};
pub use client_cache::{CachingClient, Prefetcher};
pub use cluster::{ClusterConfig, Mode, NodeStatsSnapshot, RetentionReport, SimCluster};
pub use config::{ClusterConfigBuilder, ConfigError, RollupPolicy};
pub use ingest::IngestClient;
pub use protocol::ClusterError;
pub use source::{GenBlockSource, LiveSource};

// Re-export the producer-side ingest machinery so cluster users drive a
// live stream without naming the `stash-ingest` crate themselves.
pub use stash_ingest::{
    run_stream, AppendSink, IngestConfig, IngestError, IngestStats, OverloadPolicy,
};
